import pathlib
import re

from setuptools import find_packages, setup

#: single-source the version from the package (no import: setup must
#: work before the package is on the path)
_INIT = pathlib.Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="repro",
    version=VERSION,
    description=(
        "Reproduction of 'A Formal Verification Methodology for "
        "Checking Data Integrity' (DATE 2004), grown into a "
        "campaign-scale verification system"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.11",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
