#!/usr/bin/env python
"""Quickstart: the whole methodology on one leaf module.

Builds the paper's Figure 1 leaf module (a parity-protected FSM, a
protected datapath register, two integrity check points and a hardware
error report), makes it Verifiable RTL, generates the three stereotype
PSL vunits, and model checks every assertion.  Then seeds a parity bug
and shows the counterexample the engines produce.

Run:  python examples/quickstart.py
"""

from repro.chip.library import canonical_leaf
from repro.core.stereotypes import stereotype_vunits
from repro.formal.budget import ResourceBudget
from repro.formal.engine import ModelChecker
from repro.psl.compile import compile_assertion
from repro.rtl.builder import ProtectedState, he_report, latched_flag, parity_fsm
from repro.rtl.inject import make_verifiable
from repro.rtl.integrity import (
    DATAPATH, FSM, IntegritySpec, ParityGroup, ProtectedEntity,
)
from repro.rtl.module import Module
from repro.rtl.parity import parity_ok
from repro.rtl.signals import cat, mux


def buggy_leaf():
    """The canonical leaf with a seeded defect: the FSM parity bit is
    not recomputed on the increment transition."""
    m = Module("M")
    i = m.input("I", 9)
    fsm = ProtectedState(m, "A", 3)
    from repro.rtl.parity import odd_parity_bit, protect
    stepped = fsm.data + 1
    good = protect(stepped)
    stale = cat(odd_parity_bit(fsm.data), stepped)   # BUG: stale parity
    fsm.drive_word(mux(i[0], stale, fsm.word))
    b = ProtectedState(m, "B", 8)
    b.drive_word(i)
    iflag = latched_flag(m, "IERR", ~parity_ok(i))
    he_report(m, "HE", [fsm.check_fail(), b.check_fail(), iflag])
    m.output("O", b.word)
    m.integrity = IntegritySpec(
        protected_inputs=[ParityGroup("I")],
        protected_outputs=[ParityGroup("O")],
        entities=[ProtectedEntity("stateA", "A", FSM, 0),
                  ProtectedEntity("dataB", "B", DATAPATH, 1)],
        he_signals=["HE"],
    )
    return m


def check_module(module, title):
    print(f"=== {title} ===")
    budget = lambda: ResourceBudget(sat_conflicts=500_000,
                                    bdd_nodes=5_000_000)
    for unit in stereotype_vunits(module):
        print(f"\n{unit.emit()}\n")
        for assert_name, _ in unit.asserted():
            ts = compile_assertion(module, unit, assert_name)
            result = ModelChecker(ts, budget()).check()
            print(f"  {unit.name}.{assert_name:24s} -> "
                  f"{result.status.upper():7s} "
                  f"(engine {result.engine}, "
                  f"{result.seconds * 1000:.0f} ms)")
            if result.failed:
                print("  " + result.trace.format().replace("\n", "\n  "))
    print()


def main():
    golden = make_verifiable(canonical_leaf())
    check_module(golden, "Figure 1 leaf module (bug-free): "
                         "all stereotype properties hold")

    defective = make_verifiable(buggy_leaf())
    check_module(defective, "Same module with a stale-parity bug: "
                            "soundness (P1) fails with a counterexample")


if __name__ == "__main__":
    main()
