#!/usr/bin/env python
"""Kill-and-resume: a formal campaign that survives SIGKILL.

The paper's chip-level campaign is ~2600 independent check problems; at
production scale a nightly run can be pre-empted, OOM-killed, or simply
cancelled.  With a :class:`CampaignCheckpoint` attached, every
completed check is journaled to disk the moment it streams out of the
executor, so the next invocation picks up exactly where the dead one
stopped — and the finished report is byte-identical to one from an
uninterrupted run.

This demo does it for real:

1. launches the block-C campaign (101 properties, one seeded defect) in
   a child process, journaling to a checkpoint file;
2. waits until the journal holds a few dozen completed checks, then
   SIGKILLs the child mid-stream — no cleanup, no atexit, the hardest
   kill there is;
3. resumes the campaign in this process with a work-stealing executor:
   the journaled prefix replays (counterexample traces re-validated),
   only the remainder is checked;
4. proves the resumed report's canonical bytes equal an uninterrupted
   run's.

Run:  python examples/resume_campaign.py
"""

import multiprocessing
import os
import signal
import tempfile
import time

from repro.chip import ComponentChip
from repro.core.report import format_status_summary
from repro.orchestrate import (
    CampaignCheckpoint, CampaignOrchestrator, EngineConfig,
    WorkStealingExecutor,
)

ENGINES = (EngineConfig(sat_conflicts=500_000, bdd_nodes=5_000_000),)


def _blocks():
    return ComponentChip(defects={"B2"}, only_blocks=["C"]).blocks


def _child_campaign(journal_path):
    """The victim: a checkpointed campaign, slowed a little per property
    so the parent can land its kill mid-stream."""
    CampaignOrchestrator(
        _blocks(), engines=ENGINES,
        checkpoint=CampaignCheckpoint(journal_path),
    ).run(progress=lambda line: time.sleep(0.02))


def _journal_entries(journal_path):
    try:
        with open(journal_path, "r", encoding="utf-8") as handle:
            return max(0, len(handle.read().splitlines()) - 1)
    except OSError:
        return 0


def main():
    with tempfile.TemporaryDirectory(prefix="resume_demo_") as tmp:
        journal_path = os.path.join(tmp, "campaign.journal")

        print("=== Launching checkpointed campaign in a child process ===")
        context = multiprocessing.get_context("fork")
        child = context.Process(target=_child_campaign,
                                args=(journal_path,))
        child.start()
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if _journal_entries(journal_path) >= 30:
                break
            time.sleep(0.01)
        completed = _journal_entries(journal_path)
        print(f"  journal holds {completed} completed checks — "
              f"SIGKILL the campaign now")
        os.kill(child.pid, signal.SIGKILL)
        child.join()
        print(f"  child exit code: {child.exitcode} (killed)")

        print("\n=== Resuming from the journal ===")
        resumed = CampaignOrchestrator(
            _blocks(), engines=ENGINES,
            executor=WorkStealingExecutor(processes=2),
            checkpoint=CampaignCheckpoint(journal_path),
        ).run(resume=True)
        stats = resumed.stats
        print(f"  {format_status_summary(resumed)}")
        print(f"  replayed from journal: {stats['journal_replayed']} / "
              f"{resumed.total_properties} "
              f"(executor: {stats['executor']})")

        print("\n=== Proving the outcome is byte-identical ===")
        uninterrupted = CampaignOrchestrator(_blocks(),
                                             engines=ENGINES).run()
        identical = (resumed.canonical_bytes()
                     == uninterrupted.canonical_bytes())
        print(f"  resumed.canonical_bytes() == uninterrupted run: "
              f"{identical}")
        assert identical, "resume produced a different outcome!"
        for module, records in sorted(
                resumed.failures_by_module().items()):
            names = ", ".join(r.qualified_name for r in records)
            print(f"  seeded defect still caught: {module}: {names}")


if __name__ == "__main__":
    main()
