#!/usr/bin/env python
"""The full verification flow of Figure 5 on a chip subset.

Plays both roles of the paper's flow:

- the *logic designers* release Verifiable RTL and integrity specs
  (the chip blocks),
- the *verification engineer* lints the RTL, generates the stereotype
  PSL vunits, model checks every assertion, and feeds failures back as
  counterexample traces.

By default runs blocks A and C (~456 properties, a couple of minutes);
pass ``--full`` for the whole 2047-property chip, ``--defects`` to seed
all seven bugs and watch the feedback path light up.  The campaign runs
through the job orchestrator, parameterised by one declarative
``CampaignConfig`` (the same object ``python -m repro`` runs from a
TOML file): ``--jobs N`` checks properties on N worker processes,
``--cache FILE`` replays unchanged verdicts from a previous run
(incremental rerun).

Run:  python examples/full_campaign.py [--full] [--defects]
                                       [--jobs N] [--cache FILE]
"""

import argparse

from repro.chip import ALL_DEFECT_IDS, ComponentChip
from repro.core.campaign import FormalCampaign
from repro.core.report import format_status_summary, format_table2
from repro.orchestrate import CampaignConfig


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run all five blocks (2047 properties)")
    parser.add_argument("--defects", action="store_true",
                        help="seed the seven logic bugs of Table 3")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="check properties on N worker processes")
    parser.add_argument("--cache", default=None, metavar="FILE",
                        help="result-cache file for incremental reruns")
    args = parser.parse_args()

    blocks = None if args.full else ["A", "C"]
    defects = ALL_DEFECT_IDS if args.defects else ()
    chip = ComponentChip(defects=defects, only_blocks=blocks)

    scope = "all blocks" if args.full else "blocks A and C"
    seeded = "with all seven defects" if args.defects else "bug-free"
    print(f"Campaign over {scope}, {seeded} chip\n")

    config = CampaignConfig(
        sat_conflicts=1_000_000,
        bdd_nodes=10_000_000,
        executor=(f"parallel:{args.jobs}" if args.jobs is not None
                  else "serial"),
        cache_path=args.cache,
    )
    campaign = FormalCampaign(chip.blocks, config=config)
    done = [0]

    def progress(line):
        done[0] += 1
        if done[0] % 50 == 0:
            print(f"  ... {done[0]} assertions checked")

    report = campaign.run(progress=progress)

    print()
    print(format_table2(report))
    print()
    print(format_status_summary(report))
    if args.cache:
        print(f"cache: {report.stats['cache_hits']} hit(s), "
              f"{report.stats['cache_misses']} miss(es)")

    failures = report.failures_by_module()
    if failures:
        print("\nDesigner feedback (failures with counterexamples):")
        for module_name, records in sorted(failures.items()):
            first = records[0]
            print(f"\n{module_name}: {len(records)} failing "
                  f"assertion(s); first: {first.qualified_name} "
                  f"(depth {first.result.depth})")
            print("  " + first.result.trace.format()
                  .replace("\n", "\n  "))
    elif not report.all_passed:
        print("\nsome checks did not complete — inspect the report")
    else:
        print("\nAll properties verified successfully — ready for "
              "tape-out review.")


if __name__ == "__main__":
    main()
