#!/usr/bin/env python
"""Verifiable RTL: the Figure 6 flow plus its design impact (Table 4).

Shows the designer-side half of the methodology:

1. start from a plain leaf module with an integrity specification;
2. insert the error-injection hardware (``make_verifiable``) — one EC
   bit per protected entity, a shared ED bus, one mux per register;
3. wrap it for silicon with the injection ports tied to zero;
4. lint the Verifiable-RTL requirements;
5. emit both modules as Verilog (the Figure 6 listing);
6. measure what the feature costs in area and timing.

Run:  python examples/verifiable_rtl.py
"""

from repro.chip.library import canonical_leaf
from repro.rtl.inject import make_verifiable, make_wrapper
from repro.rtl.lint import lint_verifiable, lint_wrapper
from repro.rtl.verilog import emit_hierarchy
from repro.synth.area import area_increase
from repro.synth.timing import selector_impact


def main():
    base = canonical_leaf("B")
    verifiable = make_verifiable(base)
    wrapper = make_wrapper(verifiable, wrapper_name="A",
                           inst_name="B_in_A")

    print("=== Verifiable-RTL lint ===")
    issues = lint_verifiable(verifiable) + lint_wrapper(wrapper)
    print("clean" if not issues else "\n".join(map(str, issues)))

    print("\n=== Figure 6: Verilog of the Verifiable RTL ===\n")
    print(emit_hierarchy(wrapper))

    print("\n=== Design impact of the injection feature ===")
    increase = area_increase(base, verifiable)
    timing = selector_impact(base, verifiable)
    print(f"area: {increase.base.gate_equivalents:.1f} GE -> "
          f"{increase.verifiable.gate_equivalents:.1f} GE "
          f"(+{increase.percent:.2f}%, {increase.added_muxes} selectors)")
    print(f"selector delay: {timing.selector_delay_ps:.0f} ps = "
          f"{timing.selector_percent_of_cycle:.1f}% of the 4 ns cycle")
    print(f"critical path: {timing.base.critical_path_ps:.0f} ps -> "
          f"{timing.verifiable.critical_path_ps:.0f} ps "
          f"(closes timing: {timing.closes_timing})")
    print("\nNote: on a tiny demonstration module the selectors are a "
          "visible fraction of the area; at implementation scale "
          "(benchmarks/test_table4_area.py) the increase drops below "
          "the paper's 2% bound.")


if __name__ == "__main__":
    main()
