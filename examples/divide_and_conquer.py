#!/usr/bin/env python
"""Divide and conquer: the Figure 7 walkthrough.

The output-integrity property of a wide merge datapath (three pipelines
feeding check point D) exceeds the model checker's resource budget when
checked in one piece.  Following the paper's section 4.2, the property
is divided at the internal parity checkpoints A', B', C':

1. the integrity of each chain end is proved from the primary inputs;
2. the output property is proved on an abstraction where each chain end
   is a free input assumed to carry odd parity.

Run:  python examples/divide_and_conquer.py
"""

from repro.chip.library import fig7_cut_registers, fig7_module
from repro.core.partition import partition_property
from repro.core.stereotypes import integrity_vunit
from repro.formal.budget import ResourceBudget
from repro.formal.engine import ModelChecker
from repro.psl.compile import compile_assertion
from repro.rtl.inject import make_verifiable

NODE_QUOTA = 400_000


def check(ts, label):
    budget = ResourceBudget(bdd_nodes=NODE_QUOTA)
    result = ModelChecker(ts, budget).check(method="bdd-forward")
    stats = ts.size_stats()
    print(f"  {label:34s} latches={stats['latches']:4d} "
          f"verdict={result.status.upper():8s} "
          f"nodes={budget.spent_nodes:>9,}")
    return result


def main():
    module = make_verifiable(fig7_module())
    unit = integrity_vunit(module)
    assert_name = unit.asserted()[0][0]
    cuts = fig7_cut_registers(module)

    print(f"Workload: {module.name} — three pipelines of 17-bit "
          f"protected words merging into check point D")
    print(f"Property: {assert_name} (output data integrity)")
    print(f"Engine quota: {NODE_QUOTA:,} BDD nodes per check "
          f"(deterministic time-out)\n")

    print("Monolithic check (Figure 7 (1)):")
    monolithic = compile_assertion(module, unit, assert_name)
    result = check(monolithic, assert_name)
    assert result.timed_out, "expected the monolithic check to time out"

    print(f"\nDividing at internal checkpoints {cuts} "
          f"(Figure 7 (2)):")
    plan = partition_property(module, unit, assert_name, cuts)
    for piece in plan.checkpoint_problems:
        check(piece.ts, piece.name)
    check(plan.abstract_problem.ts, plan.abstract_problem.name)

    print("\nEvery piece passes inside the same quota: the division "
          "turned one intractable check into four small ones, and the "
          "checkpoint proofs discharge exactly the assumptions the "
          "abstract piece introduces.")


if __name__ == "__main__":
    main()
