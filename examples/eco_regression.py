#!/usr/bin/env python
"""ECO regression: incremental re-verification plus equivalence proofs.

The paper reports six post-route ECOs, twice reusing the spare gates the
error-injection feature left in the netlist.  Every ECO needs (a) the
stereotype properties re-proved on the patched RTL and (b) a proof that
the patch still implements the released RTL.  This example shows both,
the first one *incrementally*:

1. a full formal campaign over block C, with the orchestrator's result
   cache attached (the cold run — every property checked by an engine);
2. an "ECO" that touches exactly one module (the B2 parity bug sneaks
   back into the C00 FSM controller) followed by a warm-cache rerun —
   the 12 untouched modules replay their cached verdicts and only
   ``C00_fsmctl`` is re-checked, which is what makes nightly ECO
   regression cheap no matter how big the chip grows;
3. the equivalence-checking role: the Figure 6 transparency proofs and
   the bad ECO caught as an inequivalence, with the diverging stimulus
   as the regression test.

Run:  python examples/eco_regression.py
"""

import os
import tempfile

from repro.chip import ComponentChip
from repro.chip.specials import (
    fsm_controller, register_file, wrap_counter,
)
from repro.core.campaign import FormalCampaign
from repro.core.report import format_status_summary
from repro.formal.budget import ResourceBudget
from repro.formal.equivalence import (
    check_equivalence, injection_transparent,
)
from repro.orchestrate import CampaignConfig, ResultCache
from repro.rtl.inject import make_verifiable


def budget():
    return ResourceBudget(sat_conflicts=500_000, bdd_nodes=5_000_000)


def run_campaign(chip, cache):
    config = CampaignConfig(sat_conflicts=500_000,
                            bdd_nodes=5_000_000)
    campaign = FormalCampaign(chip.blocks, config=config, cache=cache)
    report = campaign.run()
    stats = report.stats
    print(f"  {format_status_summary(report)}")
    checked = ", ".join(stats["modules_checked"]) or "none"
    print(f"  cache: {stats['cache_hits']} hit(s), "
          f"{stats['cache_misses']} miss(es); "
          f"modules re-checked: {checked}")
    return report


def main():
    with tempfile.TemporaryDirectory(prefix="eco_cache_") as cache_dir:
        cache_path = os.path.join(cache_dir, "results.json")

        print("=== Release run: block C campaign, cold cache ===")
        golden = ComponentChip(only_blocks=["C"])
        run_campaign(golden, ResultCache(cache_path))

        print("\n=== ECO touches one module: warm-cache regression ===")
        patched = ComponentChip(defects={"B2"}, only_blocks=["C"])
        report = run_campaign(patched, ResultCache(cache_path))
        touched = report.stats["modules_checked"]
        assert touched == ["C00_fsmctl"], touched
        for record in report.failures_by_module().get("C00_fsmctl", []):
            print(f"  regression caught: {record.qualified_name} FAILS "
                  f"(depth {record.result.depth})")

    print("\n=== Transparency proofs (Figure 6 contract) ===")
    builders = {
        "A00_wrapcnt": wrap_counter,
        "A01_regfile": register_file,
        "C00_fsmctl": fsm_controller,
    }
    for name, builder in builders.items():
        base = builder(name)
        verifiable = make_verifiable(base)
        result = injection_transparent(base, verifiable, budget())
        print(f"  {name:14s} EC/ED tied to zero == release RTL: "
              f"{result.status.upper()} ({result.seconds * 1000:.0f} ms)")

    print("\n=== A bad ECO: the B2 parity bug sneaks back in ===")
    golden_fsm = fsm_controller("C00_fsmctl", buggy=False)
    patched_fsm = fsm_controller("C00_fsmctl", buggy=True)
    result = check_equivalence(golden_fsm, patched_fsm, budget=budget())
    print(f"  equivalence verdict: {result.status.upper()} at depth "
          f"{result.depth}")
    print("  diverging stimulus (add this to the regression suite):")
    print("  " + result.trace.format().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
