#!/usr/bin/env python
"""ECO regression with sequential equivalence checking.

The paper reports six post-route ECOs, twice reusing the spare gates the
error-injection feature left in the netlist.  Every ECO needs a proof
that the patched module still implements the RTL.  This example shows
the equivalence checker in both roles:

1. proving the Figure 6 transparency claim — injection tied off equals
   the original release — for every defect-host module of the chip;
2. catching a bad "fix" (the B2 FSM with its parity bug re-introduced)
   as an inequivalence, with the diverging stimulus as the regression
   test.

Run:  python examples/eco_regression.py
"""

from repro.chip.specials import (
    fsm_controller, register_file, wrap_counter,
)
from repro.formal.budget import ResourceBudget
from repro.formal.equivalence import (
    check_equivalence, injection_transparent,
)
from repro.rtl.inject import make_verifiable


def budget():
    return ResourceBudget(sat_conflicts=500_000, bdd_nodes=5_000_000)


def main():
    print("=== Transparency proofs (Figure 6 contract) ===")
    builders = {
        "A00_wrapcnt": wrap_counter,
        "A01_regfile": register_file,
        "C00_fsmctl": fsm_controller,
    }
    for name, builder in builders.items():
        base = builder(name)
        verifiable = make_verifiable(base)
        result = injection_transparent(base, verifiable, budget())
        print(f"  {name:14s} EC/ED tied to zero == release RTL: "
              f"{result.status.upper()} ({result.seconds * 1000:.0f} ms)")

    print("\n=== A bad ECO: the B2 parity bug sneaks back in ===")
    golden = fsm_controller("C00_fsmctl", buggy=False)
    patched = fsm_controller("C00_fsmctl", buggy=True)
    result = check_equivalence(golden, patched, budget=budget())
    print(f"  equivalence verdict: {result.status.upper()} at depth "
          f"{result.depth}")
    print("  diverging stimulus (add this to the regression suite):")
    print("  " + result.trace.format().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
