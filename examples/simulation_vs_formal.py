#!/usr/bin/env python
"""Simulation vs formal verification on the hardest bug (B1).

Reproduces the paper's headline contrast on the reserved-field
register-file bug: a budgeted random-simulation campaign never hits the
arming write sequence, while the formal soundness check produces a
minimal counterexample in milliseconds — spelling out the exact write
sequence a designer needs to understand the bug.

Run:  python examples/simulation_vs_formal.py
"""

from repro.chip.specials import (
    ARM_ADDRESS, ARM_DATA_NIBBLE, REGFILE_ADDRESSES, RESERVED_REGISTER,
    register_file,
)
from repro.core.stereotypes import soundness_vunit
from repro.formal.budget import ResourceBudget
from repro.formal.engine import ModelChecker
from repro.psl.compile import compile_assertion
from repro.rtl.elaborate import elaborate
from repro.rtl.inject import make_verifiable
from repro.sim.campaign import SimulationCampaign

SIM_CYCLES = 20_000


def main():
    module = make_verifiable(register_file("A01_regfile", buggy=True))
    print("Defect B1: writes to the reserved field of the register at "
          f"address {REGFILE_ADDRESSES[RESERVED_REGISTER]:#04x} store "
          "inconsistent parity — but only after an arming write to "
          f"{ARM_ADDRESS:#04x} with data nibble {ARM_DATA_NIBBLE:#x}.\n")

    print(f"--- Logic simulation: {SIM_CYCLES} cycles of legal random "
          f"traffic ---")
    campaign = SimulationCampaign([module],
                                  cycles_per_module=SIM_CYCLES,
                                  seed=2004)
    report = campaign.run()
    result = report.results[0]
    if result.found_bug:
        print(f"violation at cycle {result.first_violation_cycle} "
              f"(unusually lucky seed)")
    else:
        print(f"no violation in {result.cycles_run} cycles "
              f"({result.seconds:.1f}s of simulation): the arming "
              f"sequence is a ~2^-23 event per cycle pair")

    print("\n--- Formal verification: soundness stereotype (P1) ---")
    unit = soundness_vunit(module)
    ts = compile_assertion(module, unit, "pNoError_HE")
    checker = ModelChecker(ts, ResourceBudget(sat_conflicts=500_000,
                                              bdd_nodes=5_000_000))
    outcome = checker.check()
    print(f"verdict: {outcome.status.upper()} in "
          f"{outcome.seconds * 1000:.0f} ms "
          f"(engine {outcome.engine}, counterexample depth "
          f"{outcome.depth})")
    print("\nThe counterexample IS the triggering scenario:")
    print(outcome.trace.format())
    print("\ncycle 0 arms the register file, cycle 1 writes a non-zero "
          "reserved field, and the hardware error report fires in "
          "cycle 2 during 'normal' operation — the paper's point: "
          "exhaustive search needs no test scenario at all.")


if __name__ == "__main__":
    main()
