"""Cycle simulator semantics and cross-check against the AIG."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chip.library import canonical_leaf
from repro.rtl.elaborate import elaborate
from repro.rtl.inject import make_verifiable
from repro.rtl.module import Module
from repro.rtl.netlist import bitblast
from repro.rtl.signals import mux
from repro.sim.simulator import SimulationError, Simulator


def counter_design():
    m = Module("cnt")
    en = m.input("EN", 1)
    r = m.reg("r", 4, reset=0)
    r.next = mux(en, r + 1, r)
    m.output("Y", r)
    return elaborate(m)


class TestBasics:
    def test_reset_values(self):
        design = counter_design()
        sim = Simulator(design)
        assert sim.peek("r") == 0

    def test_outputs_sampled_before_update(self):
        sim = Simulator(counter_design())
        outs = sim.step({"EN": 1})
        assert outs["Y"] == 0        # pre-update value visible
        assert sim.peek("r") == 1    # register updated after the edge

    def test_unknown_input_rejected(self):
        sim = Simulator(counter_design())
        with pytest.raises(SimulationError):
            sim.step({"NOPE": 1})

    def test_out_of_range_value_rejected(self):
        sim = Simulator(counter_design())
        with pytest.raises(SimulationError):
            sim.step({"EN": 2})

    def test_missing_inputs_default_zero(self):
        sim = Simulator(counter_design())
        sim.step({})
        assert sim.peek("r") == 0

    def test_poke_and_reset(self):
        sim = Simulator(counter_design())
        sim.poke("r", 9)
        assert sim.peek("r") == 9
        sim.reset()
        assert sim.peek("r") == 0 and sim.cycle == 0

    def test_run_returns_per_cycle_outputs(self):
        sim = Simulator(counter_design())
        records = sim.run([{"EN": 1}] * 4)
        assert [r["Y"] for r in records] == [0, 1, 2, 3]


class TestAgainstAig:
    """The word-level simulator and the bit-blasted AIG must agree on
    every cycle — a strong end-to-end check of both lowerings."""

    @pytest.mark.parametrize("seed", range(5))
    def test_canonical_leaf_lockstep(self, seed):
        module = make_verifiable(canonical_leaf())
        design = elaborate(module)
        sim = Simulator(design)
        blaster = bitblast(elaborate(module))
        aig = blaster.aig
        state = {lit: aig.latch_init[lit] for lit in aig.latches}
        rng = random.Random(seed)
        for _ in range(40):
            inputs = {name: rng.randrange(1 << port.width)
                      for name, port in design.inputs.items()}
            word_outs = sim.step(inputs)
            values = dict(state)
            for name, value in inputs.items():
                for pos, lit in enumerate(blaster.input_bits[name]):
                    values[lit] = (value >> pos) & 1
            roots = []
            for name in design.outputs:
                roots.extend(blaster.output_bits[name])
            roots.extend(aig.latch_next[lit] for lit in aig.latches)
            results = aig.evaluate(roots, values)
            cursor = 0
            for name in design.outputs:
                width = len(blaster.output_bits[name])
                got = sum(bit << pos for pos, bit in
                          enumerate(results[cursor:cursor + width]))
                cursor += width
                assert got == word_outs[name], f"output {name} diverged"
            state = {lit: results[cursor + index]
                     for index, lit in enumerate(aig.latches)}
