"""Module and hierarchy model."""

import pytest

from repro.rtl.module import Module, RtlError, iter_leaf_modules, iter_modules
from repro.rtl.signals import Const, const


def make_child():
    child = Module("child")
    a = child.input("A", 4)
    r = child.reg("r", 4)
    r.next = a
    child.output("Y", r ^ 1)
    return child


class TestModule:
    def test_duplicate_input_rejected(self):
        m = Module("m")
        m.input("A", 4)
        with pytest.raises(RtlError):
            m.input("A", 4)

    def test_input_output_name_clash(self):
        m = Module("m")
        m.input("A", 4)
        with pytest.raises(RtlError):
            m.output("A", const(0, 4))

    def test_duplicate_register_rejected(self):
        m = Module("m")
        m.reg("r", 4)
        with pytest.raises(RtlError):
            m.reg("r", 2)

    def test_constant_output_needs_width(self):
        m = Module("m")
        with pytest.raises(RtlError):
            m.output("Y", 3)
        m.output("Z", 3, width=4)
        assert m.outputs["Z"].value == 3

    def test_signal_lookup(self):
        m = make_child()
        assert m.signal("A") is m.inputs["A"]
        assert m.signal("Y") is m.outputs["Y"]
        assert m.signal("r") is m.regs[0]
        with pytest.raises(KeyError):
            m.signal("nope")
        assert set(m.signal_names()) == {"A", "Y", "r"}

    def test_validate_catches_undriven_reg(self):
        m = Module("m")
        m.reg("r", 4)
        with pytest.raises(RtlError):
            m.validate()


class TestInstance:
    def test_binding_checks(self):
        parent = Module("parent")
        child = make_child()
        with pytest.raises(RtlError):
            parent.instantiate(child, "u0", NOPE=const(0, 4))
        with pytest.raises(RtlError):
            parent.instantiate(child, "u1", A=const(0, 5))

    def test_unbound_input_caught_by_validate(self):
        parent = Module("parent")
        child = make_child()
        inst = parent.instantiate(child, "u0")
        parent.output("Y", inst["Y"])
        with pytest.raises(RtlError):
            parent.validate()

    def test_instance_output_access(self):
        parent = Module("parent")
        child = make_child()
        inst = parent.instantiate(child, "u0", A=parent.input("X", 4))
        y = inst["Y"]
        assert y.width == 4
        assert inst["Y"] is y  # memoised
        with pytest.raises(RtlError):
            inst["NOPE"]

    def test_leaf_classification(self):
        child = make_child()
        parent = Module("parent")
        parent.instantiate(child, "u0", A=parent.input("X", 4))
        assert child.is_leaf()
        assert not parent.is_leaf()


class TestIteration:
    def test_iter_modules_leaves_first(self):
        child = make_child()
        mid = Module("mid")
        mid.instantiate(child, "u0", A=mid.input("X", 4))
        top = Module("top")
        top.instantiate(mid, "m0", X=top.input("X", 4))
        order = [m.name for m in iter_modules(top)]
        assert order == ["child", "mid", "top"]

    def test_shared_module_visited_once(self):
        child = make_child()
        top = Module("top")
        x = top.input("X", 4)
        top.instantiate(child, "u0", A=x)
        top.instantiate(child, "u1", A=x)
        assert [m.name for m in iter_modules(top)] == ["child", "top"]
        assert [m.name for m in iter_leaf_modules(top)] == ["child"]
