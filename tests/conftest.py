"""Shared fixtures: representative modules and budgets."""

import pytest

from repro.chip.library import canonical_leaf
from repro.formal.budget import ResourceBudget
from repro.rtl.inject import make_verifiable


@pytest.fixture
def leaf():
    """The Figure 1 canonical leaf (base, no injection ports)."""
    return canonical_leaf()


@pytest.fixture
def verifiable_leaf():
    """The Figure 1 canonical leaf in Verifiable RTL form."""
    return make_verifiable(canonical_leaf())


@pytest.fixture
def budget():
    """A generous but finite budget so a broken engine cannot hang."""
    return ResourceBudget(sat_conflicts=500_000, bdd_nodes=5_000_000)
