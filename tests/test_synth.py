"""Gate-level lowering, area model and static timing (Table 4 machinery)."""

import pytest

from repro.chip.library import canonical_leaf
from repro.rtl.elaborate import elaborate
from repro.rtl.inject import make_verifiable
from repro.rtl.module import Module
from repro.rtl.signals import const, mux
from repro.synth.area import AreaReport, area_increase
from repro.synth.cells import CLOCK_PERIOD_PS, LIBRARY
from repro.synth.lower import lower
from repro.synth.timing import analyse_module, selector_impact


def tiny_module():
    m = Module("tiny")
    a = m.input("A", 4)
    b = m.input("B", 4)
    r = m.reg("r", 4, reset=0)
    r.next = a ^ b
    m.output("Y", r & a)
    return m


class TestLowering:
    def test_cell_counts(self):
        net = lower(elaborate(tiny_module()))
        counts = net.counts()
        assert counts["DFF"] == 4
        assert counts["XOR2"] == 4
        assert counts["AND2"] == 4
        assert counts["PI"] == 8

    def test_every_dff_has_a_driver(self):
        net = lower(elaborate(canonical_leaf()))
        dffs = [i for i, g in enumerate(net.gates) if g.cell == "DFF"]
        assert sorted(net.dff_d) == sorted(dffs)

    def test_mux_lowering(self):
        m = Module("m")
        s = m.input("S", 1)
        a = m.input("A", 8)
        b = m.input("B", 8)
        m.output("Y", mux(s, a, b))
        net = lower(elaborate(m))
        assert net.counts()["MUX2"] == 8

    def test_adder_lowering(self):
        m = Module("m")
        a = m.input("A", 4)
        m.output("Y", a + const(1, 4))
        counts = lower(elaborate(m)).counts()
        assert counts["XOR2"] == 8      # two per full-adder bit

    def test_reduction_tree(self):
        m = Module("m")
        a = m.input("A", 8)
        m.output("Y", a.reduce_xor())
        counts = lower(elaborate(m)).counts()
        assert counts["XOR2"] == 7      # balanced tree of n-1 gates


class TestArea:
    def test_gate_equivalents(self):
        report = AreaReport.of_module(tiny_module())
        expected = (4 * LIBRARY["DFF"].area + 4 * LIBRARY["XOR2"].area
                    + 4 * LIBRARY["AND2"].area)
        assert report.gate_equivalents == pytest.approx(expected)

    def test_injection_adds_muxes(self):
        base = canonical_leaf()
        verifiable = make_verifiable(base)
        increase = area_increase(base, verifiable)
        # one MUX2 per protected register bit: A is 4 bits, B is 9
        assert increase.added_muxes == 13
        assert increase.absolute > 0

    def test_injection_overhead_is_small(self):
        """The Table 4 claim: area increase below 2 percent needs a
        realistically sized module; on the tiny canonical leaf it is
        larger but still bounded."""
        base = canonical_leaf()
        increase = area_increase(base, make_verifiable(base))
        assert 0 < increase.percent < 35


class TestTiming:
    def test_arrival_monotonic(self):
        report = analyse_module(tiny_module())
        assert report.critical_path_ps > 0
        assert report.meets_timing

    def test_selector_delay_is_mux_cell(self):
        base = canonical_leaf()
        impact = selector_impact(base, make_verifiable(base))
        assert impact.selector_delay_ps == LIBRARY["MUX2"].delay
        # ~200 ps on a 4 ns cycle: the paper's "about 4-5%"
        assert 4.0 <= impact.selector_percent_of_cycle <= 6.0

    def test_injection_delay_bounded_by_selector(self):
        base = canonical_leaf()
        impact = selector_impact(base, make_verifiable(base))
        assert impact.added_delay_ps <= impact.selector_delay_ps + 1e-9
        assert impact.closes_timing

    def test_clock_period_matches_250mhz(self):
        assert CLOCK_PERIOD_PS == pytest.approx(4000.0)
