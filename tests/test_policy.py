"""Scheduling and portfolio policies: behaviour and outcome-invariance.

The policy layer's contract is sharp: policies may move *cost* —
which worker runs what, which engine gets tried first — but never the
campaign outcome.  These tests pin both halves: the mechanics (batch
partitioning, history extraction, permutation handling) and the
invariant (``CampaignReport.canonical_bytes`` identical under every
policy, across executors).
"""

import dataclasses
import shutil

import pytest

from repro.chip import ComponentChip
from repro.formal.engine import CheckResult, PASS, TIMEOUT
from repro.orchestrate import (
    AdaptivePortfolio, CampaignConfig, CampaignOrchestrator, EngineConfig,
    FifoScheduling, ModuleAffinityScheduling, ResultCache, StaticPortfolio,
    WorkStealingExecutor, plan_campaign, portfolio_policy,
    run_check_job, scheduling_policy,
)


def _engines(*methods, **overrides):
    overrides.setdefault("sat_conflicts", 500_000)
    overrides.setdefault("bdd_nodes", 5_000_000)
    if not methods:
        return (EngineConfig(**overrides),)
    return tuple(EngineConfig(method=method, **overrides)
                 for method in methods)


@pytest.fixture(scope="module")
def small_blocks():
    """Two modules of block C with one seeded defect: 17 jobs, PASS
    and FAIL mixed."""
    chip = ComponentChip(defects={"B2"}, only_blocks=["C"])
    return [("C", chip.blocks[0][1][:2])]


@pytest.fixture(scope="module")
def small_plan(small_blocks):
    return plan_campaign(small_blocks, _engines())


# ----------------------------------------------------------------------
# scheduling policies
# ----------------------------------------------------------------------

class TestScheduling:
    def test_registry_lookup(self):
        assert isinstance(scheduling_policy("fifo"), FifoScheduling)
        assert isinstance(scheduling_policy("module-affinity"),
                          ModuleAffinityScheduling)
        with pytest.raises(ValueError, match="unknown scheduling"):
            scheduling_policy("lifo")

    def test_fifo_is_one_job_per_unit(self, small_plan):
        units = FifoScheduling().batches(small_plan.jobs)
        assert [job.index for unit in units for job in unit] == \
            [job.index for job in small_plan.jobs]
        assert all(len(unit) == 1 for unit in units)

    def test_module_affinity_matches_module_groups(self, small_plan):
        """One unit per module group, exactly the planner's grouping,
        in first-appearance order — a partition of the plan."""
        units = ModuleAffinityScheduling().batches(small_plan.jobs)
        groups = small_plan.module_groups()
        assert [[job.index for job in unit] for unit in units] == \
            list(groups.values())
        flat = [job.index for unit in units for job in unit]
        assert sorted(flat) == [job.index for job in small_plan.jobs]

    def test_executor_rejects_lossy_policy(self, small_plan):
        class Lossy(FifoScheduling):
            def batches(self, jobs):
                return super().batches(jobs)[:-1]

        executor = WorkStealingExecutor(processes=2, scheduling=Lossy())
        with pytest.raises(RuntimeError, match="lost or duplicated"):
            list(executor.map(small_plan.jobs))

    @pytest.mark.parametrize("processes", [2, 3])
    def test_work_stealing_streams_plan_order_under_affinity(
            self, small_plan, processes):
        executor = WorkStealingExecutor(
            processes=processes,
            scheduling=ModuleAffinityScheduling(),
        )
        results = list(executor.map(small_plan.jobs))
        assert [r.index for r in results] == \
            [job.index for job in small_plan.jobs]

    def test_error_in_batch_poisons_only_its_unit(self, small_plan):
        """A failing job inside a module batch must surface exactly at
        its plan position; earlier results still stream out."""
        jobs = [dataclasses.replace(job) for job in small_plan.jobs]
        bad_index = jobs[-1].index
        jobs[-1] = dataclasses.replace(
            jobs[-1], engines=(EngineConfig(method="quantum"),)
        )
        executor = WorkStealingExecutor(
            processes=2, scheduling=ModuleAffinityScheduling()
        )
        yielded = []
        with pytest.raises(ValueError, match="unknown method"):
            for result in executor.map(jobs):
                yielded.append(result.index)
        assert yielded == list(range(bad_index))


# ----------------------------------------------------------------------
# portfolio policies
# ----------------------------------------------------------------------

class TestPortfolioOrdering:
    def test_registry_lookup(self):
        assert isinstance(portfolio_policy("static"), StaticPortfolio)
        assert isinstance(portfolio_policy("adaptive"),
                          AdaptivePortfolio)
        with pytest.raises(ValueError, match="unknown portfolio"):
            portfolio_policy("oracle")

    def test_static_never_reorders(self, small_plan):
        policy = StaticPortfolio()
        assert all(policy.order(job) is None for job in small_plan.jobs)

    def test_adaptive_without_cache_is_static(self, small_plan):
        policy = AdaptivePortfolio(None)
        assert all(policy.order(job) is None for job in small_plan.jobs)

    def _job_with_history(self, small_blocks, tmp_path, winner):
        """A portfolio job plus a cache seeded so ``winner`` is the
        module/category's historical engine."""
        plan = plan_campaign(
            small_blocks, _engines("pobdd", "bdd-combined", "kind"))
        job = plan.jobs[0]
        cache = ResultCache(str(tmp_path / "cache.json"))
        cache.store("some-old-fingerprint",
                    CheckResult("p", PASS, winner), job=job)
        return job, cache

    def test_adaptive_moves_winner_first(self, small_blocks, tmp_path):
        job, cache = self._job_with_history(small_blocks, tmp_path,
                                            "kind")
        order = AdaptivePortfolio(cache).order(job)
        assert order == (2, 0, 1)

    def test_adaptive_keeps_leading_winner(self, small_blocks, tmp_path):
        job, cache = self._job_with_history(small_blocks, tmp_path,
                                            "pobdd")
        assert AdaptivePortfolio(cache).order(job) is None

    def test_adaptive_ignores_foreign_winner(self, small_blocks,
                                             tmp_path):
        job, cache = self._job_with_history(small_blocks, tmp_path,
                                            "bmc")
        assert AdaptivePortfolio(cache).order(job) is None

    def test_category_fallback(self, small_blocks, tmp_path):
        """History from one module generalises to same-category jobs of
        other modules (the (None, category) fallback)."""
        plan = plan_campaign(
            small_blocks, _engines("pobdd", "bdd-combined", "kind"))
        seed = plan.jobs[0]
        other = next(job for job in plan.jobs
                     if job.module.name != seed.module.name
                     and job.category == seed.category)
        cache = ResultCache(str(tmp_path / "cache.json"))
        cache.store("fp", CheckResult("p", PASS, "kind"), job=seed)
        assert AdaptivePortfolio(cache).order(other) == (2, 0, 1)


class TestEngineHistory:
    def _cache(self, tmp_path):
        return ResultCache(str(tmp_path / "cache.json"))

    def _store(self, cache, job, **result_kwargs):
        result_kwargs.setdefault("name", "p")
        result_kwargs.setdefault("status", PASS)
        cache.store(f"fp-{len(cache)}", CheckResult(**result_kwargs),
                    job=job)

    def test_winner_from_portfolio_attempts(self, small_plan, tmp_path):
        cache = self._cache(tmp_path)
        job = small_plan.jobs[0]
        result = CheckResult("p", PASS, "portfolio:bdd-combined",
                             stats={"portfolio": [
                                 {"engine": "kind", "status": TIMEOUT},
                                 {"engine": "bdd-combined",
                                  "status": PASS},
                             ]})
        cache.store("fp", result, job=job)
        history = cache.engine_history()
        assert history[(job.module.name, job.category)] == \
            "bdd-combined"
        assert history[(None, job.category)] == "bdd-combined"

    def test_winner_from_plain_engine_labels(self, small_plan,
                                             tmp_path):
        cache = self._cache(tmp_path)
        job = small_plan.jobs[0]
        self._store(cache, job, engine="auto:kind")
        assert cache.engine_history()[(job.module.name, job.category)] \
            == "auto"

    def test_non_definitive_entries_ignored(self, small_plan, tmp_path):
        cache = self._cache(tmp_path)
        job = small_plan.jobs[0]
        self._store(cache, job, status=TIMEOUT, engine="kind")
        assert cache.engine_history() == {}

    def test_entries_without_job_metadata_ignored(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.store("fp", CheckResult("p", PASS, "kind"))  # no job
        assert cache.engine_history() == {}

    def test_newest_entry_wins(self, small_plan, tmp_path):
        cache = self._cache(tmp_path)
        job = small_plan.jobs[0]
        self._store(cache, job, engine="kind")
        self._store(cache, job, engine="pobdd")
        assert cache.engine_history()[(job.module.name, job.category)] \
            == "pobdd"


class TestEngineOrderExecution:
    def test_bad_permutation_rejected(self, small_plan):
        job = dataclasses.replace(
            small_plan.jobs[0],
            engines=_engines("kind", "bdd-combined"),
            engine_order=(0, 0),
        )
        with pytest.raises(ValueError, match="not a permutation"):
            run_check_job(job)

    def test_non_definitive_reports_configured_last_stage(
            self, small_plan):
        """When no stage settles the check, the reported result must be
        the configured-last stage's, whatever order the stages ran in —
        that is what keeps reordered portfolios outcome-invariant."""
        job = next(j for j in small_plan.jobs)
        starved = _engines("bmc", "kind", sat_conflicts=0, max_bound=2,
                           max_k=2)
        static = dataclasses.replace(job, engines=starved)
        reordered = dataclasses.replace(job, engines=starved,
                                        engine_order=(1, 0))
        static_result = run_check_job(static).result
        reordered_result = run_check_job(reordered).result
        assert static_result.status == reordered_result.status
        assert static_result.engine == reordered_result.engine
        attempts = [a["engine"] for a in
                    reordered_result.stats["portfolio"]]
        assert attempts == ["kind", "bmc"]  # ran reordered...
        # ...but reported as the static order would


# ----------------------------------------------------------------------
# the invariant: policies move stats, never the outcome
# ----------------------------------------------------------------------

class TestOutcomeInvariance:
    @pytest.fixture(scope="class")
    def reference(self, small_blocks):
        config = CampaignConfig(engines="portfolio:pobdd,bdd-combined,kind",
                                sat_conflicts=500_000,
                                bdd_nodes=5_000_000)
        return CampaignOrchestrator(small_blocks, config=config).run()

    @pytest.mark.parametrize("executor_spec", ["serial", "parallel:2",
                                               "workstealing:2"])
    @pytest.mark.parametrize("scheduling", ["fifo", "module-affinity"])
    def test_scheduling_never_moves_the_outcome(
            self, small_blocks, reference, executor_spec, scheduling):
        config = CampaignConfig(engines="portfolio:pobdd,bdd-combined,kind",
                                sat_conflicts=500_000,
                                bdd_nodes=5_000_000,
                                executor=executor_spec,
                                scheduling=scheduling)
        report = CampaignOrchestrator(small_blocks, config=config).run()
        assert report.canonical_bytes() == reference.canonical_bytes()
        assert report.stats["scheduling"] == \
            (scheduling if executor_spec.startswith("workstealing")
             else "fifo")

    def test_adaptive_portfolio_moves_only_stats(self, small_blocks,
                                                 tmp_path):
        """The ECO scenario: history says `kind` wins, the configured
        ladder tries `pobdd` first.  The adaptive run must attempt
        different engines (stats move) yet land the byte-identical
        outcome."""
        warm_path = str(tmp_path / "warm.json")
        warm = CampaignConfig(engines="portfolio:kind,bdd-combined,pobdd",
                              sat_conflicts=500_000,
                              bdd_nodes=5_000_000, cache_path=warm_path)
        CampaignOrchestrator(small_blocks, config=warm).run()

        # budgets changed -> every fingerprint misses, history remains
        static_path = str(tmp_path / "static.json")
        adaptive_path = str(tmp_path / "adaptive.json")
        shutil.copy(warm_path, static_path)
        shutil.copy(warm_path, adaptive_path)
        eco = CampaignConfig(engines="portfolio:pobdd,bdd-combined,kind",
                             sat_conflicts=400_000,
                             bdd_nodes=5_000_000)
        static = CampaignOrchestrator(
            small_blocks,
            config=dataclasses.replace(eco, cache_path=static_path),
        ).run()
        adaptive = CampaignOrchestrator(
            small_blocks,
            config=dataclasses.replace(eco, cache_path=adaptive_path,
                                       portfolio="adaptive"),
        ).run()
        assert static.stats["portfolio_reordered"] == 0
        assert adaptive.stats["portfolio_reordered"] == \
            adaptive.stats["jobs"]
        assert adaptive.stats["engine_attempts"] == \
            {"kind": adaptive.stats["jobs"]}
        assert static.stats["engine_attempts"] == \
            {"pobdd": static.stats["jobs"]}
        assert adaptive.canonical_bytes() == static.canonical_bytes()

    def test_adaptive_with_empty_history_is_static(self, small_blocks,
                                                   reference, tmp_path):
        config = CampaignConfig(engines="portfolio:pobdd,bdd-combined,kind",
                                sat_conflicts=500_000,
                                bdd_nodes=5_000_000,
                                portfolio="adaptive",
                                cache_path=str(tmp_path / "cold.json"))
        report = CampaignOrchestrator(small_blocks, config=config).run()
        assert report.stats["portfolio_reordered"] == 0
        assert report.canonical_bytes() == reference.canonical_bytes()
