"""Unroller and BMC internals: frame linkage, constraint timing,
minimal-depth search."""

import pytest

from repro.formal.bmc import BmcResult, Unroller, bmc
from repro.formal.budget import ResourceBudget
from repro.formal.sat import Solver
from repro.psl.compile import compile_assertion
from repro.psl.parser import parse_vunit
from repro.rtl.module import Module
from repro.rtl.signals import const, mux


def toggle_problem():
    """A toggler: BAD exactly on odd cycles unless frozen."""
    m = Module("t")
    freeze = m.input("FRZ", 1)
    r = m.reg("r", 1, reset=0)
    r.next = mux(freeze, r, ~r)
    m.output("BAD", r)
    unit = parse_vunit(
        "vunit v (t) { property p = never ( BAD ); assert p; }"
    )
    return compile_assertion(m, unit, "p")


class TestUnroller:
    def test_frame_zero_pins_init(self):
        ts = toggle_problem()
        solver = Solver()
        unroller = Unroller(ts, solver, constrain_init=True)
        bad0 = unroller.bad_at(0)
        # initial state is r=0, so BAD cannot hold at frame 0
        assert solver.solve([bad0]) is False

    def test_free_init_leaves_frame_zero_open(self):
        ts = toggle_problem()
        solver = Solver()
        unroller = Unroller(ts, solver, constrain_init=False)
        assert solver.solve([unroller.bad_at(0)]) is True

    def test_latch_linkage_across_frames(self):
        ts = toggle_problem()
        solver = Solver()
        unroller = Unroller(ts, solver, constrain_init=True)
        bad1 = unroller.bad_at(1)
        frz0 = unroller.frame(0).lit(ts.inputs[0])
        # with freeze low the toggler must be 1 at frame 1
        assert solver.solve([bad1 ^ 1, frz0 ^ 1]) is False
        # with freeze high it stays 0
        assert solver.solve([bad1, frz0]) is False

    def test_extract_inputs_covers_all_frames(self):
        ts = toggle_problem()
        solver = Solver()
        unroller = Unroller(ts, solver, constrain_init=True)
        assert solver.solve([unroller.bad_at(1)])
        frames = unroller.extract_inputs(1)
        assert len(frames) == 2
        assert all(ts.inputs[0] in frame for frame in frames)


class TestBmcSearch:
    def test_finds_minimal_depth(self):
        result = bmc(toggle_problem(), max_bound=6)
        assert result.failed and result.bound == 1
        assert result.trace.length == 2
        assert result.trace.replay()

    def test_start_bound_skips_shallow(self):
        result = bmc(toggle_problem(), max_bound=8, start_bound=4)
        assert result.failed
        assert result.bound >= 4
        assert result.trace.replay()

    def test_repr(self):
        result = bmc(toggle_problem(), max_bound=3)
        assert "FAIL" in repr(result)
