"""Odd-parity protection helpers (RTL and Python sides agree)."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl.parity import (
    corrupt, data_bits, encode_value, odd_parity_bit, parity_bit, parity_ok,
    protect, value_ok,
)
from repro.rtl.signals import Input, evaluate


class TestPythonSide:
    @given(st.integers(0, 255))
    def test_encode_always_odd(self, value):
        assert value_ok(encode_value(value, 8))

    @given(st.integers(0, 255), st.integers(0, 8))
    def test_corrupt_breaks_parity(self, value, bit):
        word = encode_value(value, 8)
        assert not value_ok(corrupt(word, bit))

    @given(st.integers(0, 255), st.integers(0, 8), st.integers(0, 8))
    def test_double_corrupt_is_undetectable(self, value, b1, b2):
        """Parity detects all single-bit errors but no double-bit
        errors: flipping two bits changes the population count by 0 or
        2, leaving parity intact — the classic parity limitation."""
        word = encode_value(value, 8)
        twice = corrupt(corrupt(word, b1), b2)
        assert value_ok(twice)
        if b1 != b2:
            assert twice != word    # corrupted data slips through

    def test_encode_keeps_data(self):
        word = encode_value(0xAB, 8)
        assert word & 0xFF == 0xAB


class TestRtlSide:
    @given(st.integers(0, 255))
    def test_protect_matches_encode(self, value):
        data = Input("d", 8)
        word = protect(data)
        assert word.width == 9
        assert evaluate(word, {data: value}) == encode_value(value, 8)

    @given(st.integers(0, 511))
    def test_parity_ok_matches_value_ok(self, word_value):
        word = Input("w", 9)
        assert bool(evaluate(parity_ok(word), {word: word_value})) == \
            value_ok(word_value)

    @given(st.integers(0, 255))
    def test_round_trip(self, value):
        data = Input("d", 8)
        word = protect(data)
        env = {data: value}
        assert evaluate(data_bits(word), env) == value
        assert evaluate(parity_bit(word), env) == \
            (encode_value(value, 8) >> 8)

    @given(st.integers(0, 255))
    def test_parity_bit_definition(self, value):
        data = Input("d", 8)
        # odd parity: parity bit is the complement of the data XOR
        assert evaluate(odd_parity_bit(data), {data: value}) == \
            (bin(value).count("1") + 1) % 2

    def test_parity_ok_subword(self):
        word = Input("w", 16)
        check = parity_ok(word, lsb=4, width=9)
        # bits [12:4] carry the protected word
        good = encode_value(0x3C, 8) << 4
        assert evaluate(check, {word: good}) == 1
        assert evaluate(check, {word: good ^ (1 << 7)}) == 0
