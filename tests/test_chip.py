"""The synthetic chip: Table 2 statistics, lint cleanliness, defects."""

import pytest

from repro.chip import (
    ALL_DEFECT_IDS, DEFECTS, ComponentChip, TABLE2_BUGS, TABLE2_TARGETS,
    TOTAL_CHECKPOINTS, TOTAL_PROPERTIES, TOTAL_SUBMODULES,
    defects_in_blocks,
)
from repro.core.checkpoints import count_checkpoints
from repro.core.leaf import classify
from repro.core.stereotypes import count_by_category, stereotype_vunits
from repro.rtl.lint import lint_verifiable


@pytest.fixture(scope="module")
def golden():
    return ComponentChip.golden()


class TestTable2Statistics:
    def test_block_structure(self, golden):
        assert [name for name, _ in golden.blocks] == list("ABCDE")
        for name, modules in golden.blocks:
            assert len(modules) == TABLE2_TARGETS[name][0]
        assert len(golden.leaf_modules()) == TOTAL_SUBMODULES

    def test_property_counts_per_block(self, golden):
        for name, modules in golden.blocks:
            _, p0, p1, p2, p3 = TABLE2_TARGETS[name]
            got = [0, 0, 0, 0]
            for module in modules:
                counts = count_by_category(stereotype_vunits(module))
                got[0] += counts["P0"]
                got[1] += counts["P1"]
                got[2] += counts["P2"]
                got[3] += counts["P3"]
            assert got == [p0, p1, p2, p3], f"block {name}"

    def test_grand_total_2047(self, golden):
        total = sum(
            count_by_category(stereotype_vunits(m))["total"]
            for m in golden.leaf_modules()
        )
        assert total == TOTAL_PROPERTIES

    def test_checkpoint_count_matches_paper(self, golden):
        """'more than 1300 checkpoints' — exactly the P0 population."""
        assert count_checkpoints(golden.leaf_modules()) == \
            TOTAL_CHECKPOINTS

    def test_bug_budget_per_block(self):
        assert defects_in_blocks() == {
            block: count for block, count in TABLE2_BUGS.items()
            if count
        }


class TestChipHygiene:
    def test_every_leaf_in_formal_scope(self, golden):
        for module in golden.leaf_modules():
            entry = classify(module)
            assert entry.in_scope, (module.name, entry.reason)

    def test_lint_clean(self, golden):
        for module in golden.leaf_modules():
            assert lint_verifiable(module) == [], module.name

    def test_unique_module_names(self, golden):
        names = [m.name for m in golden.leaf_modules()]
        assert len(names) == len(set(names))

    def test_specs_consistent(self, golden):
        for module in golden.leaf_modules():
            assert module.integrity.validate_against(module) == []

    def test_block_lookup(self, golden):
        assert golden.block_of("E00_dec") == "E"
        assert golden.module_named("A00_wrapcnt").name == "A00_wrapcnt"
        with pytest.raises(KeyError):
            golden.module_named("Z99")
        with pytest.raises(KeyError):
            golden.block_of("Z99")

    def test_silicon_hierarchy_ties_off_injection(self, golden):
        from repro.rtl.lint import lint_wrapper
        wrappers = golden.silicon_hierarchy()
        assert len(wrappers) == TOTAL_SUBMODULES
        for wrapper in wrappers[:10]:
            assert lint_wrapper(wrapper) == []


class TestDefectSeeding:
    def test_unknown_defect_rejected(self):
        with pytest.raises(ValueError):
            ComponentChip(defects={"B9"})

    def test_defect_tags(self):
        chip = ComponentChip.with_all_defects()
        tagged = {
            m.attrs["defect"]: m.name
            for m in chip.leaf_modules() if "defect" in m.attrs
        }
        assert set(tagged) == ALL_DEFECT_IDS
        for defect in DEFECTS:
            assert tagged[defect.defect_id] == defect.module_name

    def test_golden_chip_has_no_tags(self, golden):
        assert all("defect" not in m.attrs
                   for m in golden.leaf_modules())

    def test_partial_seeding(self):
        chip = ComponentChip(defects={"B5"})
        tagged = [m.name for m in chip.leaf_modules()
                  if "defect" in m.attrs]
        assert tagged == ["E00_dec"]

    def test_defect_catalog_types_match_table3(self):
        types = {d.defect_id: d.property_type for d in DEFECTS}
        assert types == {
            "B0": "P1", "B1": "P1", "B2": "P1", "B3": "P0",
            "B4": "P2", "B5": "P2", "B6": "P2",
        }
        easy = {d.defect_id for d in DEFECTS if d.sim_easy}
        assert easy == {"B0", "B2", "B4"}

    def test_stats(self, golden):
        stats = ComponentChip(only_blocks=["C"]).stats()
        assert stats.leaf_modules == 13
        assert stats.state_bits > 0
        assert stats.gate_equivalents > 0
        assert dict(stats.rows())["Core frequency"] == "250 MHz"
