"""The Verifiable-RTL transform (error injection) and its lint."""

import pytest

from repro.chip.library import canonical_leaf
from repro.rtl.elaborate import elaborate
from repro.rtl.inject import EC_PORT, ED_PORT, make_verifiable, make_wrapper
from repro.rtl.lint import lint_verifiable, lint_wrapper
from repro.rtl.module import Module, RtlError
from repro.rtl.parity import encode_value, value_ok
from repro.sim.simulator import Simulator


class TestMakeVerifiable:
    def test_ports_added(self, leaf, verifiable_leaf):
        assert EC_PORT not in leaf.inputs
        assert EC_PORT in verifiable_leaf.inputs
        assert verifiable_leaf.inputs[EC_PORT].width == 2   # two entities
        assert verifiable_leaf.inputs[ED_PORT].width == 9   # widest entity

    def test_original_untouched(self, leaf):
        before = len(leaf.inputs)
        make_verifiable(leaf)
        assert len(leaf.inputs) == before

    def test_spec_updated(self, verifiable_leaf):
        spec = verifiable_leaf.integrity
        assert spec.ec_port == EC_PORT
        assert spec.ed_port == ED_PORT
        assert verifiable_leaf.attrs.get("verifiable") is True

    def test_requires_spec_and_entities(self):
        m = Module("m")
        m.output("Y", m.input("A", 4))
        with pytest.raises(RtlError):
            make_verifiable(m)

    def test_rejects_double_injection(self, verifiable_leaf):
        with pytest.raises(RtlError):
            make_verifiable(verifiable_leaf)

    def test_behaviour_identical_with_injection_off(self, leaf,
                                                    verifiable_leaf):
        base_sim = Simulator(elaborate(leaf))
        ver_sim = Simulator(elaborate(verifiable_leaf))
        import random
        rng = random.Random(11)
        for _ in range(50):
            value = rng.randrange(1 << 9)
            base_out = base_sim.step({"I": value})
            ver_out = ver_sim.step({"I": value, EC_PORT: 0, ED_PORT: 0})
            assert base_out == ver_out

    def test_injection_forces_register(self, verifiable_leaf):
        sim = Simulator(elaborate(verifiable_leaf))
        injected = 0b0110   # even parity -> illegal FSM word
        sim.step({"I": encode_value(0, 8), EC_PORT: 0b01,
                  ED_PORT: injected})
        assert sim.peek("A") == injected
        # HE reports the corruption in the following cycle
        outs = sim.step({"I": encode_value(0, 8), EC_PORT: 0, ED_PORT: 0})
        assert outs["HE"] == 1

    def test_injection_is_per_entity(self, verifiable_leaf):
        sim = Simulator(elaborate(verifiable_leaf))
        good = encode_value(0x55, 8)
        sim.step({"I": good, EC_PORT: 0b10, ED_PORT: 0x1FF})
        # entity B (bit 1) was injected; FSM A keeps its reset value
        assert sim.peek("B") == 0x1FF
        assert value_ok(sim.peek("A"))


class TestWrapper:
    def test_ties_injection_to_zero(self, verifiable_leaf):
        wrapper = make_wrapper(verifiable_leaf)
        assert lint_wrapper(wrapper) == []
        inst = wrapper.instances[0]
        assert inst.bindings[EC_PORT].value == 0
        assert inst.bindings[ED_PORT].value == 0

    def test_reexports_ports(self, verifiable_leaf):
        wrapper = make_wrapper(verifiable_leaf)
        assert set(wrapper.inputs) == {"I"}
        assert set(wrapper.outputs) == {"HE", "O"}

    def test_wrapper_behaves_like_base(self, leaf, verifiable_leaf):
        wrapper = make_wrapper(verifiable_leaf)
        base_sim = Simulator(elaborate(leaf))
        wrap_sim = Simulator(elaborate(wrapper))
        import random
        rng = random.Random(5)
        for _ in range(50):
            value = rng.randrange(1 << 9)
            assert base_sim.step({"I": value}) == \
                wrap_sim.step({"I": value})

    def test_requires_verifiable_module(self, leaf):
        with pytest.raises(RtlError):
            make_wrapper(leaf)


class TestLint:
    def test_clean_module_passes(self, verifiable_leaf):
        assert lint_verifiable(verifiable_leaf) == []

    def test_missing_spec_flagged(self):
        m = Module("m")
        issues = lint_verifiable(m)
        assert any(i.code == "VR4" for i in issues)

    def test_missing_injection_ports_flagged(self, leaf):
        issues = lint_verifiable(leaf)
        assert any(i.code == "VR1" for i in issues)

    def test_shared_ec_bit_flagged(self, leaf):
        from repro.rtl.integrity import IntegritySpec, ProtectedEntity, FSM
        verifiable = make_verifiable(leaf)
        spec = verifiable.integrity
        # claim both entities share EC bit 0
        spec.entities[1] = ProtectedEntity(
            spec.entities[1].name, spec.entities[1].reg_name,
            spec.entities[1].kind, 0
        )
        issues = lint_verifiable(verifiable)
        assert any(i.code == "VR2" for i in issues)

    def test_untied_wrapper_flagged(self, verifiable_leaf):
        wrapper = Module("bad_wrap")
        bindings = {}
        for name, port in verifiable_leaf.inputs.items():
            bindings[name] = wrapper.input(name, port.width)
        inst = wrapper.instantiate(verifiable_leaf, "u0", **bindings)
        for name in verifiable_leaf.outputs:
            wrapper.output(name, inst[name])
        issues = lint_wrapper(wrapper)
        assert any(i.code == "VR3" for i in issues)
