"""Fleet transport fault injection and wire-format fuzzing.

The contract battery (``tests/test_executor_contract.py``) certifies
that :class:`FleetExecutor` streams like every other executor when
nothing goes wrong.  This suite certifies what the socket transport
adds on top:

- the length-prefixed JSON framing survives arbitrarily fragmented
  reads and fails loudly (``FrameError``) on truncated, corrupt, or
  non-object frames — never hangs, never mistakes damage for data;
- a SIGKILLed worker's lease is re-issued and the final report is
  byte-identical to a serial run;
- a SIGKILLed *coordinator* resumes from the checkpoint journal into a
  byte-identical report;
- a zombie worker (silent past the lease timeout) loses its lease, and
  its late/duplicate results are rejected by at-most-once acceptance;
- a peer that sends garbage frames is dropped and re-leased around —
  one bad peer never wedges the stream;
- a launcher that cannot keep workers alive exhausts the respawn
  budget into a loud ``FleetError`` instead of a wedge.
"""

import multiprocessing
import os
import queue
import random
import signal
import socket
import struct
import threading
import time

import pytest

from repro.chip import ComponentChip
from repro.core.report import format_table2
from repro.orchestrate import (
    CampaignCheckpoint, CampaignOrchestrator, CompiledProblemStore,
    EngineConfig, FleetExecutor, LocalFleetLauncher,
    ModuleAffinityScheduling, SerialExecutor, SshFleetLauncher,
    decode_job_result, encode_job_result, parse_launcher_spec,
    plan_campaign,
)
from repro.orchestrate.config import CampaignConfig
from repro.orchestrate.fleet import (
    FleetError, FrameError, MAX_FRAME_BYTES, jobs_from_config,
    recv_frame, send_frame,
)

#: jobs in the tiny two-module plan (asserted in the fixture)
TOTAL_JOBS = 17


def _engines(**overrides):
    overrides.setdefault("sat_conflicts", 500_000)
    overrides.setdefault("bdd_nodes", 5_000_000)
    return (EngineConfig(**overrides),)


@pytest.fixture(scope="module")
def tiny_blocks():
    """Two modules, one seeded defect — PASS and FAIL mixed, so
    counterexample frames cross the socket in every scenario."""
    chip = ComponentChip(defects={"B2"}, only_blocks=["C"])
    return [("C", chip.blocks[0][1][:2])]


@pytest.fixture(scope="module")
def tiny_plan(tiny_blocks):
    plan = plan_campaign(tiny_blocks, _engines())
    assert len(plan.jobs) == TOTAL_JOBS
    return plan


def _outcome(job_result):
    return (job_result.index, job_result.qualified_name,
            job_result.result.status, job_result.result.engine,
            job_result.result.depth)


@pytest.fixture(scope="module")
def serial_results(tiny_plan):
    return list(SerialExecutor().map(tiny_plan.jobs))


@pytest.fixture(scope="module")
def serial_outcomes(serial_results):
    return [_outcome(r) for r in serial_results]


@pytest.fixture(scope="module")
def reference(tiny_blocks):
    """The uninterrupted serial report every faulted fleet run must
    still reproduce byte-for-byte."""
    return CampaignOrchestrator(tiny_blocks, engines=_engines()).run()


# ----------------------------------------------------------------------
# framing: fragmented reads, truncation, corruption, fuzz
# ----------------------------------------------------------------------

class _ChunkSocket:
    """In-memory stream stub: ``sendall`` appends to a buffer,
    ``recv`` returns it back in deliberately tiny (optionally
    randomized) chunks, then a clean EOF — the worst-case fragmented
    TCP peer, deterministic and threadless."""

    def __init__(self, rng=None, max_chunk=7):
        self.buffer = bytearray()
        self.rng = rng
        self.max_chunk = max_chunk

    def sendall(self, data):
        self.buffer.extend(data)

    def feed(self, data):
        self.buffer.extend(data)

    def recv(self, limit):
        if not self.buffer:
            return b""
        take = self.max_chunk if self.rng is None \
            else self.rng.randint(1, self.max_chunk)
        take = min(take, limit, len(self.buffer))
        out = bytes(self.buffer[:take])
        del self.buffer[:take]
        return out


def _random_payload(rng, depth=0):
    kinds = ["int", "float", "str", "bool", "null"]
    if depth < 2:
        kinds += ["list", "dict"]
    kind = rng.choice(kinds)
    if kind == "int":
        return rng.randint(-10**9, 10**9)
    if kind == "float":
        return rng.randint(-10**6, 10**6) / 128.0
    if kind == "str":
        alphabet = "abc é☃世界\"\\\n"
        return "".join(rng.choice(alphabet)
                       for _ in range(rng.randint(0, 12)))
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "null":
        return None
    if kind == "list":
        return [_random_payload(rng, depth + 1)
                for _ in range(rng.randint(0, 4))]
    return {f"k{i}": _random_payload(rng, depth + 1)
            for i in range(rng.randint(0, 4))}


class TestFraming:
    def test_roundtrip_byte_at_a_time(self):
        sock = _ChunkSocket(max_chunk=1)
        payload = {"type": "hello", "worker": "w0", "pid": 123,
                   "token": "t" * 32}
        send_frame(sock, payload)
        assert recv_frame(sock) == payload
        assert recv_frame(sock) is None  # clean EOF at frame boundary

    def test_job_specs_roundtrip_fragmented(self, tiny_plan):
        rng = random.Random(11)
        sock = _ChunkSocket(rng=rng)
        for job in tiny_plan.jobs:
            send_frame(sock, {"type": "lease", "lease": 0,
                              "jobs": [job.spec()]})
        for job in tiny_plan.jobs:
            frame = recv_frame(sock)
            assert frame["jobs"] == [job.spec()]
            assert frame["jobs"][0]["fingerprint"] == job.fingerprint
        assert recv_frame(sock) is None

    def test_fail_results_roundtrip_fragmented(self, tiny_plan,
                                               serial_results):
        """FAIL replies — counterexample trace and all — must survive
        the worst-case fragmented read and still replay on decode."""
        fails = [r for r in serial_results if r.result.status == "fail"]
        assert fails, "fixture must produce at least one FAIL"
        rng = random.Random(13)
        for job_result in fails:
            job = tiny_plan.jobs[job_result.index]
            sock = _ChunkSocket(rng=rng)
            send_frame(sock, {"type": "result", "index": job.index,
                              "result": encode_job_result(job_result)})
            frame = recv_frame(sock)
            decoded = decode_job_result(frame["result"], job,
                                        CompiledProblemStore())
            assert _outcome(decoded) == _outcome(job_result)
            assert decoded.result.trace is not None
            assert decoded.result.trace.replay()

    def test_truncated_frame_raises_at_every_cut(self):
        whole = _ChunkSocket()
        send_frame(whole, {"k": "truncation probe", "n": [1, 2, 3]})
        wire = bytes(whole.buffer)
        for cut in range(1, len(wire)):
            sock = _ChunkSocket(max_chunk=3)
            sock.feed(wire[:cut])
            with pytest.raises(FrameError, match="truncated"):
                recv_frame(sock)

    def test_zero_length_prefix_raises(self):
        sock = _ChunkSocket()
        sock.feed(struct.pack(">I", 0))
        with pytest.raises(FrameError, match="invalid frame length"):
            recv_frame(sock)

    def test_absurd_length_prefix_raises(self):
        sock = _ChunkSocket()
        sock.feed(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x")
        with pytest.raises(FrameError, match="invalid frame length"):
            recv_frame(sock)

    def test_invalid_utf8_body_raises(self):
        sock = _ChunkSocket()
        sock.feed(struct.pack(">I", 4) + b"\xff\xfe\x00\x01")
        with pytest.raises(FrameError, match="undecodable"):
            recv_frame(sock)

    def test_non_object_payload_raises(self):
        sock = _ChunkSocket()
        body = b"[1,2]"
        sock.feed(struct.pack(">I", len(body)) + body)
        with pytest.raises(FrameError, match="must be an object"):
            recv_frame(sock)

    def test_unsendable_payload_raises(self):
        with pytest.raises(FrameError, match="not JSON-able"):
            send_frame(_ChunkSocket(), {"bad": {1, 2}})

    def test_oversize_payload_raises(self):
        with pytest.raises(FrameError, match="exceeds"):
            send_frame(_ChunkSocket(),
                       {"pad": "x" * (MAX_FRAME_BYTES + 1)})

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fuzz_payloads_roundtrip(self, seed):
        rng = random.Random(seed)
        sock = _ChunkSocket(rng=rng)
        payloads = [{"p": _random_payload(rng)} for _ in range(25)]
        for payload in payloads:
            send_frame(sock, payload)
        for payload in payloads:
            assert recv_frame(sock) == payload
        assert recv_frame(sock) is None

    @pytest.mark.parametrize("seed", [5, 6, 7, 8])
    def test_fuzz_junk_bytes_never_hang_or_pass_as_data(self, seed):
        """Random wire garbage must terminate promptly in FrameError
        (or clean EOF) — never block, never decode into a frame."""
        rng = random.Random(seed)
        for _ in range(50):
            sock = _ChunkSocket(rng=rng)
            sock.feed(bytes(rng.randrange(256)
                            for _ in range(rng.randint(0, 64))))
            try:
                frame = recv_frame(sock)
            except FrameError:
                continue
            assert frame is None or isinstance(frame, dict)


# ----------------------------------------------------------------------
# launchers and the replan path
# ----------------------------------------------------------------------

class TestLaunchers:
    def test_ssh_command_argv(self):
        launcher = SshFleetLauncher(("hostA", "hostB"),
                                    config_path="cfg.toml")
        argv = launcher.command("hostA", "w0", ("0.0.0.0", 5555), "tok")
        assert argv == ("ssh", "hostA",
                        "python3", "-m", "repro", "fleet", "worker",
                        "--config", "cfg.toml",
                        "--connect", "0.0.0.0:5555",
                        "--worker-id", "w0",
                        "--token", "tok")

    def test_ssh_connect_host_override(self):
        launcher = SshFleetLauncher(("h",),
                                    connect_host="coord.example")
        argv = launcher.command("h", "w1", ("0.0.0.0", 1234), "t")
        assert "--connect" in argv
        assert argv[argv.index("--connect") + 1] == "coord.example:1234"

    def test_ssh_round_robin_hosts(self, monkeypatch):
        launched = []
        import repro.orchestrate.fleet as fleet_module
        monkeypatch.setattr(
            fleet_module.subprocess, "Popen",
            lambda argv: launched.append(argv) or object(),
        )
        launcher = SshFleetLauncher(("a", "b"))
        for worker_id in ("w0", "w1", "w2"):
            launcher.launch(worker_id, ("127.0.0.1", 1), "t", {}, None)
        assert [argv[1] for argv in launched] == ["a", "b", "a"]

    def test_ssh_requires_hosts(self):
        with pytest.raises(ValueError, match="at least one host"):
            SshFleetLauncher(())

    def test_parse_launcher_spec(self):
        assert isinstance(parse_launcher_spec("local"),
                          LocalFleetLauncher)
        ssh = parse_launcher_spec("ssh:a, b", config_path="x.toml")
        assert isinstance(ssh, SshFleetLauncher)
        assert ssh.hosts == ("a", "b")
        assert ssh.config_path == "x.toml"

    @pytest.mark.parametrize("bad", ["", "ssh", "ssh:", "rsh:a",
                                     "local:extra"])
    def test_parse_launcher_spec_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_launcher_spec(bad)

    def test_replan_from_config_is_deterministic(self):
        """The ssh-worker path: planning from the config twice must
        give identical indices and fingerprints (the coordinator's
        lease specs match a remote replan by construction)."""
        config = CampaignConfig(blocks=["C"])
        first = jobs_from_config(config)
        second = jobs_from_config(config)
        assert len(first) > 0
        assert [j.index for j in first] == list(range(len(first)))
        assert [j.fingerprint for j in first] == \
            [j.fingerprint for j in second]


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------

class TrackingLauncher(LocalFleetLauncher):
    """Local launcher that keeps every process handle so the test can
    land a SIGKILL on a real worker pid."""

    def __init__(self):
        self.handles = []

    def launch(self, worker_id, address, token, settings, jobs):
        handle = super().launch(worker_id, address, token, settings,
                                jobs)
        self.handles.append(handle)
        return handle


class _ScriptedWorker(threading.Thread):
    """In-process fake worker: speaks just enough protocol (hello with
    the real token, accept one lease) to misbehave on cue."""

    def __init__(self, worker_id, address, token, script):
        super().__init__(daemon=True)
        self.worker_id = worker_id
        self.address = address
        self.token = token
        self.script = script
        self.lease_frame = None
        self.leased = threading.Event()
        self.go = threading.Event()
        self.sent = threading.Event()
        self._aborted = threading.Event()
        self.sock = None

    def run(self):
        try:
            self.sock = socket.create_connection(self.address,
                                                 timeout=10.0)
            self.sock.settimeout(60.0)
            send_frame(self.sock, {"type": "hello",
                                   "worker": self.worker_id,
                                   "pid": 0, "token": self.token})
            frame = recv_frame(self.sock)
            if frame is not None and frame.get("type") == "lease":
                self.lease_frame = frame
                self.leased.set()
                self.script(self)
            # hold the connection open (a zombie's socket survives its
            # lease) until the launcher tears us down
            self._aborted.wait(60.0)
        except (OSError, FrameError):
            pass
        finally:
            if self.sock is not None:
                try:
                    self.sock.close()
                except OSError:
                    pass

    def abort(self):
        self._aborted.set()
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass


class ScriptedFirstLauncher(LocalFleetLauncher):
    """First launch is the scripted fake; every later launch is a real
    forked worker, so the campaign always finishes."""

    def __init__(self, script):
        self.script = script
        self.fake = None

    def launch(self, worker_id, address, token, settings, jobs):
        if self.fake is None:
            self.fake = _ScriptedWorker(worker_id, address, token,
                                        self.script)
            self.fake.start()
            return self.fake
        return super().launch(worker_id, address, token, settings,
                              jobs)

    def alive(self, handle):
        return handle.is_alive()

    def stop(self, handle):
        if isinstance(handle, _ScriptedWorker):
            handle.abort()
        else:
            super().stop(handle)

    def join(self, handle, timeout=None):
        handle.join(timeout)


class _DeadHandle:
    def is_alive(self):
        return False


class StillbornLauncher:
    """Launcher whose workers are dead on arrival — the no-wedge path
    must burn the respawn budget and then raise."""

    name = "stillborn"

    def launch(self, worker_id, address, token, settings, jobs):
        return _DeadHandle()

    def alive(self, handle):
        return False

    def stop(self, handle):
        pass

    def join(self, handle, timeout=None):
        pass


class TestWorkerFaults:
    def test_sigkilled_worker_lease_reissued_results_identical(
            self, tiny_plan, serial_outcomes):
        """SIGKILL a worker holding a module-affinity lease after its
        first result: the unanswered jobs must be re-leased and the
        stream must stay identical to serial."""
        launcher = TrackingLauncher()
        executor = FleetExecutor(
            workers=2, launcher=launcher,
            scheduling=ModuleAffinityScheduling(),
            heartbeat_interval=0.1,
        )
        stream = executor.map(tiny_plan.jobs)
        results = [next(stream)]
        os.kill(launcher.handles[0].pid, signal.SIGKILL)
        results.extend(stream)
        assert [_outcome(r) for r in results] == serial_outcomes
        stats = executor.fleet_stats()
        assert stats["workers_lost"] >= 1
        assert stats["leases_reissued"] >= 1
        assert stats["workers_launched"] >= 3  # the replacement

    def test_sigkilled_worker_report_byte_identical(self, tiny_blocks,
                                                    reference):
        launcher = TrackingLauncher()
        killed = []

        def progress(line):
            if not killed and launcher.handles:
                os.kill(launcher.handles[0].pid, signal.SIGKILL)
                killed.append(True)

        report = CampaignOrchestrator(
            tiny_blocks, engines=_engines(),
            executor=FleetExecutor(
                workers=2, launcher=launcher,
                scheduling=ModuleAffinityScheduling(),
                heartbeat_interval=0.1,
            ),
        ).run(progress=progress)
        assert killed
        assert report.canonical_bytes() == reference.canonical_bytes()
        assert report.stats["fleet"]["workers_lost"] >= 1

    def test_zombie_lease_revoked_and_late_results_rejected(
            self, tiny_plan, serial_outcomes):
        """A worker that takes a lease and then goes silent past the
        lease timeout loses the lease; the late result it finally sends
        — and the duplicate after it — are rejected, and the fleet's
        answers still match serial exactly."""

        def zombie(worker):
            # silence: no heartbeats, no results, until the test has
            # watched the lease be revoked and re-served
            if not worker.go.wait(30.0):
                return
            lease = worker.lease_frame
            spec = lease["jobs"][0]
            late = {"type": "result", "lease": lease["lease"],
                    "index": spec["index"],
                    "fingerprint": spec["fingerprint"],
                    "result": {"bogus": True}, "pid": 0}
            send_frame(worker.sock, late)
            send_frame(worker.sock, late)  # and a duplicate
            worker.sent.set()

        launcher = ScriptedFirstLauncher(zombie)
        executor = FleetExecutor(
            workers=2, launcher=launcher,
            scheduling=ModuleAffinityScheduling(),
            lease_timeout=1.5, heartbeat_interval=0.2,
        )
        stream = executor.map(tiny_plan.jobs)
        # consuming all but the last result forces the zombie's unit
        # through revocation + re-lease (the fake never answers)
        results = [next(stream) for _ in range(TOTAL_JOBS - 1)]
        assert launcher.fake.leased.is_set()
        run = executor._run
        assert run.stats["leases_reissued"] >= 1
        launcher.fake.go.set()
        assert launcher.fake.sent.wait(10.0)
        # pump the event queue (consumer-thread discipline: the
        # generator is parked between next() calls) until both late
        # frames have been seen and rejected
        deadline = time.monotonic() + 10.0
        while run.stats["results_rejected"] < 2 \
                and time.monotonic() < deadline:
            try:
                event = run.events.get(timeout=0.05)
            except queue.Empty:
                continue
            run._handle(event)
        results.extend(stream)
        assert [_outcome(r) for r in results] == serial_outcomes
        stats = executor.fleet_stats()
        assert stats["results_rejected"] >= 2
        assert stats["leases_reissued"] >= 1
        assert stats["workers_lost"] >= 1

    def test_garbage_frames_drop_peer_without_wedging(
            self, tiny_plan, serial_outcomes):
        """A peer that answers its lease with wire garbage is dropped
        (FrameError at the reader), its lease re-issued, and the
        campaign completes untouched."""

        def garbage(worker):
            worker.sock.sendall(struct.pack(">I", 9) + b"not json!")
            worker.sent.set()

        launcher = ScriptedFirstLauncher(garbage)
        executor = FleetExecutor(
            workers=2, launcher=launcher,
            scheduling=ModuleAffinityScheduling(),
            heartbeat_interval=0.1,
        )
        results = list(executor.map(tiny_plan.jobs))
        assert [_outcome(r) for r in results] == serial_outcomes
        stats = executor.fleet_stats()
        assert stats["workers_lost"] >= 1
        assert stats["leases_reissued"] >= 1

    def test_stray_connection_never_joins_the_fleet(self, tiny_plan,
                                                    serial_outcomes):
        """A connection that cannot present the run token must never be
        leased or counted — port knowledge alone buys nothing."""
        executor = FleetExecutor(workers=2, heartbeat_interval=0.1)
        stream = executor.map(tiny_plan.jobs)
        results = [next(stream)]
        run = executor._run
        sock = socket.create_connection(run.address, timeout=5.0)
        try:
            send_frame(sock, {"type": "hello", "worker": "intruder",
                              "pid": 0, "token": "wrong-token"})
            # pump events on the consumer thread (the generator is
            # parked between next() calls) until the coordinator has
            # processed our bogus hello and hung up
            sock.settimeout(0.05)
            deadline = time.monotonic() + 10.0
            hung_up = False
            while not hung_up and time.monotonic() < deadline:
                try:
                    run._handle(run.events.get_nowait())
                except queue.Empty:
                    pass
                try:
                    hung_up = sock.recv(1) == b""
                except socket.timeout:
                    continue
                except OSError:
                    hung_up = True
            assert hung_up, "coordinator never dropped the stray"
            results.extend(stream)
        finally:
            sock.close()
        assert [_outcome(r) for r in results] == serial_outcomes
        stats = executor.fleet_stats()
        assert "intruder" not in stats["jobs_per_worker"]

    def test_all_workers_lost_raises_instead_of_wedging(self,
                                                        tiny_plan):
        executor = FleetExecutor(
            workers=2, launcher=StillbornLauncher(),
            max_respawns=1, lease_timeout=1.0,
        )
        with pytest.raises(FleetError, match="respawn budget"):
            list(executor.map(tiny_plan.jobs))


def _fleet_campaign(blocks, journal_path):
    """Child-process campaign on a 2-worker fleet, throttled so the
    parent can land a SIGKILL mid-stream."""
    CampaignOrchestrator(
        blocks, engines=_engines(),
        executor=FleetExecutor(workers=2, heartbeat_interval=0.1),
        checkpoint=CampaignCheckpoint(journal_path),
    ).run(progress=lambda line: time.sleep(0.03))


class TestCoordinatorKill:
    def test_sigkilled_coordinator_resumes_byte_identical(
            self, tiny_blocks, reference, tmp_path):
        """SIGKILL the whole coordinator process mid-campaign, then
        resume from the journal — on a fresh fleet — into a report
        byte-identical to the uninterrupted serial run."""
        journal = tmp_path / "journal.jsonl"
        context = multiprocessing.get_context("fork")
        child = context.Process(target=_fleet_campaign,
                                args=(tiny_blocks, str(journal)))
        child.start()
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if journal.exists() and \
                        len(journal.read_text().splitlines()) >= 6:
                    break
                time.sleep(0.005)
            else:
                pytest.fail("child fleet campaign never journaled "
                            "5 entries")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.join()
        resumed = CampaignOrchestrator(
            tiny_blocks, engines=_engines(),
            executor=FleetExecutor(workers=2, heartbeat_interval=0.1),
            checkpoint=CampaignCheckpoint(journal),
        ).run(resume=True)
        replayed = resumed.stats["journal_replayed"]
        assert 0 < replayed < TOTAL_JOBS
        assert resumed.canonical_bytes() == reference.canonical_bytes()
        assert format_table2(resumed) == format_table2(reference)
