"""Sequential equivalence checking (transform transparency, ECO
regression)."""

import pytest

from repro.chip.library import canonical_leaf
from repro.chip.specials import fsm_controller, register_file, wrap_counter
from repro.formal.budget import ResourceBudget
from repro.formal.engine import FAIL, PASS
from repro.formal.equivalence import (
    build_miter, check_equivalence, injection_transparent,
)
from repro.rtl.inject import make_verifiable
from repro.rtl.module import Module, RtlError


def _budget():
    return ResourceBudget(sat_conflicts=500_000, bdd_nodes=5_000_000)


class TestMiter:
    def test_shared_inputs(self):
        left = canonical_leaf("L")
        right = canonical_leaf("R")
        miter = build_miter(left, right)
        assert set(miter.inputs) == {"I"}
        assert "__miscompare__" in miter.outputs

    def test_no_common_outputs_rejected(self):
        a = Module("a")
        a.output("X", a.input("I", 1))
        b = Module("b")
        b.output("Y", b.input("I", 1))
        with pytest.raises(RtlError):
            build_miter(a, b)

    def test_width_mismatch_rejected(self):
        a = Module("a")
        a.output("X", a.input("I", 2))
        b = Module("b")
        b.output("X", b.input("I", 3))
        with pytest.raises(RtlError):
            build_miter(a, b)


class TestEquivalence:
    def test_module_equivalent_to_itself(self):
        module = canonical_leaf()
        result = check_equivalence(module, canonical_leaf(),
                                   budget=_budget())
        assert result.status == PASS

    def test_injection_transparency_figure6(self):
        """The Figure 6 claim, proved formally: EC/ED tied to zero makes
        the Verifiable RTL indistinguishable from the release."""
        base = canonical_leaf()
        verifiable = make_verifiable(base)
        result = injection_transparent(base, verifiable,
                                       budget=_budget())
        assert result.status == PASS

    @pytest.mark.parametrize("builder", [wrap_counter, fsm_controller])
    def test_defect_shows_as_inequivalence(self, builder):
        """Each seeded defect makes the buggy module inequivalent to the
        corrected one, with a concrete diverging trace."""
        good = builder("M", buggy=False)
        bad = builder("M", buggy=True)
        result = check_equivalence(good, bad, budget=_budget())
        assert result.status == FAIL
        assert result.trace is not None and result.trace.replay()

    def test_regfile_divergence_shows_arming_sequence(self):
        good = register_file("RF", buggy=False)
        bad = register_file("RF", buggy=True)
        result = check_equivalence(good, bad, budget=_budget())
        assert result.status == FAIL
        words = result.trace.words_by_frame()
        # the first write must be the arming write (address 0x3C)
        assert words[0]["WADDR"] & 0xFF == 0x3C
        assert words[0]["WEN"] == 1

    def test_injection_not_transparent_without_tie_off(self):
        """Sanity: without the tie-offs, injection is *visible* — the
        checker can drive EC and corrupt state."""
        base = canonical_leaf()
        verifiable = make_verifiable(base)
        result = check_equivalence(base, verifiable, budget=_budget())
        assert result.status == FAIL

    def test_requires_verifiable_rtl(self):
        base = canonical_leaf()
        with pytest.raises(RtlError):
            injection_transparent(base, canonical_leaf())
