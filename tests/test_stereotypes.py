"""The three stereotype property generators (the paper's contribution)."""

import pytest

from repro.chip.library import canonical_leaf
from repro.core.stereotypes import (
    P0, P1, P2, P3, count_by_category, edetect_vunit, extra_vunit,
    integrity_vunit, soundness_vunit, stereotype_vunits,
)
from repro.formal.engine import PASS, ModelChecker
from repro.psl.ast import Always, Implication, Never, Next, PslError
from repro.psl.compile import compile_assertion
from repro.psl.parser import parse_vunit
from repro.rtl.inject import make_verifiable


class TestShapes:
    def test_edetect_structure(self, verifiable_leaf):
        unit = edetect_vunit(verifiable_leaf)
        assert unit.category == P0
        names = [name for name, _ in unit.asserted()]
        assert names == ["pCheck1_stateA", "pCheck1_dataB", "pCheck2_I_0"]
        assert not unit.assumed()   # Figure 2 has no assumptions
        check1 = unit.property_named("pCheck1_stateA")
        assert isinstance(check1, Always)
        assert isinstance(check1.inner, Implication)
        assert isinstance(check1.inner.consequent, Next)

    def test_edetect_requires_verifiable_rtl(self, leaf):
        with pytest.raises(PslError):
            edetect_vunit(leaf)

    def test_soundness_structure(self, verifiable_leaf):
        unit = soundness_vunit(verifiable_leaf)
        assert unit.category == P1
        assumed = [name for name, _ in unit.assumed()]
        assert assumed == ["pIntegrityI_I_0", "pNoErrInjection"]
        asserted = unit.asserted()
        assert len(asserted) == 1
        assert isinstance(asserted[0][1], Never)

    def test_integrity_structure(self, verifiable_leaf):
        unit = integrity_vunit(verifiable_leaf)
        assert unit.category == P2
        assert [name for name, _ in unit.asserted()] == \
            ["pIntegrityO_O_0"]
        # same environment as soundness (Figures 3 and 4)
        assert [n for n, _ in unit.assumed()] == \
            [n for n, _ in soundness_vunit(verifiable_leaf).assumed()]

    def test_extra_vunit_absent_without_p3(self, verifiable_leaf):
        assert extra_vunit(verifiable_leaf) is None

    def test_counts(self, verifiable_leaf):
        units = stereotype_vunits(verifiable_leaf)
        counts = count_by_category(units)
        assert counts == {P0: 3, P1: 1, P2: 1, P3: 0, "total": 5}


class TestEmittedPslMatchesPaper:
    """The generated vunits must render to the paper's PSL style and
    round-trip through our own parser."""

    def test_round_trip(self, verifiable_leaf):
        for unit in stereotype_vunits(verifiable_leaf):
            reparsed = parse_vunit(unit.emit())
            assert reparsed.directives == unit.directives
            for decl in unit.declarations:
                assert reparsed.property_named(decl.name) == decl.prop

    def test_figure2_shape(self, verifiable_leaf):
        text = edetect_vunit(verifiable_leaf).emit()
        assert text.startswith("vunit M_edetect (M) {")
        assert "-> next (HE)" in text or "-> next HE" in text
        assert "assert" in text and "assume" not in text

    def test_figure3_shape(self, verifiable_leaf):
        text = soundness_vunit(verifiable_leaf).emit()
        assert "never ( HE )" in text
        assert text.count("assume") == 2
        assert "~I_ERR_INJ_C" in text

    def test_figure4_shape(self, verifiable_leaf):
        text = integrity_vunit(verifiable_leaf).emit()
        assert "always ( ^O )" in text


class TestVerification:
    """All stereotype properties hold on the bug-free canonical leaf,
    across engines."""

    @pytest.mark.parametrize("method", ["kind", "bdd-combined", "pobdd"])
    def test_all_pass(self, verifiable_leaf, budget, method):
        for unit in stereotype_vunits(verifiable_leaf):
            for assert_name, _ in unit.asserted():
                ts = compile_assertion(verifiable_leaf, unit, assert_name)
                result = ModelChecker(ts, budget).check(method=method)
                assert result.status == PASS, \
                    f"{unit.name}.{assert_name} via {method}"
