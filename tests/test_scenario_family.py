"""Property-based tests of the chip-family generator.

Each property is checked over a grid of family shapes (the stand-in
for a hypothesis-style generator: the corpus spans the interesting
corners — single-module blocks, deep/wide pipelines, many report
lanes, non-default seeds and names)."""

from dataclasses import replace

import pytest

from repro.orchestrate import CampaignOrchestrator
from repro.orchestrate.config import CampaignConfig
from repro.rtl.elaborate import elaborate
from repro.rtl.lint import lint_verifiable
from repro.rtl.verilog import emit_module
from repro.scenario import FamilySpec, generate_family, verifiable_family

SPECS = [
    FamilySpec(blocks=1, modules_per_block=1, datapath_width=2,
               pipeline_depth=1, error_report_width=1),
    FamilySpec(blocks=2, modules_per_block=2, datapath_width=4,
               pipeline_depth=2, error_report_width=2),
    FamilySpec(blocks=1, modules_per_block=3, datapath_width=8,
               pipeline_depth=3, error_report_width=3, seed=7),
    FamilySpec(blocks=3, modules_per_block=2, datapath_width=6,
               pipeline_depth=1, error_report_width=1, seed=99,
               name="alt"),
]
IDS = [f"b{s.blocks}m{s.modules_per_block}w{s.datapath_width}"
       f"d{s.pipeline_depth}e{s.error_report_width}s{s.seed}"
       for s in SPECS]


class TestFamilySpec:
    @pytest.mark.parametrize("kwargs", [
        {"name": ""}, {"name": 7}, {"seed": -1}, {"blocks": 0},
        {"modules_per_block": 0}, {"datapath_width": 1},
        {"pipeline_depth": 0}, {"error_report_width": 0},
        {"blocks": True}, {"datapath_width": "8"},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FamilySpec(**kwargs)

    @pytest.mark.parametrize("spec", SPECS, ids=IDS)
    def test_dict_roundtrip(self, spec):
        assert FamilySpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", SPECS, ids=IDS)
    def test_digest_content_identity(self, spec):
        assert spec.digest() == FamilySpec.from_dict(spec.to_dict()).digest()
        for field_name in ("seed", "blocks", "datapath_width"):
            bumped = replace(spec, **{
                field_name: getattr(spec, field_name) + 1})
            assert bumped.digest() != spec.digest()


class TestGeneration:
    @pytest.mark.parametrize("spec", SPECS, ids=IDS)
    def test_shape_matches_spec(self, spec):
        blocks = generate_family(spec)
        assert len(blocks) == spec.blocks
        names = []
        for block, modules in blocks:
            assert len(modules) == spec.modules_per_block
            assert modules[0].name == f"{block}00_wide"
            names.extend(m.name for m in modules)
        assert len(set(names)) == len(names)

    @pytest.mark.parametrize("spec", SPECS, ids=IDS)
    def test_integrity_specs_consistent(self, spec):
        # base modules carry no injection ports yet, so full spec
        # validation runs on the verifiable form
        for _, modules in generate_family(spec):
            for module in modules:
                assert module.integrity.has_checkpoints()
        for _, modules in verifiable_family(spec):
            for module in modules:
                assert module.integrity.validate_against(module) == []

    @pytest.mark.parametrize("spec", SPECS, ids=IDS)
    def test_generation_is_deterministic(self, spec):
        first = [emit_module(m) for _, mods in generate_family(spec)
                 for m in mods]
        second = [emit_module(m) for _, mods in generate_family(spec)
                  for m in mods]
        assert first == second

    def test_growth_leaves_existing_rtl_untouched(self):
        base = SPECS[1]
        grown = replace(base, blocks=base.blocks + 1,
                        modules_per_block=base.modules_per_block + 1)
        base_text = {m.name: emit_module(m)
                     for _, mods in generate_family(base) for m in mods}
        grown_text = {m.name: emit_module(m)
                      for _, mods in generate_family(grown) for m in mods}
        for name, text in base_text.items():
            assert grown_text[name] == text

    def test_seed_changes_generic_leaves(self):
        base = generate_family(SPECS[1])
        other = generate_family(replace(SPECS[1], seed=SPECS[1].seed + 1))
        base_leaves = [emit_module(m) for _, mods in base
                       for m in mods if m.name.endswith("_leaf")]
        other_leaves = [emit_module(m) for _, mods in other
                        for m in mods if m.name.endswith("_leaf")]
        assert base_leaves != other_leaves


class TestVerifiableFamily:
    @pytest.mark.parametrize("spec", SPECS, ids=IDS)
    def test_lints_clean_and_elaborates(self, spec):
        for _, modules in verifiable_family(spec):
            for module in modules:
                assert lint_verifiable(module) == []
                design = elaborate(module)
                assert design.regs

    @pytest.mark.parametrize("spec", SPECS, ids=IDS)
    def test_verilog_emission_round_trips(self, spec):
        """Emitted Verilog is stable (emit twice, byte-identical) and
        structurally sane for both the base and verifiable variants."""
        for base_mods, ver_mods in zip(generate_family(spec),
                                       verifiable_family(spec)):
            for base, verifiable in zip(base_mods[1], ver_mods[1]):
                base_text = emit_module(base)
                ver_text = emit_module(verifiable)
                assert emit_module(base) == base_text
                assert emit_module(verifiable) == ver_text
                assert f"module {base.name}" in base_text
                assert "I_ERR_INJ_C" not in base_text
                assert "I_ERR_INJ_C" in ver_text

    def test_golden_family_passes_formal_campaign(self):
        """The defect-free family is the sweeps' PASS baseline."""
        spec = FamilySpec(blocks=1, modules_per_block=2,
                          datapath_width=4, pipeline_depth=1,
                          error_report_width=2)
        report = CampaignOrchestrator(
            verifiable_family(spec), config=CampaignConfig()
        ).run()
        assert report.total_properties > 0
        assert report.all_passed
        assert report.lint_issues == []
