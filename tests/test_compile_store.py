"""The content-addressed compiled-problem store and its campaign wiring.

Covers the store itself (two-level LRU, digest keying, counters), the
compile paths refactored onto it (``compile_job``, ``compile_vunit``,
``partition_property``), the executor wiring (per-worker stores, the
process wire codec), and the campaign-level guarantees: byte-identical
outcomes with the store on, off, or LRU-thrashed, across every
executor — including the golden-vs-patched same-name scenario the old
identity-checked design cache had to special-case.
"""

import json

import pytest

from repro.chip import ComponentChip
from repro.core.partition import partition_property
from repro.formal.engine import FAIL, PASS, ModelChecker
from repro.formal.problems import (
    CompiledProblemStore, compilations_total, elaborations_total,
)
from repro.orchestrate import (
    CampaignConfig, CampaignOrchestrator, EngineConfig,
    ModuleAffinityScheduling, ParallelExecutor, SerialExecutor,
    WorkStealingExecutor, compile_job, decode_job_result,
    encode_job_result, plan_campaign, run_check_job,
)
from repro.psl.compile import compile_vunit
from repro.rtl.verilog import emit_module


def _engines(**overrides):
    overrides.setdefault("sat_conflicts", 500_000)
    overrides.setdefault("bdd_nodes", 5_000_000)
    return (EngineConfig(**overrides),)


@pytest.fixture(scope="module")
def buggy_blocks():
    """Two block-C modules with the B2 defect seeded — PASS and FAIL
    mixed, so counterexample traces cross every compile path."""
    chip = ComponentChip(defects={"B2"}, only_blocks=["C"])
    return [("C", chip.blocks[0][1][:2])]


@pytest.fixture(scope="module")
def buggy_plan(buggy_blocks):
    return plan_campaign(buggy_blocks, _engines())


# ----------------------------------------------------------------------
# the store itself
# ----------------------------------------------------------------------

class TestStore:
    def test_design_level_hits_by_content(self, buggy_plan):
        store = CompiledProblemStore()
        jobs = buggy_plan.jobs
        first = store.design(jobs[0].module)
        again = store.design(jobs[0].module)
        assert again is first
        stats = store.stats()
        assert stats["design_hits"] == 1
        assert stats["design_misses"] == 1

    def test_problem_level_two_tier(self, buggy_plan):
        """Distinct assertions of one module miss the problem level but
        hit the design level; a repeated assertion hits outright."""
        store = CompiledProblemStore()
        jobs = [job for job in buggy_plan.jobs
                if job.module.name == buggy_plan.jobs[0].module.name]
        first = compile_job(jobs[0], store)
        second = compile_job(jobs[1], store)
        assert first is not second
        assert store.stats()["design_hits"] == 1   # reused elaboration
        assert store.stats()["problem_hits"] == 0
        assert compile_job(jobs[0], store) is first
        assert store.stats()["problem_hits"] == 1

    def test_lru_eviction_under_max_designs_1(self, buggy_plan):
        store = CompiledProblemStore(max_designs=1)
        module_a = buggy_plan.jobs[0].module
        module_b = next(job.module for job in buggy_plan.jobs
                        if job.module.name != module_a.name)
        store.design(module_a)
        store.design(module_b)   # evicts a
        store.design(module_a)   # misses again, evicts b
        stats = store.stats()
        assert stats["design_misses"] == 3
        assert stats["design_evictions"] == 2
        assert stats["designs"] == 1

    def test_problem_eviction_bounded(self, buggy_plan):
        store = CompiledProblemStore(max_problems=1)
        jobs = buggy_plan.jobs[:3]
        for job in jobs:
            compile_job(job, store)
        stats = store.stats()
        assert stats["problems"] == 1
        assert stats["problem_evictions"] == 2

    def test_digest_keying_separates_same_name_modules(self):
        """A golden and a patched module share a *name* but never a
        digest — the store can never serve one the other's design
        (the old one-entry cache needed an object-identity hack for
        exactly this)."""
        golden = ComponentChip(only_blocks=["C"]).blocks[0][1][0]
        patched = ComponentChip(defects={"B2"},
                                only_blocks=["C"]).blocks[0][1][0]
        assert golden.name == patched.name
        assert emit_module(golden) != emit_module(patched)
        store = CompiledProblemStore()
        golden_design = store.design(golden)
        patched_design = store.design(patched)
        assert golden_design is not patched_design
        assert store.stats()["design_misses"] == 2
        assert store.design(golden) is golden_design
        assert store.design(patched) is patched_design

    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="max_designs"):
            CompiledProblemStore(max_designs=0)
        with pytest.raises(ValueError, match="max_problems"):
            CompiledProblemStore(max_problems=0)

    def test_discard_compiles_cold_again(self, buggy_plan):
        store = CompiledProblemStore()
        compile_job(buggy_plan.jobs[0], store)
        store.discard()
        compile_job(buggy_plan.jobs[0], store)
        assert store.stats()["problem_misses"] == 2

    def test_merge_stats_sums_counters(self):
        merged = CompiledProblemStore.merge_stats(
            {"design_hits": 2, "problem_hits": 1},
            {"design_hits": 3, "design_misses": 4},
        )
        assert merged == {"design_hits": 5, "problem_hits": 1,
                          "design_misses": 4}

    def test_process_wide_totals_advance(self, buggy_plan):
        elaborations = elaborations_total()
        compilations = compilations_total()
        compile_job(buggy_plan.jobs[0])          # store-less: both count
        assert elaborations_total() == elaborations + 1
        assert compilations_total() == compilations + 1
        store = CompiledProblemStore()
        compile_job(buggy_plan.jobs[0], store)   # miss: both count
        compile_job(buggy_plan.jobs[0], store)   # hit: neither counts
        assert elaborations_total() == elaborations + 2
        assert compilations_total() == compilations + 2


# ----------------------------------------------------------------------
# refactored compile paths
# ----------------------------------------------------------------------

class TestCompilePaths:
    def test_store_and_cold_compile_identical_problems(self, buggy_plan):
        """The stored problem must decide checks exactly like a cold
        compile — same verdicts, same counterexample frames."""
        store = CompiledProblemStore()
        for job in buggy_plan.jobs:
            warm = ModelChecker(
                compile_job(job, store),
                budget=job.engines[0].make_budget(),
            ).check(method=job.engines[0].method)
            cold = ModelChecker(
                compile_job(job),
                budget=job.engines[0].make_budget(),
            ).check(method=job.engines[0].method)
            assert warm.status == cold.status
            if warm.trace is not None:
                assert warm.trace.canonical_frames() == \
                    cold.trace.canonical_frames()

    def test_compile_vunit_through_store(self, buggy_plan):
        job = buggy_plan.jobs[0]
        store = CompiledProblemStore()
        problems = compile_vunit(job.module, job.vunit, store=store)
        assert len(problems) == len(job.vunit.asserted())
        # one elaboration serves the whole vunit...
        assert store.stats()["design_misses"] == 1
        # ...and recompiling the vunit serves every problem from store
        again = compile_vunit(job.module, job.vunit, store=store)
        assert [ts is prior for ts, prior in zip(again, problems)] == \
            [True] * len(problems)

    def test_partition_checkpoints_share_one_elaboration(self):
        from repro.chip.library import fig7_cut_registers, fig7_module
        from repro.core.stereotypes import integrity_vunit
        from repro.rtl.inject import make_verifiable
        module = make_verifiable(fig7_module(data_width=8, depth=3))
        vunit = integrity_vunit(module)
        assert_name = vunit.asserted()[0][0]
        cuts = fig7_cut_registers(module)
        store = CompiledProblemStore()
        plan = partition_property(module, vunit, assert_name, cuts,
                                  store=store)
        stats = store.stats()
        # one checkpoint problem per cut, all sharing one elaboration
        assert stats["problem_misses"] == len(cuts)
        assert stats["design_misses"] == 1
        assert stats["design_hits"] == len(cuts) - 1
        cold = partition_property(module, vunit, assert_name, cuts)
        assert [p.name for p in cold.pieces] == \
            [p.name for p in plan.pieces]
        # verdicts are store-invariant, piece by piece
        for warm_piece, cold_piece in zip(plan.pieces, cold.pieces):
            warm = ModelChecker(warm_piece.ts).check(method="kind",
                                                     max_k=6)
            cold_check = ModelChecker(cold_piece.ts).check(method="kind",
                                                           max_k=6)
            assert warm.status == cold_check.status


# ----------------------------------------------------------------------
# the wire codec
# ----------------------------------------------------------------------

class TestWireCodec:
    def test_spec_is_portable_json(self, buggy_plan):
        for job in buggy_plan.jobs[:3]:
            spec = json.loads(json.dumps(job.spec()))
            assert spec["fingerprint"] == job.fingerprint
            assert spec["module_digest"] == job.module_digest
            assert spec["vunit_digest"] == job.vunit_digest
            assert spec["engines"] == [c.describe() for c in job.engines]

    def test_round_trip_preserves_outcome(self, buggy_plan):
        store = CompiledProblemStore()
        for job in buggy_plan.jobs:
            original = run_check_job(job, store)
            entry = json.loads(json.dumps(encode_job_result(original)))
            revived = decode_job_result(entry, job, store)
            assert revived.index == original.index
            assert revived.qualified_name == original.qualified_name
            assert revived.result.status == original.result.status
            assert revived.result.engine == original.result.engine
            assert revived.result.depth == original.result.depth
            if original.result.status == FAIL:
                assert revived.result.trace is not None
                assert revived.result.trace.replay()
                assert revived.result.trace.canonical_frames() == \
                    original.result.trace.canonical_frames()

    def test_fail_entry_shrinks_to_frames(self, buggy_plan):
        """The wire entry must carry canonical frames, not the compiled
        transition system."""
        failing = next(job for job in buggy_plan.jobs
                       if run_check_job(job).result.status == FAIL)
        entry = encode_job_result(run_check_job(failing))
        assert isinstance(entry["result"]["trace"], list)
        # the whole entry is plain data, so it JSON-serializes
        json.dumps(entry)

    def test_index_mismatch_rejected(self, buggy_plan):
        entry = encode_job_result(run_check_job(buggy_plan.jobs[0]))
        with pytest.raises(ValueError, match="does not match"):
            decode_job_result(entry, buggy_plan.jobs[1])

    def test_single_stage_attempt_log_recorded(self, buggy_plan):
        """The small fix: a single-stage portfolio keeps the same
        attempt log and all-stages seconds a ladder does — without the
        ``portfolio:`` engine label that would move canonical bytes."""
        result = run_check_job(buggy_plan.jobs[0]).result
        attempts = result.stats["portfolio"]
        assert len(attempts) == 1
        assert attempts[0]["engine"] == buggy_plan.jobs[0].engines[0].method
        assert result.seconds == attempts[0]["seconds"]
        assert not result.engine.startswith("portfolio:")


# ----------------------------------------------------------------------
# campaign-level guarantees
# ----------------------------------------------------------------------

def _store_variants():
    return [
        pytest.param(dict(compile_store=True), id="store-on"),
        pytest.param(dict(compile_store=False), id="store-off"),
        pytest.param(dict(compile_store=True,
                          store_options={"max_designs": 1,
                                         "max_problems": 1}),
                     id="store-thrashed"),
    ]


class TestCampaignByteIdentity:
    @pytest.fixture(scope="class")
    def reference(self, buggy_blocks):
        return CampaignOrchestrator(
            buggy_blocks, engines=_engines(),
            executor=SerialExecutor(),
        ).run().canonical_bytes()

    @pytest.mark.parametrize("store_kwargs", _store_variants())
    @pytest.mark.parametrize("executor_factory", [
        pytest.param(SerialExecutor, id="serial"),
        pytest.param(lambda **kw: ParallelExecutor(processes=2, **kw),
                     id="parallel"),
        pytest.param(lambda **kw: WorkStealingExecutor(processes=2, **kw),
                     id="work-stealing"),
    ])
    def test_outcome_invariant_across_executors_and_stores(
            self, buggy_blocks, reference, executor_factory,
            store_kwargs):
        report = CampaignOrchestrator(
            buggy_blocks, engines=_engines(),
            executor=executor_factory(**store_kwargs),
        ).run()
        assert report.canonical_bytes() == reference

    def test_golden_and_patched_share_a_name_in_one_plan(self):
        """The old identity-hack regression: one plan containing a
        golden and a patched module of the same name, run against one
        shared store, must verdict each on its own RTL."""
        golden = ComponentChip(only_blocks=["C"]).blocks[0][1][0]
        patched = ComponentChip(defects={"B2"},
                                only_blocks=["C"]).blocks[0][1][0]
        assert golden.name == patched.name
        blocks = [("GOLD", [golden]), ("PATCH", [patched])]
        store_on = CampaignOrchestrator(
            blocks, engines=_engines(),
            executor=SerialExecutor(
                store_options={"max_designs": 4, "max_problems": 64}),
        ).run()
        store_off = CampaignOrchestrator(
            blocks, engines=_engines(),
            executor=SerialExecutor(compile_store=False),
        ).run()
        assert store_on.canonical_bytes() == store_off.canonical_bytes()
        golden_failures = [r for r in store_on.results
                           if r.block == "GOLD"
                           and r.result.status == FAIL]
        patched_failures = [r for r in store_on.results
                            if r.block == "PATCH"
                            and r.result.status == FAIL]
        assert golden_failures == []
        assert patched_failures, "the seeded defect must FAIL"

    def test_resume_and_cache_replay_through_store(self, buggy_blocks,
                                                   tmp_path, reference):
        """Warm-cache and journal-resume replays decode through the
        orchestrator's replay store and stay byte-identical."""
        from repro.orchestrate import CampaignCheckpoint, ResultCache
        cache_path = str(tmp_path / "cache.json")
        journal = str(tmp_path / "run.journal")
        cold = CampaignOrchestrator(
            buggy_blocks, engines=_engines(),
            cache=ResultCache(cache_path),
            checkpoint=CampaignCheckpoint(journal),
        )
        assert cold.run().canonical_bytes() == reference
        warm = CampaignOrchestrator(
            buggy_blocks, engines=_engines(),
            cache=ResultCache(cache_path),
        )
        report = warm.run()
        assert report.canonical_bytes() == reference
        assert report.stats["cache_hits"] == report.total_properties
        # the FAIL replays recompiled through the replay store
        replay = report.stats["compile_store"]["replay"]
        assert replay["problem_misses"] > 0
        resumed = CampaignOrchestrator(
            buggy_blocks, engines=_engines(),
            checkpoint=CampaignCheckpoint(journal),
        )
        assert resumed.run(resume=True).canonical_bytes() == reference


class TestExecutorStoreWiring:
    def test_serial_store_warm_across_runs(self, buggy_plan):
        executor = SerialExecutor()
        list(executor.map(buggy_plan.jobs))
        first = executor.compile_stats()
        list(executor.map(buggy_plan.jobs))
        second = executor.compile_stats()
        assert first["workers"] == 1
        # the second run hits the retained problems outright
        assert second["problem_hits"] >= first["problem_misses"]

    def test_store_off_reports_empty_stats(self, buggy_plan):
        executor = SerialExecutor(compile_store=False)
        list(executor.map(buggy_plan.jobs))
        assert executor.compile_stats() == {}

    def test_per_worker_stores_in_the_work_stealing_pool(
            self, buggy_plan):
        """Each worker owns a private store: the pool's aggregated
        counters account one compile per executed job, with at least
        one design miss per distinct module (no cross-process
        sharing), and module-affinity batches turn the rest into
        design hits."""
        executor = WorkStealingExecutor(
            processes=2, scheduling=ModuleAffinityScheduling())
        results = list(executor.map(buggy_plan.jobs))
        assert len(results) == len(buggy_plan.jobs)
        stats = executor.compile_stats()
        distinct_modules = len({job.module_digest
                                for job in buggy_plan.jobs})
        assert 1 <= stats["workers"] <= 2
        assert stats["design_misses"] >= distinct_modules
        assert stats["design_misses"] <= \
            distinct_modules * stats["workers"]
        assert stats["design_hits"] + stats["design_misses"] == \
            len(buggy_plan.jobs)
        assert stats["design_hits"] > 0

    def test_campaign_stats_surface_run_counters(self, buggy_blocks):
        config = CampaignConfig(
            engines="kind", sat_conflicts=500_000,
            bdd_nodes=5_000_000, executor="workstealing:2",
            scheduling="module-affinity",
        )
        report = CampaignOrchestrator(buggy_blocks, config=config).run()
        run_stats = report.stats["compile_store"]["run"]
        assert run_stats["design_hits"] > 0
        off = CampaignConfig(
            engines="kind", sat_conflicts=500_000,
            bdd_nodes=5_000_000, compile_store=False,
        )
        report_off = CampaignOrchestrator(buggy_blocks,
                                          config=off).run()
        assert report_off.stats["compile_store"]["run"] == {}
        assert report_off.canonical_bytes() == report.canonical_bytes()


class TestConfigKnobs:
    def test_compile_section_round_trips(self):
        config = CampaignConfig(compile_store=True,
                                compile_max_designs=3,
                                compile_max_problems=7)
        again = CampaignConfig.from_dict(config.to_dict())
        assert again == config
        assert again.compile_max_designs == 3
        toml_round = CampaignConfig.from_toml(config.to_toml())
        assert toml_round == config

    def test_unlimited_form_accepted(self):
        config = CampaignConfig.from_dict(
            {"compile": {"max_designs": "unlimited",
                         "max_problems": "unlimited"}}
        )
        assert config.compile_max_designs is None
        assert config.compile_max_problems is None
        # bounded-by-default: None must serialize back as "unlimited"
        assert config.to_dict()["compile"]["max_designs"] == "unlimited"

    def test_knobs_reach_the_executor(self):
        config = CampaignConfig(executor="workstealing:2",
                                compile_max_designs=2,
                                compile_max_problems=5)
        executor = config.build_executor()
        assert executor.compile_store is True
        assert executor.store_options == {"max_designs": 2,
                                          "max_problems": 5}
        off = CampaignConfig(compile_store=False).build_executor()
        assert off.store is None

    def test_bad_values_rejected(self):
        from repro.orchestrate import ConfigError
        with pytest.raises(ConfigError, match="compile_max_designs"):
            CampaignConfig(compile_max_designs=0)
        with pytest.raises(ConfigError, match="compile_store"):
            CampaignConfig(compile_store="yes")

    def test_knobs_move_the_config_digest_not_fingerprints(
            self, buggy_blocks):
        base = CampaignConfig()
        tuned = CampaignConfig(compile_max_designs=1)
        assert base.digest() != tuned.digest()
        # ...but job fingerprints (cache keys) stay put: the store is
        # runtime wiring, like the BDD workspace
        plan_a = CampaignOrchestrator(buggy_blocks, config=base).plan()
        plan_b = CampaignOrchestrator(buggy_blocks, config=tuned).plan()
        assert [j.fingerprint for j in plan_a.jobs] == \
            [j.fingerprint for j in plan_b.jobs]
