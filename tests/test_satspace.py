"""The shared incremental SAT workspace and its campaign wiring.

Covers the clustering layer (one shared-AIG multi-bad system per
(module, vunit) chunk, with per-assertion cone-of-influence views),
the workspace itself (session reuse, activation/retire soundness, LRU
and oversize valves, budget re-arming), the engine integration (warm
``bmc``/``kind`` results — verdicts, depths, *and* counterexample
bytes — identical to cold runs), and the campaign-level certification
bar: byte-identical ``CampaignReport.canonical_bytes`` with the
workspace on, off, clustering disabled, or LRU-thrashed, across every
executor.
"""

import pytest

from repro.chip import ComponentChip
from repro.formal.budget import BudgetExceeded, ResourceBudget
from repro.formal.engine import FAIL, PASS, EngineOptions, ModelChecker
from repro.formal.satspace import (
    MODE_BMC_INIT, MODE_STEP, SatSession, SatWorkspace,
)
from repro.orchestrate import (
    CampaignOrchestrator, EngineConfig, ParallelExecutor, SerialExecutor,
    WorkStealingExecutor, plan_campaign, portfolio,
)
from repro.psl.compile import compile_assertion, compile_cluster


def _engines(**overrides):
    overrides.setdefault("max_bound", 8)
    overrides.setdefault("max_k", 12)
    overrides.setdefault("sat_conflicts", 500_000)
    return portfolio("bmc", "kind", **overrides)


@pytest.fixture(scope="module")
def buggy_blocks():
    """Two block-C modules with the B2 defect seeded: 17 jobs, PASS and
    FAIL mixed, so counterexample traces cross the warm/cold boundary."""
    chip = ComponentChip(defects={"B2"}, only_blocks=["C"])
    return [("C", chip.blocks[0][1][:2])]


@pytest.fixture(scope="module")
def buggy_plan(buggy_blocks):
    return plan_campaign(buggy_blocks, _engines())


@pytest.fixture(scope="module")
def a_module(buggy_blocks):
    return buggy_blocks[0][1][0]


@pytest.fixture(scope="module")
def a_vunit(a_module):
    from repro.core.stereotypes import stereotype_vunits
    return stereotype_vunits(a_module)[0]


# ----------------------------------------------------------------------
# clustering: one shared AIG, per-assertion views
# ----------------------------------------------------------------------

class TestClusterSystem:
    def test_views_match_solo_compiles(self, a_module, a_vunit):
        cluster = compile_cluster(a_module, a_vunit)
        for name, _ in a_vunit.asserted():
            view = cluster.view(name)
            solo = compile_assertion(a_module, a_vunit, name)
            assert len(view.latches) == len(solo.latches)
            assert len(view.inputs) == len(solo.inputs)

    def test_members_follow_directive_order(self, a_module, a_vunit):
        cluster = compile_cluster(a_module, a_vunit)
        assert cluster.members() == \
            [name for name, _ in a_vunit.asserted()]

    def test_subset_clusters(self, a_module, a_vunit):
        names = [name for name, _ in a_vunit.asserted()][:1]
        cluster = compile_cluster(a_module, a_vunit, names)
        assert cluster.members() == names

    def test_unknown_assertion_rejected(self, a_module, a_vunit):
        with pytest.raises(ValueError):
            compile_cluster(a_module, a_vunit, ["no_such_property"])


# ----------------------------------------------------------------------
# the workspace itself
# ----------------------------------------------------------------------

def _bind(workspace, module, vunit, name):
    return workspace.bind(module, vunit, name)


class TestWorkspace:
    def test_session_reuse_within_cluster(self, a_module, a_vunit):
        workspace = SatWorkspace()
        names = [name for name, _ in a_vunit.asserted()]
        first = _bind(workspace, a_module, a_vunit, names[0])
        session_a = first.lease(MODE_BMC_INIT)
        first.retire()
        second = _bind(workspace, a_module, a_vunit, names[-1])
        session_b = second.lease(MODE_BMC_INIT)
        second.retire()
        assert session_a is session_b
        stats = workspace.stats()
        assert stats["reuses"] >= 1
        assert stats["cluster_compiles"] == 1

    def test_modes_get_distinct_sessions(self, a_module, a_vunit):
        workspace = SatWorkspace()
        name = next(iter(a_vunit.asserted()))[0]
        binding = _bind(workspace, a_module, a_vunit, name)
        init = binding.lease(MODE_BMC_INIT)
        step = binding.lease(MODE_STEP)
        assert init is not step
        assert init.unroller.constrain_init
        assert not step.unroller.constrain_init
        binding.retire()

    def test_lru_eviction_under_max_sessions_1(self, a_module, a_vunit):
        workspace = SatWorkspace(max_sessions=1)
        name = next(iter(a_vunit.asserted()))[0]
        binding = _bind(workspace, a_module, a_vunit, name)
        binding.lease(MODE_BMC_INIT)
        binding.lease(MODE_STEP)  # evicts the init session
        binding.retire()
        stats = workspace.stats()
        assert stats["sessions"] == 1
        assert stats["evictions"] >= 1

    def test_oversize_discard(self, a_module, a_vunit):
        workspace = SatWorkspace(max_session_clauses=1)
        name = next(iter(a_vunit.asserted()))[0]
        binding = _bind(workspace, a_module, a_vunit, name)
        session = binding.lease(MODE_BMC_INIT)
        session.frame(2)  # grow the clause DB past the valve
        binding.retire()
        again = _bind(workspace, a_module, a_vunit, name)
        fresh = again.lease(MODE_BMC_INIT)
        again.retire()
        assert fresh is not session
        assert workspace.stats()["oversize_discards"] == 1

    def test_cluster_limit_1_separates_assertions(self, a_module, a_vunit):
        names = [name for name, _ in a_vunit.asserted()]
        if len(names) < 2:
            pytest.skip("vunit with a single assertion")
        workspace = SatWorkspace(cluster_limit=1)
        first = _bind(workspace, a_module, a_vunit, names[0])
        second = _bind(workspace, a_module, a_vunit, names[1])
        session_a = first.lease(MODE_BMC_INIT)
        session_b = second.lease(MODE_BMC_INIT)
        first.retire()
        second.retire()
        assert session_a is not session_b
        assert workspace.stats()["cluster_compiles"] == 2

    def test_retire_then_recheck_same_verdict(self, a_module, a_vunit):
        from repro.formal.bmc import bmc, bmc_session
        workspace = SatWorkspace()
        name = next(iter(a_vunit.asserted()))[0]
        cold = bmc(compile_assertion(a_module, a_vunit, name), 6)
        for _ in range(3):  # check, retire, check again, ...
            binding = _bind(workspace, a_module, a_vunit, name)
            session = binding.lease(MODE_BMC_INIT)
            warm = bmc_session(session, name, 6)
            binding.retire()
            assert warm.failed == cold.failed
            assert warm.bound == cold.bound

    def test_budget_exhaustion_leaves_session_reusable(self, a_module,
                                                       a_vunit):
        from repro.formal.bmc import bmc, bmc_session
        workspace = SatWorkspace()
        name = next(iter(a_vunit.asserted()))[0]
        binding = _bind(workspace, a_module, a_vunit, name)
        session = binding.lease(MODE_BMC_INIT,
                                ResourceBudget(sat_conflicts=0))
        with pytest.raises(BudgetExceeded):
            bmc_session(session, name, 6)
        binding.retire()
        # re-lease with a generous budget: same session, sound answer
        binding = _bind(workspace, a_module, a_vunit, name)
        rearmed = binding.lease(MODE_BMC_INIT,
                                ResourceBudget(sat_conflicts=500_000))
        assert rearmed is session
        warm = bmc_session(rearmed, name, 6)
        binding.retire()
        cold = bmc(compile_assertion(a_module, a_vunit, name), 6)
        assert warm.failed == cold.failed and warm.bound == cold.bound

    def test_valves_validated(self):
        with pytest.raises(ValueError):
            SatWorkspace(max_sessions=0)
        with pytest.raises(ValueError):
            SatWorkspace(cluster_limit=0)
        with pytest.raises(ValueError):
            SatWorkspace(max_session_clauses=0)

    def test_stats_keys(self):
        stats = SatWorkspace().stats()
        for key in ("sessions", "clusters", "leases", "reuses",
                    "evictions", "oversize_discards", "activations",
                    "retirements", "frames_built", "frames_reused",
                    "clauses_retained", "cluster_compiles"):
            assert key in stats

    def test_discard_drops_sessions_keeps_counters(self, a_module,
                                                   a_vunit):
        workspace = SatWorkspace()
        name = next(iter(a_vunit.asserted()))[0]
        binding = _bind(workspace, a_module, a_vunit, name)
        binding.lease(MODE_BMC_INIT)
        binding.retire()
        leases = workspace.stats()["leases"]
        workspace.discard()
        stats = workspace.stats()
        assert stats["sessions"] == 0 and stats["clusters"] == 0
        assert stats["leases"] == leases


# ----------------------------------------------------------------------
# engine integration: warm == cold, byte for byte
# ----------------------------------------------------------------------

class TestEngineWarmCold:
    def _all_assertions(self, blocks):
        from repro.core.stereotypes import stereotype_vunits
        for _, modules in blocks:
            for module in modules:
                for vunit in stereotype_vunits(module):
                    for name, _ in vunit.asserted():
                        yield module, vunit, name

    @pytest.mark.parametrize("method", ["bmc", "kind"])
    def test_every_fixture_assertion_matches_cold(self, buggy_blocks,
                                                  method):
        workspace = SatWorkspace()
        budget_kwargs = dict(max_bound=8, max_k=12)
        saw_fail = False
        for module, vunit, name in self._all_assertions(buggy_blocks):
            ts = compile_assertion(module, vunit, name)
            cold = ModelChecker(ts).check(method, **budget_kwargs)
            binding = workspace.bind(module, vunit, name)
            options = EngineOptions(max_bound=8, max_k=12,
                                    sat_workspace=binding)
            warm = ModelChecker(ts).check(method, options=options)
            binding.retire()
            assert (warm.status, warm.depth) == (cold.status, cold.depth), \
                f"{ts.name}: warm {method} diverged"
            if cold.status == FAIL:
                saw_fail = True
                assert warm.trace.canonical_frames() == \
                    cold.trace.canonical_frames()
        assert saw_fail, "fixture must exercise the FAIL re-derivation"

    def test_warm_result_carries_solver_telemetry(self, a_module,
                                                  a_vunit):
        workspace = SatWorkspace()
        name = next(iter(a_vunit.asserted()))[0]
        ts = compile_assertion(a_module, a_vunit, name)
        binding = workspace.bind(a_module, a_vunit, name)
        options = EngineOptions(max_bound=6, max_k=8,
                                sat_workspace=binding)
        result = ModelChecker(ts).check("kind", options=options)
        binding.retire()
        sat = result.stats["sat"]
        for key in ("conflicts", "propagations", "restarts", "learned_db"):
            assert key in sat
        assert "base" in sat and "step" in sat

    def test_cold_results_carry_same_telemetry_shape(self, a_module,
                                                     a_vunit):
        name = next(iter(a_vunit.asserted()))[0]
        ts = compile_assertion(a_module, a_vunit, name)
        for method in ("bmc", "kind"):
            result = ModelChecker(ts).check(method, max_bound=6, max_k=8)
            sat = result.stats["sat"]
            for key in ("conflicts", "propagations", "restarts",
                        "learned_db"):
                assert key in sat


# ----------------------------------------------------------------------
# campaign byte-identity: the certification bar
# ----------------------------------------------------------------------

def _sat_variants():
    return [
        pytest.param(dict(share_sat=True), id="sat-on"),
        pytest.param(dict(share_sat=False), id="sat-off"),
        pytest.param(dict(share_sat=True,
                          sat_options={"cluster_limit": 1}),
                     id="sat-nocluster"),
        pytest.param(dict(share_sat=True,
                          sat_options={"max_sessions": 1}),
                     id="sat-thrashed"),
    ]


class TestCampaignByteIdentity:
    @pytest.fixture(scope="class")
    def reference(self, buggy_blocks):
        return CampaignOrchestrator(
            buggy_blocks, engines=_engines(),
            executor=SerialExecutor(),
        ).run().canonical_bytes()

    @pytest.mark.parametrize("sat_kwargs", _sat_variants())
    @pytest.mark.parametrize("executor_factory", [
        pytest.param(SerialExecutor, id="serial"),
        pytest.param(lambda **kw: ParallelExecutor(processes=2, **kw),
                     id="parallel"),
        pytest.param(lambda **kw: WorkStealingExecutor(processes=2, **kw),
                     id="work-stealing"),
    ])
    def test_outcome_invariant_across_executors(self, buggy_blocks,
                                                reference,
                                                executor_factory,
                                                sat_kwargs):
        report = CampaignOrchestrator(
            buggy_blocks, engines=_engines(),
            executor=executor_factory(**sat_kwargs),
        ).run()
        assert report.canonical_bytes() == reference

    def test_report_stats_surface_workspace_counters(self, buggy_blocks):
        report = CampaignOrchestrator(
            buggy_blocks, engines=_engines(),
            executor=SerialExecutor(share_sat=True),
        ).run()
        counters = report.stats["sat_workspace"]
        assert counters["leases"] > 0
        assert counters["reuses"] > 0
        assert counters["clauses_retained"] > 0
        assert counters["workers"] == 1

    def test_sharing_off_reports_empty_stats(self, buggy_blocks):
        report = CampaignOrchestrator(
            buggy_blocks, engines=_engines(),
            executor=SerialExecutor(share_sat=False),
        ).run()
        assert report.stats["sat_workspace"] == {}

    def test_workspace_warm_across_runs(self, buggy_blocks):
        """An explicit ``sat_workspace=`` keeps sessions alive across
        two campaigns: the second run reuses instead of recompiling."""
        workspace = SatWorkspace()
        executor = SerialExecutor(sat_workspace=workspace)
        first = CampaignOrchestrator(
            buggy_blocks, engines=_engines(), executor=executor,
        ).run()
        compiles_after_first = workspace.stats()["cluster_compiles"]
        second = CampaignOrchestrator(
            buggy_blocks, engines=_engines(), executor=executor,
        ).run()
        assert second.canonical_bytes() == first.canonical_bytes()
        assert workspace.stats()["cluster_compiles"] == \
            compiles_after_first

    def test_per_worker_counters_aggregate(self, buggy_blocks):
        executor = WorkStealingExecutor(processes=2, share_sat=True)
        CampaignOrchestrator(
            buggy_blocks, engines=_engines(), executor=executor,
        ).run()
        stats = executor.sat_stats()
        assert stats["workers"] >= 1
        assert stats["leases"] > 0
