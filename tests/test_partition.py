"""Divide-and-conquer property partitioning (Figure 7)."""

import pytest

from repro.chip.library import fig7_cut_registers, fig7_module
from repro.core.partition import (
    CUT_SUFFIX, cut_registers, partition_property,
)
from repro.core.stereotypes import integrity_vunit
from repro.formal.budget import BudgetExceeded, ResourceBudget
from repro.formal.engine import PASS, TIMEOUT, ModelChecker
from repro.psl.ast import PslError
from repro.rtl.elaborate import elaborate
from repro.rtl.inject import make_verifiable
from repro.rtl.module import Module
from repro.sim.simulator import Simulator


@pytest.fixture(scope="module")
def wide():
    """A small Figure 7 module (kept small for test speed)."""
    return make_verifiable(fig7_module(data_width=8, depth=3))


class TestCutRegisters:
    def test_cut_becomes_free_input(self, wide):
        design = elaborate(wide)
        cut, names = cut_registers(design, ["A2"])
        assert names == {"A2": "A2" + CUT_SUFFIX}
        assert "A2" + CUT_SUFFIX in cut.inputs
        assert all(reg.name != "A2" for reg in cut.regs)

    def test_cut_design_still_simulates(self, wide):
        design = elaborate(wide)
        cut, _ = cut_registers(design, ["A2", "B2"])
        sim = Simulator(cut)
        outs = sim.step({name: 0 for name in cut.inputs})
        assert "OUT_D" in outs

    def test_unknown_register_rejected(self, wide):
        design = elaborate(wide)
        with pytest.raises(PslError):
            cut_registers(design, ["NOPE"])


class TestPartitionPlan:
    def test_plan_structure(self, wide):
        unit = integrity_vunit(wide)
        assert_name = unit.asserted()[0][0]
        cuts = fig7_cut_registers(wide)
        plan = partition_property(wide, unit, assert_name, cuts)
        assert len(plan.checkpoint_problems) == 3
        assert plan.abstract_problem is not None
        assert len(plan.pieces) == 4

    def test_pieces_have_smaller_cones(self, wide):
        unit = integrity_vunit(wide)
        assert_name = unit.asserted()[0][0]
        from repro.psl.compile import compile_assertion
        monolithic = compile_assertion(wide, unit, assert_name)
        plan = partition_property(wide, unit, assert_name,
                                  fig7_cut_registers(wide))
        whole = monolithic.size_stats()["latches"]
        for piece in plan.pieces:
            assert piece.ts.size_stats()["latches"] < whole

    def test_all_pieces_pass(self, wide, budget):
        unit = integrity_vunit(wide)
        assert_name = unit.asserted()[0][0]
        plan = partition_property(wide, unit, assert_name,
                                  fig7_cut_registers(wide))
        for piece in plan.pieces:
            result = ModelChecker(
                piece.ts, ResourceBudget(sat_conflicts=500_000,
                                         bdd_nodes=5_000_000)
            ).check(method="bdd-forward")
            assert result.status == PASS, piece.name

    def test_figure7_timeout_vs_divided(self, wide):
        """The headline effect: the monolithic check exceeds a node
        budget that every divided piece fits inside."""
        from repro.psl.compile import compile_assertion
        unit = integrity_vunit(wide)
        assert_name = unit.asserted()[0][0]
        monolithic = compile_assertion(wide, unit, assert_name)
        # measured: monolithic needs ~119k nodes, the largest piece ~12k
        node_quota = 40_000
        result = ModelChecker(
            monolithic, ResourceBudget(bdd_nodes=node_quota)
        ).check(method="bdd-forward")
        assert result.status == TIMEOUT

        plan = partition_property(wide, unit, assert_name,
                                  fig7_cut_registers(wide))
        for piece in plan.pieces:
            result = ModelChecker(
                piece.ts, ResourceBudget(bdd_nodes=node_quota)
            ).check(method="bdd-forward")
            assert result.status == PASS, piece.name

    def test_unknown_assert_rejected(self, wide):
        unit = integrity_vunit(wide)
        with pytest.raises(PslError):
            partition_property(wide, unit, "pMissing", ["A2"])

    def test_compile_slice_pieces_equivalent(self, wide, budget):
        """Checkpoint pieces compiled from their COI slices must be no
        larger than — and verdict-identical to — the full compiles."""
        unit = integrity_vunit(wide)
        assert_name = unit.asserted()[0][0]
        cuts = fig7_cut_registers(wide)
        full = partition_property(wide, unit, assert_name, cuts)
        sliced = partition_property(wide, unit, assert_name, cuts,
                                    compile_slice=True)
        pairs = zip(full.checkpoint_problems, sliced.checkpoint_problems)
        for whole, piece in pairs:
            assert piece.ts.size_stats()["latches"] <= \
                whole.ts.size_stats()["latches"]
            want = ModelChecker(whole.ts, budget).check(
                method="bdd-forward")
            got = ModelChecker(piece.ts, budget).check(
                method="bdd-forward")
            assert got.status == want.status, piece.name
