"""Expression IR: construction, width checking, evaluation,
substitution."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl.signals import (
    Const, Input, Op, Reg, WidthError, cat, const, evaluate, mask, mux,
    substitute, walk, zext,
)


class TestConstruction:
    def test_const_fits_width(self):
        assert Const(5, 3).value == 5
        with pytest.raises(WidthError):
            Const(8, 3)
        with pytest.raises(WidthError):
            Const(-1, 3)

    def test_zero_width_rejected(self):
        with pytest.raises(WidthError):
            Input("x", 0)

    def test_binop_width_mismatch(self):
        a = Input("a", 4)
        b = Input("b", 5)
        with pytest.raises(WidthError):
            _ = a & b

    def test_int_coercion(self):
        a = Input("a", 4)
        expr = a ^ 0b1010
        assert isinstance(expr, Op) and expr.kind == "XOR"
        assert expr.operands[1].value == 0b1010

    def test_slice_bounds(self):
        a = Input("a", 8)
        assert a[0:4].width == 4
        assert a[7].width == 1
        with pytest.raises(WidthError):
            _ = a[8]
        with pytest.raises(WidthError):
            _ = a[2:10]

    def test_mux_needs_1bit_select(self):
        sel = Input("s", 2)
        with pytest.raises(WidthError):
            mux(sel, const(1, 4), const(2, 4))

    def test_cat_width_is_sum(self):
        a, b = Input("a", 3), Input("b", 5)
        assert cat(a, b).width == 8

    def test_zext(self):
        a = Input("a", 3)
        assert zext(a, 8).width == 8
        assert zext(a, 3) is a
        with pytest.raises(WidthError):
            zext(a, 2)

    def test_reg_reset_range(self):
        with pytest.raises(WidthError):
            Reg("r", 3, reset=8)

    def test_reg_next_width_checked(self):
        r = Reg("r", 4)
        with pytest.raises(WidthError):
            r.next = Input("a", 3)

    def test_reg_next_unset_raises(self):
        r = Reg("r", 4)
        with pytest.raises(ValueError):
            _ = r.next


class TestEvaluation:
    def _env(self, **values):
        env = {}
        self.ports = {}
        for name, (width, value) in values.items():
            port = Input(name, width)
            self.ports[name] = port
            env[port] = value
        return env

    def test_basic_ops(self):
        env = self._env(a=(8, 0b1100), b=(8, 0b1010))
        a, b = self.ports["a"], self.ports["b"]
        assert evaluate(a & b, env) == 0b1000
        assert evaluate(a | b, env) == 0b1110
        assert evaluate(a ^ b, env) == 0b0110
        assert evaluate(~a, env) == 0b11110011
        assert evaluate(a + b, env) == (0b1100 + 0b1010)
        assert evaluate(a - b, env) == (0b1100 - 0b1010)

    def test_modular_arithmetic(self):
        env = self._env(a=(4, 15), b=(4, 3))
        a, b = self.ports["a"], self.ports["b"]
        assert evaluate(a + b, env) == 2      # wraps mod 16
        assert evaluate(b - a, env) == 4      # borrows mod 16

    def test_comparisons(self):
        env = self._env(a=(4, 7), b=(4, 9))
        a, b = self.ports["a"], self.ports["b"]
        assert evaluate(a.eq(b), env) == 0
        assert evaluate(a.ne(b), env) == 1
        assert evaluate(a.lt(b), env) == 1
        assert evaluate(a.ge(b), env) == 0

    def test_mux_concat_slice(self):
        env = self._env(s=(1, 1), a=(4, 0xA), b=(4, 0x5))
        s, a, b = self.ports["s"], self.ports["a"], self.ports["b"]
        assert evaluate(mux(s, a, b), env) == 0xA
        assert evaluate(cat(a, b), env) == 0xA5
        assert evaluate(cat(a, b)[4:8], env) == 0xA

    def test_reductions(self):
        env = self._env(a=(4, 0b0111), b=(4, 0), c=(4, 0xF))
        a, b, c = self.ports["a"], self.ports["b"], self.ports["c"]
        assert evaluate(a.reduce_xor(), env) == 1
        assert evaluate(b.reduce_or(), env) == 0
        assert evaluate(c.reduce_and(), env) == 1

    def test_unbound_leaf_raises(self):
        a = Input("a", 4)
        with pytest.raises(KeyError):
            evaluate(a, {})

    def test_deep_chain_no_recursion_error(self):
        a = Input("a", 8)
        expr = a
        for _ in range(5000):
            expr = expr ^ 1
        assert evaluate(expr, {a: 0}) == 0  # even number of flips? 5000 flips of bit0

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_add_matches_python(self, x, y):
        a, b = Input("a", 8), Input("b", 8)
        assert evaluate(a + b, {a: x, b: y}) == (x + y) & 0xFF

    @given(st.integers(0, 255))
    def test_redxor_matches_popcount(self, x):
        a = Input("a", 8)
        assert evaluate(a.reduce_xor(), {a: x}) == bin(x).count("1") % 2


class TestSubstitution:
    def test_leaf_replacement(self):
        a, b = Input("a", 4), Input("b", 4)
        expr = (a ^ 3) & a
        replaced = substitute(expr, {a: b})
        assert evaluate(replaced, {b: 0b1010}) == \
            evaluate(expr, {a: 0b1010})

    def test_sharing_preserved(self):
        a, b = Input("a", 4), Input("b", 4)
        shared = a ^ 5
        expr = shared & (shared | a)
        replaced = substitute(expr, {a: b})
        nodes = list(walk([replaced]))
        xor_nodes = [n for n in nodes
                     if isinstance(n, Op) and n.kind == "XOR"]
        assert len(xor_nodes) == 1  # still one shared xor

    def test_width_change_rejected(self):
        a = Input("a", 4)
        with pytest.raises(WidthError):
            substitute(a & 1, {a: Input("b", 5)})

    def test_untouched_graph_returned_as_is(self):
        a = Input("a", 4)
        expr = a ^ 1
        assert substitute(expr, {}) is expr
