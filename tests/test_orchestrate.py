"""The campaign orchestrator: planner, executors, engine portfolios,
and the incremental result cache."""

import json
import multiprocessing
import pathlib

import pytest

from repro import __version__ as repro_version
from repro.chip import ComponentChip
from repro.core.campaign import BlockSummary, FormalCampaign
from repro.core.report import format_table2
from repro.formal.budget import ResourceBudget
from repro.formal.engine import (
    CheckResult, ModelChecker, PASS, TIMEOUT, register_engine,
    registered_engines,
)
from repro.formal.engine import _ENGINES  # test-only registry cleanup
from repro.orchestrate import (
    CampaignOrchestrator, EngineConfig, ParallelExecutor, ResultCache,
    SerialExecutor, job_fingerprint, plan_campaign, portfolio,
    run_check_job,
)


def _budget():
    return ResourceBudget(sat_conflicts=500_000, bdd_nodes=5_000_000)


def _engines(**overrides):
    overrides.setdefault("sat_conflicts", 500_000)
    overrides.setdefault("bdd_nodes", 5_000_000)
    return (EngineConfig(**overrides),)


@pytest.fixture(scope="module")
def block_c():
    return ComponentChip(only_blocks=["C"]).blocks


@pytest.fixture(scope="module")
def small_blocks():
    """First four modules of block C — enough structure, fast checks."""
    chip = ComponentChip(only_blocks=["C"])
    return [("C", chip.blocks[0][1][:4])]


def _buggy_small_blocks():
    """Same four modules with the B2 defect seeded (touches C00 only)."""
    chip = ComponentChip(defects={"B2"}, only_blocks=["C"])
    return [("C", chip.blocks[0][1][:4])]


class LossyExecutor(SerialExecutor):
    """Contract-breaking executor: silently drops the last job."""

    name = "lossy"

    def map(self, jobs):
        jobs = list(jobs)
        return super().map(jobs[:-1])


class TestPlanner:
    def test_one_job_per_assertion(self, block_c):
        plan = plan_campaign(block_c, _engines())
        assert plan.total_jobs == 101
        assert plan.block_order == ["C"]
        assert plan.submodules == {"C": 13}
        assert [job.index for job in plan.jobs] == list(range(101))
        assert len(plan.modules_planned()) == 13

    def test_jobs_are_module_contiguous(self, block_c):
        """The planner emits each module's jobs as one contiguous run,
        so executors can reuse one elaborated design per module."""
        plan = plan_campaign(block_c, _engines())
        seen = []
        for job in plan.jobs:
            if not seen or seen[-1] != job.module.name:
                seen.append(job.module.name)
        assert len(seen) == len(set(seen))

    def test_fingerprints_distinct_per_job(self, block_c):
        plan = plan_campaign(block_c, _engines())
        fingerprints = [job.fingerprint for job in plan.jobs]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_skipped_modules_recorded(self, block_c):
        plan = plan_campaign(block_c, _engines())
        assert all(entry.in_scope is False for entry in plan.skipped)


class TestFingerprint:
    def test_stable_for_identical_input(self, small_blocks):
        plan_a = plan_campaign(small_blocks, _engines())
        plan_b = plan_campaign(small_blocks, _engines())
        assert [j.fingerprint for j in plan_a.jobs] == \
            [j.fingerprint for j in plan_b.jobs]

    def test_rtl_edit_changes_fingerprint(self, small_blocks):
        golden = plan_campaign(small_blocks, _engines())
        buggy = plan_campaign(_buggy_small_blocks(), _engines())
        changed = {
            j.fingerprint for j in golden.jobs if j.module.name == "C00_fsmctl"
        } ^ {
            j.fingerprint for j in buggy.jobs if j.module.name == "C00_fsmctl"
        }
        same = [
            (a.fingerprint, b.fingerprint)
            for a, b in zip(golden.jobs, buggy.jobs)
            if a.module.name != "C00_fsmctl"
        ]
        assert changed, "defect did not change the touched module's keys"
        assert all(a == b for a, b in same), \
            "defect changed an untouched module's keys"

    def test_vunit_edit_changes_fingerprint(self, small_blocks):
        module = small_blocks[0][1][0]
        from repro.core.stereotypes import soundness_vunit
        unit = soundness_vunit(module)
        name, _ = unit.asserted()[0]
        before = job_fingerprint(module, unit, name, _engines())
        unit.comment = "edited by a designer"
        after = job_fingerprint(module, unit, name, _engines())
        assert before != after

    def test_engine_config_changes_fingerprint(self, small_blocks):
        module = small_blocks[0][1][0]
        from repro.core.stereotypes import soundness_vunit
        unit = soundness_vunit(module)
        name, _ = unit.asserted()[0]
        auto = job_fingerprint(module, unit, name, _engines())
        kind = job_fingerprint(module, unit, name, _engines(method="kind"))
        tighter = job_fingerprint(module, unit, name,
                                  _engines(sat_conflicts=7))
        assert len({auto, kind, tighter}) == 3


class TestEngineRegistry:
    def test_builtins_registered(self):
        names = registered_engines()
        for name in ("auto", "bmc", "kind", "bdd-forward", "bdd-backward",
                     "bdd-combined", "pobdd"):
            assert name in names
        assert ModelChecker.METHODS == names

    def test_register_and_dispatch_custom_engine(self, small_blocks):
        @register_engine("always-green")
        def _always_green(checker, options):
            return CheckResult(checker.ts.name, PASS, "always-green")

        try:
            assert "always-green" in ModelChecker.METHODS
            report = FormalCampaign(
                small_blocks, method="always-green", budget_factory=_budget
            ).run()
            assert report.all_passed
            assert all(r.result.engine == "always-green"
                       for r in report.results)
        finally:
            _ENGINES.pop("always-green", None)
        assert "always-green" not in ModelChecker.METHODS

    def test_unknown_method_rejected(self, small_blocks):
        plan = plan_campaign(small_blocks, _engines(method="quantum"))
        with pytest.raises(ValueError, match="unknown method"):
            run_check_job(plan.jobs[0])


class TestExecutors:
    def test_parallel_report_identical_to_serial(self, block_c):
        serial = CampaignOrchestrator(
            block_c, engines=_engines(), executor=SerialExecutor()
        ).run()
        parallel = CampaignOrchestrator(
            block_c, engines=_engines(),
            executor=ParallelExecutor(processes=2),
        ).run()
        assert format_table2(serial) == format_table2(parallel)
        assert [
            (r.qualified_name, r.result.status, r.result.engine,
             r.result.depth)
            for r in serial.results
        ] == [
            (r.qualified_name, r.result.status, r.result.engine,
             r.result.depth)
            for r in parallel.results
        ]
        assert serial.stats["executor"] == "serial"
        assert parallel.stats["executor"] == "parallel"

    def test_parallel_counterexamples_replay(self):
        report = CampaignOrchestrator(
            _buggy_small_blocks(), engines=_engines(),
            executor=ParallelExecutor(processes=2),
        ).run()
        failures = report.failures_by_module()
        assert set(failures) == {"C00_fsmctl"}
        assert report.blocks["C"].bugs == 1
        for record in failures["C00_fsmctl"]:
            assert record.result.trace is not None
            assert record.result.trace.replay()

    def test_over_yielding_executor_rejected(self, small_blocks):
        class EagerExecutor(SerialExecutor):
            name = "eager"

            def map(self, jobs):
                results = list(super().map(jobs))
                return iter(results + results[-1:])

        orchestrator = CampaignOrchestrator(
            small_blocks, engines=_engines(), executor=EagerExecutor()
        )
        with pytest.raises(RuntimeError, match="beyond the last job"):
            orchestrator.run()

    def test_all_hits_run_reports_effective_mode(self, tmp_path):
        """A warm rerun where every job is cached never builds a pool;
        the stats must say so rather than claim a parallel run."""
        path = tmp_path / "results.json"
        blocks = _buggy_small_blocks()
        FormalCampaign(blocks, budget_factory=_budget,
                       cache=ResultCache(path)).run()
        warm = FormalCampaign(
            _buggy_small_blocks(), budget_factory=_budget,
            cache=ResultCache(path),
            executor=ParallelExecutor(processes=2),
        ).run()
        assert warm.stats["cache_misses"] == 0
        assert warm.stats["executor"] == "parallel[serial-fallback]"

    def test_same_name_distinct_modules_not_confused(self):
        """Two distinct module objects sharing a name (a golden and a
        patched variant in one plan) must each be checked against their
        own elaboration — the design cache may not serve one the
        other's."""
        from repro.chip.specials import fsm_controller
        from repro.rtl.inject import make_verifiable
        golden = make_verifiable(fsm_controller("C00_fsmctl", buggy=False))
        buggy = make_verifiable(fsm_controller("C00_fsmctl", buggy=True))
        report = CampaignOrchestrator(
            [("X", [golden, buggy])], engines=_engines()
        ).run()
        verdicts = {r.result.status for r in report.results}
        assert "fail" in verdicts, \
            "buggy variant was checked against the golden elaboration"

    def test_out_of_order_executor_rejected(self, small_blocks):
        class ShuffledExecutor(SerialExecutor):
            name = "shuffled"

            def map(self, jobs):
                results = list(super().map(jobs))
                return iter(results[::-1])

        orchestrator = CampaignOrchestrator(
            small_blocks, engines=_engines(), executor=ShuffledExecutor()
        )
        with pytest.raises(RuntimeError, match="ordering contract"):
            orchestrator.run()

    def test_short_yielding_executor_rejected(self, small_blocks):
        orchestrator = CampaignOrchestrator(
            small_blocks, engines=_engines(), executor=LossyExecutor()
        )
        with pytest.raises(RuntimeError, match="ran out of results"):
            orchestrator.run()


class TestEnginePortfolio:
    def test_first_definitive_stage_wins(self, small_blocks):
        # no methods -> the default kind -> bdd-combined -> pobdd ladder
        engines = portfolio(sat_conflicts=500_000, bdd_nodes=5_000_000)
        assert [config.method for config in engines] == \
            ["kind", "bdd-combined", "pobdd"]
        report = CampaignOrchestrator(small_blocks, engines=engines).run()
        assert report.all_passed
        for record in report.results:
            assert record.result.engine == "portfolio:kind"
            attempts = record.result.stats["portfolio"]
            assert [a["engine"] for a in attempts] == ["kind"]

    def test_falls_through_indefinitive_stage(self, small_blocks):
        """BMC can only refute within its bound — on a passing property
        it returns UNKNOWN and the portfolio moves to the next stage."""
        engines = (
            EngineConfig(method="bmc", max_bound=2, sat_conflicts=500_000),
            EngineConfig(method="bdd-combined", bdd_nodes=5_000_000),
        )
        report = CampaignOrchestrator(small_blocks, engines=engines).run()
        assert report.all_passed
        for record in report.results:
            assert record.result.engine == "portfolio:bdd-combined"
            attempts = record.result.stats["portfolio"]
            assert [a["status"] for a in attempts] == ["unknown", "pass"]

    def test_portfolio_through_facade(self, small_blocks):
        engines = portfolio("kind", "bdd-combined",
                            sat_conflicts=500_000, bdd_nodes=5_000_000)
        report = FormalCampaign(small_blocks, engines=engines).run()
        assert report.all_passed
        assert report.stats["engines"] == ["kind", "bdd-combined"]


class TestResultCache:
    def _run(self, blocks, cache_path, **kwargs):
        campaign = FormalCampaign(blocks, budget_factory=_budget,
                                  cache=ResultCache(cache_path), **kwargs)
        return campaign.run()

    def test_cold_then_warm(self, small_blocks, tmp_path):
        path = tmp_path / "results.json"
        cold = self._run(small_blocks, path)
        warm = self._run(small_blocks, path)
        assert cold.stats["cache_hits"] == 0
        assert cold.stats["cache_misses"] == cold.total_properties
        assert warm.stats["cache_hits"] == warm.total_properties
        assert warm.stats["cache_misses"] == 0
        assert all(r.cached for r in warm.results)
        assert format_table2(cold) == format_table2(warm)

    def test_rtl_edit_misses_only_touched_module(self, small_blocks,
                                                 tmp_path):
        path = tmp_path / "results.json"
        self._run(small_blocks, path)
        eco = self._run(_buggy_small_blocks(), path)
        assert eco.stats["modules_checked"] == ["C00_fsmctl"]
        assert len(eco.stats["modules_replayed"]) == 3
        assert eco.stats["cache_hits"] > 0
        assert set(eco.failures_by_module()) == {"C00_fsmctl"}

    def test_engine_config_change_misses(self, small_blocks, tmp_path):
        path = tmp_path / "results.json"
        self._run(small_blocks, path)
        rerun = self._run(small_blocks, path, method="bdd-combined")
        assert rerun.stats["cache_hits"] == 0
        assert rerun.stats["cache_misses"] == rerun.total_properties
        assert rerun.all_passed

    def test_cached_fail_replays_counterexample(self, tmp_path):
        path = tmp_path / "results.json"
        self._run(_buggy_small_blocks(), path)
        warm = self._run(_buggy_small_blocks(), path)
        assert warm.stats["cache_misses"] == 0
        failures = warm.failures_by_module()
        assert set(failures) == {"C00_fsmctl"}
        for record in failures["C00_fsmctl"]:
            assert record.cached
            assert record.result.trace is not None
            assert record.result.trace.replay()

    def test_corrupted_file_degrades_to_miss(self, small_blocks, tmp_path):
        path = tmp_path / "results.json"
        cold = self._run(small_blocks, path)
        path.write_text("{ not json at all")
        rerun = self._run(small_blocks, path)
        assert rerun.stats["cache_hits"] == 0
        assert rerun.stats["cache_misses"] == rerun.total_properties
        assert format_table2(rerun) == format_table2(cold)
        # the rerun rewrote a valid store
        warm = self._run(small_blocks, path)
        assert warm.stats["cache_misses"] == 0

    def test_tampered_entry_never_flips_verdict(self, small_blocks,
                                                tmp_path):
        path = tmp_path / "results.json"
        cold = self._run(small_blocks, path)
        store = json.loads(path.read_text())
        entries = store["entries"]
        victim = next(iter(entries))
        entries[victim]["status"] = "definitely-bogus"
        path.write_text(json.dumps(store))
        rerun = self._run(small_blocks, path)
        assert rerun.stats["cache_misses"] == 1
        assert rerun.stats["cache_hits"] == rerun.total_properties - 1
        assert format_table2(rerun) == format_table2(cold)
        assert rerun.all_passed

    def test_completed_work_flushed_on_mid_run_failure(self, small_blocks,
                                                       tmp_path):
        """A crash mid-campaign must not discard verdicts already
        computed — the incremental retry reuses them."""
        path = tmp_path / "results.json"
        # the crashing run and the retry must share fingerprints, so
        # build the same engines the retry's default config builds
        engines = portfolio("kind", "bdd-combined",
                            sat_conflicts=500_000, bdd_nodes=5_000_000)
        orchestrator = CampaignOrchestrator(
            small_blocks, engines=engines, executor=LossyExecutor(),
            cache=ResultCache(path),
        )
        with pytest.raises(RuntimeError, match="ordering contract"):
            orchestrator.run()
        retry = self._run(small_blocks, path)
        assert retry.stats["cache_hits"] == retry.total_properties - 1
        assert retry.stats["cache_misses"] == 1
        assert retry.all_passed

    def test_fail_without_trace_is_a_miss(self, small_blocks, tmp_path):
        """A cached FAIL whose trace is missing cannot be validated, so
        it must be re-checked — never replayed."""
        path = tmp_path / "results.json"
        self._run(_buggy_small_blocks(), path)
        store = json.loads(path.read_text())
        tampered = 0
        for entry in store["entries"].values():
            if entry["status"] == "fail":
                entry["trace"] = None
                tampered += 1
        assert tampered > 0
        path.write_text(json.dumps(store))
        rerun = self._run(_buggy_small_blocks(), path)
        assert rerun.stats["cache_misses"] == tampered
        assert set(rerun.failures_by_module()) == {"C00_fsmctl"}
        for record in rerun.failures_by_module()["C00_fsmctl"]:
            assert not record.cached
            assert record.result.trace is not None


class TestCacheEviction:
    """Size-bounded LRU eviction (``max_entries``)."""

    def _passing_result(self, name="p"):
        return CheckResult(name=name, status=PASS, engine="kind", depth=1)

    def test_store_evicts_least_recently_used(self, tmp_path):
        cache = ResultCache(tmp_path / "r.json", max_entries=2)
        cache.store("a", self._passing_result())
        cache.store("b", self._passing_result())
        cache.store("c", self._passing_result())
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert len(cache) == 2

    def test_lookup_hit_refreshes_recency(self, small_blocks, tmp_path):
        path = tmp_path / "r.json"
        campaign = FormalCampaign(small_blocks, budget_factory=_budget,
                                  cache=ResultCache(path))
        cold = campaign.run()
        # replan with the same engines the campaign's default config
        # built, so fingerprints line up with the cached entries
        plan = CampaignOrchestrator(
            small_blocks,
            engines=portfolio("kind", "bdd-combined",
                              sat_conflicts=500_000,
                              bdd_nodes=5_000_000),
        ).plan()
        cache = ResultCache(path, max_entries=cold.total_properties)
        oldest = plan.jobs[0]
        assert cache.lookup(oldest.fingerprint, oldest) is not None
        # the hit moved job 0 to the most-recent end: storing one new
        # entry now evicts some *other* (coldest) fingerprint
        cache.store("fresh", self._passing_result())
        assert oldest.fingerprint in cache
        assert "fresh" in cache

    def test_cap_shrink_trims_on_load(self, tmp_path):
        path = tmp_path / "r.json"
        cache = ResultCache(path)
        for key in ("a", "b", "c", "d"):
            cache.store(key, self._passing_result())
        cache.flush()
        on_disk = path.read_bytes()
        trimmed = ResultCache(path, max_entries=2)
        assert len(trimmed) == 2
        assert "c" in trimmed and "d" in trimmed
        # the trim alone is in-memory: a hits-only run stays a reader
        trimmed.flush()
        assert path.read_bytes() == on_disk
        # ...and persists once the run actually stores something
        trimmed.store("e", self._passing_result())
        trimmed.flush()
        persisted = ResultCache(path)
        assert len(persisted) == 2
        assert "d" in persisted and "e" in persisted

    def test_hits_only_run_never_rewrites_store(self, small_blocks,
                                                tmp_path):
        """Recency refreshes alone must not dirty a bounded store: a
        purely-reading campaign flushing nothing is what stops it from
        clobbering a concurrent writer's fresh entries with its own
        stale snapshot."""
        path = tmp_path / "r.json"
        campaign = FormalCampaign(small_blocks, budget_factory=_budget,
                                  cache=ResultCache(path))
        cold = campaign.run()
        before = path.read_bytes()
        warm = FormalCampaign(
            small_blocks, budget_factory=_budget,
            cache=ResultCache(path, max_entries=cold.total_properties),
        ).run()
        assert warm.stats["cache_misses"] == 0
        assert path.read_bytes() == before  # flush was a no-op

    def test_unbounded_cache_unchanged(self, tmp_path):
        cache = ResultCache(tmp_path / "r.json")
        for index in range(50):
            cache.store(f"k{index}", self._passing_result())
        assert len(cache) == 50

    def test_bad_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path / "r.json", max_entries=0)

    def test_bounded_campaign_still_correct(self, small_blocks, tmp_path):
        """A cache too small for the campaign evicts but never corrupts:
        reruns recheck the evicted properties and agree with cold."""
        path = tmp_path / "r.json"
        cold = FormalCampaign(small_blocks, budget_factory=_budget).run()
        capped = lambda: ResultCache(path, max_entries=5)
        FormalCampaign(small_blocks, budget_factory=_budget,
                       cache=capped()).run()
        warm = FormalCampaign(small_blocks, budget_factory=_budget,
                              cache=capped()).run()
        assert warm.stats["cache_hits"] == 5
        assert warm.stats["cache_misses"] == warm.total_properties - 5
        assert warm.canonical_bytes() == cold.canonical_bytes()


def _mutate_truncate_half(path):
    data = path.read_text()
    path.write_text(data[: len(data) // 2])


def _mutate_wrong_repro_version(path):
    store = json.loads(path.read_text())
    store["repro_version"] = "0.0.0-not-this-build"
    path.write_text(json.dumps(store))


def _mutate_wrong_store_version(path):
    store = json.loads(path.read_text())
    store["version"] = 999
    path.write_text(json.dumps(store))


def _mutate_entries_not_a_dict(path):
    store = json.loads(path.read_text())
    store["entries"] = "bogus"
    path.write_text(json.dumps(store))


def _mutate_fail_entries_empty_trace(path):
    store = json.loads(path.read_text())
    for entry in store["entries"].values():
        if entry["status"] == "fail":
            entry["trace"] = []
    path.write_text(json.dumps(store))


def _mutate_one_entry_non_dict(path):
    store = json.loads(path.read_text())
    victim = sorted(store["entries"])[0]
    store["entries"][victim] = ["not", "a", "dict"]
    path.write_text(json.dumps(store))


#: (mutator, which entries must degrade to misses)
CACHE_CORRUPTIONS = [
    pytest.param(_mutate_truncate_half, "all", id="truncated-json"),
    pytest.param(_mutate_wrong_repro_version, "all",
                 id="wrong-repro-version"),
    pytest.param(_mutate_wrong_store_version, "all",
                 id="wrong-store-version"),
    pytest.param(_mutate_entries_not_a_dict, "all",
                 id="entries-not-a-dict"),
    pytest.param(_mutate_fail_entries_empty_trace, "fails",
                 id="fail-empty-trace"),
    pytest.param(_mutate_one_entry_non_dict, "one", id="non-dict-entry"),
]


class TestCacheCorruptionMatrix:
    """Every way a cache file can rot degrades to a miss (scoped as
    tightly as the damage allows) and never changes a single verdict."""

    @pytest.mark.parametrize("mutate,scope", CACHE_CORRUPTIONS)
    def test_corruption_degrades_to_miss_never_flips_verdict(
            self, mutate, scope, tmp_path):
        path = tmp_path / "results.json"
        blocks = _buggy_small_blocks()
        cold = FormalCampaign(blocks, budget_factory=_budget,
                              cache=ResultCache(path)).run()
        store = json.loads(path.read_text())
        fails = sum(1 for entry in store["entries"].values()
                    if entry["status"] == "fail")
        assert fails > 0, "fixture must cache FAIL entries"
        mutate(path)
        rerun = FormalCampaign(_buggy_small_blocks(),
                               budget_factory=_budget,
                               cache=ResultCache(path)).run()
        expected_misses = {
            "all": cold.total_properties, "fails": fails, "one": 1,
        }[scope]
        assert rerun.stats["cache_misses"] == expected_misses
        assert rerun.stats["cache_hits"] == \
            cold.total_properties - expected_misses
        assert [r.result.status for r in rerun.results] == \
            [r.result.status for r in cold.results]
        assert format_table2(rerun) == format_table2(cold)
        assert set(rerun.failures_by_module()) == {"C00_fsmctl"}
        # the rerun healed the store: a further rerun is all hits
        healed = FormalCampaign(_buggy_small_blocks(),
                                budget_factory=_budget,
                                cache=ResultCache(path)).run()
        assert healed.stats["cache_misses"] == 0


def _flush_worker(path, worker_id, barrier, rounds):
    """Hammer one shared cache path: every worker flushes its own view
    at the same instant, ``rounds`` times over."""
    cache = ResultCache(path)
    for round_no in range(rounds):
        for j in range(10):
            cache.store(f"w{worker_id}-r{round_no}-{j}",
                        CheckResult(f"prop{j}", PASS, "test"))
        barrier.wait()
        cache.flush()


class TestConcurrentFlush:
    def test_parallel_flushes_never_corrupt_the_store(self, tmp_path):
        """Campaigns sharing one cache path may flush at the same
        moment; the store on disk must always be one writer's complete
        merged valid JSON, with no temp-file litter.  (Simultaneous
        renames may still each miss the other's very latest round —
        the deterministic union guarantee for flushes that *land* in
        some order is TestCacheMerge's subject — but every installed
        store carries at least its writer's full entry set.)"""
        path = tmp_path / "shared.json"
        context = multiprocessing.get_context("fork")
        workers, rounds = 4, 5
        barrier = context.Barrier(workers)
        processes = [
            context.Process(target=_flush_worker,
                            args=(str(path), i, barrier, rounds))
            for i in range(workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
        assert all(process.exitcode == 0 for process in processes)
        store = json.loads(path.read_text())  # parses: rename was atomic
        assert store["version"] == ResultCache.VERSION
        entries = store["entries"]
        assert entries and len(entries) % 10 == 0
        # the final writer had all its own entries in memory, so they
        # all survive — under pre-merge last-writer-wins this was also
        # the *maximum*; now it is the floor
        owner_counts = {}
        for key in entries:
            owner = key.split("-")[0]
            owner_counts[owner] = owner_counts.get(owner, 0) + 1
        assert max(owner_counts.values()) == rounds * 10
        assert len(ResultCache(path)) == len(entries)
        # no litter: temp files never survive, and the flock sidecar
        # is removed by whichever flush finishes last (a racing
        # straggler may recreate it momentarily, but the final flush's
        # unlink-under-lock wins — see ResultCache._flush_lock)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != "shared.json"]
        assert leftovers == []


class TestFlushLockCleanup:
    """The flush's flock sidecar must not accumulate as debris: a
    successful flush removes it, and pre-existing (stale) sidecars are
    tolerated and cleaned up in turn."""

    def test_successful_flush_removes_the_lock_sidecar(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(path)
        cache.store("fp", CheckResult("p", PASS, "kind"))
        cache.flush()
        assert pathlib.Path(path).exists()
        assert not pathlib.Path(f"{path}.lock").exists()

    def test_hits_only_flush_leaves_nothing_behind(self, tmp_path):
        # a clean (not dirty) flush is a no-op: no store write, and no
        # sidecar ever created
        path = str(tmp_path / "cache.json")
        ResultCache(path).flush()
        assert list(tmp_path.iterdir()) == []

    def test_stale_lock_from_a_killed_flush_is_tolerated(self, tmp_path):
        # a flush that died mid-write leaves the sidecar behind; the
        # next flush must lock it, do its work, and clean it up
        path = str(tmp_path / "cache.json")
        stale = pathlib.Path(f"{path}.lock")
        stale.write_text("")  # the debris a killed flush leaves
        cache = ResultCache(path)
        cache.store("fp", CheckResult("p", PASS, "kind"))
        cache.flush()
        assert not stale.exists()
        assert "fp" in ResultCache(path)

    def test_sequential_campaigns_never_accumulate_sidecars(self, tmp_path):
        path = str(tmp_path / "cache.json")
        for round_no in range(3):
            cache = ResultCache(path)
            cache.store(f"fp-{round_no}",
                        CheckResult("p", PASS, "kind"))
            cache.flush()
        assert sorted(p.name for p in tmp_path.iterdir()) == \
            ["cache.json"]
        assert len(ResultCache(path)) == 3


class TestCacheMerge:
    """Flush-merge closes the last-writer-wins hole: two campaigns
    sharing one store both keep their fresh verdicts."""

    def test_two_campaigns_union_on_flush(self, tmp_path):
        path = str(tmp_path / "shared.json")
        first = ResultCache(path)
        second = ResultCache(path)  # loaded before first's flush
        first.store("fp-first", CheckResult("p", PASS, "kind"))
        second.store("fp-second", CheckResult("p", PASS, "bmc"))
        first.flush()
        second.flush()  # used to clobber fp-first; must merge now
        merged = json.loads(pathlib.Path(path).read_text())["entries"]
        assert set(merged) == {"fp-first", "fp-second"}
        # recency order: disk's entry (older) first, ours last
        assert list(merged) == ["fp-first", "fp-second"]

    def test_newest_verdict_wins_per_fingerprint(self, tmp_path):
        path = str(tmp_path / "shared.json")
        first = ResultCache(path)
        second = ResultCache(path)
        first.store("fp", CheckResult("p", TIMEOUT, "kind"))
        first.flush()
        second.store("fp", CheckResult("p", PASS, "pobdd"))  # newer
        second.flush()
        entries = json.loads(pathlib.Path(path).read_text())["entries"]
        assert entries["fp"]["status"] == PASS
        assert entries["fp"]["engine"] == "pobdd"
        # and the other way around: an *older* in-memory entry does not
        # overwrite a fresher one already on disk
        third = ResultCache(path)
        third.store("fp", CheckResult("p", TIMEOUT, "kind"))
        stale = json.loads(pathlib.Path(path).read_text())["entries"]
        entry = dict(stale["fp"])
        entry["stored_at"] = third._entries["fp"]["stored_at"] + 60.0
        entry["engine"] = "fresher"
        stale["fp"] = entry
        payload = {"version": ResultCache.VERSION,
                   "repro_version": repro_version,
                   "entries": stale}
        pathlib.Path(path).write_text(json.dumps(payload))
        third.flush()
        final = json.loads(pathlib.Path(path).read_text())["entries"]
        assert final["fp"]["engine"] == "fresher"

    def test_concurrent_campaign_runs_merge_their_verdicts(
            self, tmp_path, small_blocks):
        """The end-to-end satellite scenario: two campaigns over
        different scopes share one cache path, run 'concurrently'
        (both open the store before either flushes), and *both*
        campaigns' verdicts survive — a third run over the union scope
        is all cache hits."""
        path = str(tmp_path / "shared.json")
        blocks_a = [("C", [small_blocks[0][1][0]])]
        blocks_b = [("C", [small_blocks[0][1][1]])]
        campaign_a = CampaignOrchestrator(
            blocks_a, engines=_engines(), cache=ResultCache(path))
        campaign_b = CampaignOrchestrator(
            blocks_b, engines=_engines(), cache=ResultCache(path))
        campaign_a.run()  # flushes inside run()
        campaign_b.run()  # its cache predates a's flush: must merge
        union = CampaignOrchestrator(
            [("C", small_blocks[0][1][:2])], engines=_engines(),
            cache=ResultCache(path))
        report = union.run()
        assert report.stats["cache_hits"] == report.stats["jobs"]
        assert report.stats["cache_misses"] == 0

    def test_unsafe_entries_stay_tombstoned_through_merge(
            self, tmp_path, small_blocks):
        """An entry evicted as unsafe (failed replay) must not be
        resurrected from disk by the flush-merge."""
        path = str(tmp_path / "shared.json")
        orchestrator = CampaignOrchestrator(
            small_blocks, engines=_engines(), cache=ResultCache(path))
        orchestrator.run()
        store = json.loads(pathlib.Path(path).read_text())
        fingerprint = next(iter(store["entries"]))
        store["entries"][fingerprint]["status"] = "definitely-not"
        pathlib.Path(path).write_text(json.dumps(store))
        cache = ResultCache(path)
        plan = orchestrator.plan()
        job = next(j for j in plan.jobs if j.fingerprint == fingerprint)
        assert cache.lookup(fingerprint, job) is None  # tombstones it
        cache.store("fp-new", CheckResult("p", PASS, "kind"))
        cache.flush()
        final = json.loads(pathlib.Path(path).read_text())["entries"]
        assert fingerprint not in final
        assert "fp-new" in final

    def test_rival_entry_newer_than_tombstone_survives(self, tmp_path):
        """A tombstone kills the corrupt entry it was raised for — not
        a rival campaign's *fresh* re-verified verdict written after
        the eviction."""
        path = str(tmp_path / "shared.json")
        seed = ResultCache(path)
        seed.store("fp", CheckResult("p", PASS, "kind"))
        seed._entries["fp"]["status"] = "garbage"  # corrupt on disk
        seed.flush()
        victim = ResultCache(path)
        job = object()  # lookup fails long before touching the job
        assert victim.lookup("fp", job) is None  # tombstoned
        # a rival re-checks fp and flushes a fresh, newer entry
        rival = ResultCache(path)
        rival.store("fp", CheckResult("p", PASS, "pobdd"))
        rival.flush()
        # the victim's flush must keep the rival's fresh verdict
        victim.store("fp-own", CheckResult("q", PASS, "kind"))
        victim.flush()
        final = json.loads(pathlib.Path(path).read_text())["entries"]
        assert final["fp"]["engine"] == "pobdd"
        assert "fp-own" in final


class TestLockedFlushMerge:
    """The flock sidecar closes the last merge hole: two *simultaneous*
    read-merge-rename sequences used to be able to each miss the
    other's final round.  The choreography below drives exactly that
    interleaving — cache A re-reads the store, then pauses while cache
    B flushes, then A renames — and shows the entry loss without the
    lock and the full union with it."""

    @staticmethod
    def _choreographed_race(path, locked, monkeypatch):
        """Run the lost-update interleaving; returns the final store's
        fingerprints.  ``locked=False`` disables the sidecar lock to
        reproduce the historical behaviour."""
        import contextlib
        import threading
        from unittest import mock

        if not locked:
            monkeypatch.setattr(
                ResultCache, "_flush_lock",
                lambda self: contextlib.nullcontext(),
            )
        cache_a = ResultCache(path)
        cache_b = ResultCache(path)
        cache_a.store("fp-a", CheckResult("a", PASS, "kind"))
        cache_b.store("fp-b", CheckResult("b", PASS, "kind"))

        a_merged = threading.Event()
        release_a = threading.Event()
        original_merge = ResultCache._merge

        def pausing_merge(self, disk, ours):
            merged = original_merge(self, disk, ours)
            if self is cache_a:
                # A has re-read the store (no fp-b yet) and merged;
                # hold its rename open while B races
                a_merged.set()
                release_a.wait(timeout=30)
            return merged

        with mock.patch.object(ResultCache, "_merge", pausing_merge):
            thread_a = threading.Thread(target=cache_a.flush)
            thread_a.start()
            assert a_merged.wait(timeout=30)
            thread_b = threading.Thread(target=cache_b.flush)
            thread_b.start()
            # without the lock B completes here; with it B blocks on
            # the sidecar until A's rename lands
            thread_b.join(timeout=1.0)
            release_a.set()
            thread_a.join(timeout=30)
            thread_b.join(timeout=30)
            assert not thread_a.is_alive() and not thread_b.is_alive()
        return set(json.loads(pathlib.Path(path).read_text())["entries"])

    def test_simultaneous_flushes_union_under_the_lock(self, tmp_path,
                                                       monkeypatch):
        final = self._choreographed_race(
            str(tmp_path / "shared.json"), locked=True,
            monkeypatch=monkeypatch,
        )
        assert final == {"fp-a", "fp-b"}

    def test_control_experiment_loses_an_entry_without_the_lock(
            self, tmp_path, monkeypatch):
        """The same choreography with the lock disabled drops B's
        entry — proving the test above exercises the real race, not a
        benign ordering."""
        final = self._choreographed_race(
            str(tmp_path / "shared.json"), locked=False,
            monkeypatch=monkeypatch,
        )
        assert final == {"fp-a"}

    def test_lock_degrades_gracefully_without_fcntl(self, tmp_path,
                                                    monkeypatch):
        """Platforms without fcntl still flush (merge semantics keep
        sequential/overlapped safety; only the simultaneous race
        reopens)."""
        from repro.orchestrate import cache as cache_module
        monkeypatch.setattr(cache_module, "fcntl", None)
        path = str(tmp_path / "shared.json")
        cache = ResultCache(path)
        cache.store("fp", CheckResult("p", PASS, "kind"))
        cache.flush()
        assert "fp" in ResultCache(path)


class TestBlockSummaryAdd:
    def test_known_categories_count(self):
        summary = BlockSummary("A")
        for category in ("P0", "P1", "P2", "P3"):
            summary.add(category)
        assert (summary.p0, summary.p1, summary.p2, summary.p3) == \
            (1, 1, 1, 1)
        assert summary.total == 4

    @pytest.mark.parametrize("category", ["P4", "p0", "bugs", "", "total"])
    def test_unknown_category_rejected(self, category):
        summary = BlockSummary("A")
        with pytest.raises(ValueError, match="unknown property category"):
            summary.add(category)
        assert summary.total == 0
