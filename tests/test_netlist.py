"""Bit-blasting: the AIG must agree with word-level evaluation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl.elaborate import FlatDesign, elaborate
from repro.rtl.module import Module
from repro.rtl.netlist import Aig, FALSE, TRUE, bitblast
from repro.rtl.signals import Input, cat, const, evaluate, mask, mux


class TestAigPrimitives:
    def test_constant_folding(self):
        aig = Aig()
        a = aig.add_input("a")
        assert aig.and2(a, FALSE) == FALSE
        assert aig.and2(a, TRUE) == a
        assert aig.and2(a, a) == a
        assert aig.and2(a, aig.neg(a)) == FALSE

    def test_structural_hashing(self):
        aig = Aig()
        a, b = aig.add_input("a"), aig.add_input("b")
        assert aig.and2(a, b) == aig.and2(b, a)
        n = aig.num_nodes()
        aig.and2(a, b)
        assert aig.num_nodes() == n

    def test_evaluate(self):
        aig = Aig()
        a, b = aig.add_input("a"), aig.add_input("b")
        x = aig.xor2(a, b)
        for va in (0, 1):
            for vb in (0, 1):
                assert aig.evaluate([x], {a: va, b: vb})[0] == va ^ vb

    def test_support(self):
        aig = Aig()
        a, b = aig.add_input("a"), aig.add_input("b")
        latch = aig.add_latch("l")
        cone = aig.and2(a, latch)
        ins, lats = aig.support([cone])
        assert ins == [a]
        assert lats == [latch]
        assert b not in ins


def _random_expr(rng, leaves, depth):
    if depth == 0 or rng.random() < 0.2:
        return rng.choice(leaves)
    op = rng.choice(["and", "or", "xor", "add", "sub", "not", "mux",
                     "eq", "lt", "redxor", "slice", "cat"])
    a = _random_expr(rng, leaves, depth - 1)
    if op == "not":
        return ~a
    if op == "redxor":
        return a.reduce_xor()
    if op == "slice":
        lo = rng.randrange(a.width)
        hi = rng.randrange(lo, a.width)
        return a[lo:hi + 1]
    b = _random_expr(rng, leaves, depth - 1)
    if op == "cat":
        return cat(a, b)
    if b.width != a.width:
        return a  # width mismatch: skip combining
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "eq":
        return a.eq(b)
    if op == "lt":
        return a.lt(b)
    if op == "mux":
        sel = a if a.width == 1 else a[0]
        other = _random_expr(rng, leaves, depth - 1)
        if other.width != b.width:
            return b
        return mux(sel, b, other)
    raise AssertionError(op)


class TestBitBlastEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_combinational_designs(self, seed):
        rng = random.Random(seed)
        m = Module(f"rand{seed}")
        ports = [m.input(f"I{k}", rng.choice([1, 3, 8]))
                 for k in range(3)]
        expr = _random_expr(rng, ports, 4)
        m.output("Y", expr)
        flat = elaborate(m)
        blaster = bitblast(flat)
        bits = blaster.output_bits["Y"]
        for _ in range(16):
            values = {p.name: rng.randrange(1 << p.width) for p in ports}
            env = {flat.inputs[name]: v for name, v in values.items()}
            want = evaluate(flat.outputs["Y"], env)
            aig_values = {}
            for name, value in values.items():
                for pos, lit in enumerate(blaster.input_bits[name]):
                    aig_values[lit] = (value >> pos) & 1
            got_bits = blaster.aig.evaluate(bits, aig_values)
            got = sum(bit << pos for pos, bit in enumerate(got_bits))
            assert got == want

    def test_latches_round_trip(self):
        m = Module("seq")
        inc = m.input("GO", 1)
        r = m.reg("r", 4, reset=5)
        r.next = mux(inc, r + 1, r)
        m.output("Y", r)
        flat = elaborate(m)
        blaster = bitblast(flat)
        aig = blaster.aig
        # initial values match the reset encoding
        state = {lit: aig.latch_init[lit] for lit in aig.latches}
        value = sum(bit << pos for pos, bit in
                    enumerate(state[lit] for lit in
                              blaster.reg_bits["r"]))
        assert value == 5
        # one step with GO=1: r -> 6
        values = dict(state)
        values[blaster.input_bits["GO"][0]] = 1
        next_bits = aig.evaluate(
            [aig.latch_next[lit] for lit in blaster.reg_bits["r"]], values
        )
        assert sum(b << p for p, b in enumerate(next_bits)) == 6

    def test_bits_of_lookup(self, verifiable_leaf):
        flat = elaborate(verifiable_leaf)
        blaster = bitblast(flat)
        assert len(blaster.bits_of("I")) == 9
        assert len(blaster.bits_of("A")) == 4
        assert len(blaster.bits_of("O")) == 9
        with pytest.raises(KeyError):
            blaster.bits_of("missing")
