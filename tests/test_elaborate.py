"""Elaboration (hierarchy flattening)."""

import pytest

from repro.rtl.elaborate import elaborate
from repro.rtl.module import Module, RtlError
from repro.rtl.signals import const
from repro.sim.simulator import Simulator


def make_child():
    child = Module("child")
    a = child.input("A", 4)
    r = child.reg("r", 4)
    r.next = a
    child.output("Y", r ^ 1)
    return child


class TestFlattening:
    def test_leaf_passthrough(self):
        child = make_child()
        flat = elaborate(child)
        assert set(flat.inputs) == {"A"}
        assert [r.name for r in flat.regs] == ["r"]
        assert flat.state_bits() == 4

    def test_instance_registers_get_dotted_names(self):
        child = make_child()
        top = Module("top")
        x = top.input("X", 4)
        top.instantiate(child, "u0", A=x)
        top.instantiate(child, "u1", A=x ^ 1)
        top.output("Y0", top.instances[0]["Y"])
        top.output("Y1", top.instances[1]["Y"])
        flat = elaborate(top)
        assert sorted(r.name for r in flat.regs) == ["u0.r", "u1.r"]

    def test_two_levels_simulate_correctly(self):
        child = make_child()
        mid = Module("mid")
        mx = mid.input("X", 4)
        inst = mid.instantiate(child, "c", A=mx)
        mid.output("Y", inst["Y"] ^ 2)
        top = Module("top")
        tx = top.input("X", 4)
        minst = top.instantiate(mid, "m", X=tx)
        top.output("Y", minst["Y"])
        sim = Simulator(elaborate(top))
        sim.step({"X": 0b1010})
        outs = sim.step({"X": 0})
        # child reg held 0b1010, child output ^1, mid ^2
        assert outs["Y"] == 0b1010 ^ 1 ^ 2

    def test_sibling_dataflow(self):
        child = make_child()
        top = Module("top")
        x = top.input("X", 4)
        first = top.instantiate(child, "u0", A=x)
        second = top.instantiate(child, "u1", A=first["Y"])
        top.output("Y", second["Y"])
        flat = elaborate(top)
        assert len(flat.regs) == 2
        sim = Simulator(flat)
        sim.step({"X": 0b0011})
        sim.step({"X": 0})
        outs = sim.step({"X": 0})
        # u0 captures X, u1 captures u0.Y = X^1 one cycle later
        assert outs["Y"] == (0b0011 ^ 1) ^ 1

    def test_combinational_instance_cycle_detected(self):
        comb = Module("comb")
        a = comb.input("A", 1)
        comb.output("Y", ~a)
        top = Module("top")
        u0 = top.instantiate(comb, "u0")
        u1 = top.instantiate(comb, "u1", A=u0["Y"])
        u0.bind("A", u1["Y"])
        top.output("Y", u0["Y"])
        with pytest.raises(RtlError):
            elaborate(top)

    def test_signal_lookup_on_flat_design(self):
        child = make_child()
        top = Module("top")
        top.instantiate(child, "u0", A=top.input("X", 4))
        top.output("Y", top.instances[0]["Y"])
        flat = elaborate(top)
        assert flat.signal("u0.r").width == 4
        assert flat.signal("X").width == 4
        with pytest.raises(KeyError):
            flat.signal("r")

    def test_unread_instance_still_elaborated(self):
        child = make_child()
        top = Module("top")
        top.instantiate(child, "u0", A=top.input("X", 4))
        top.output("Y", const(0, 1), )
        flat = elaborate(top)
        assert any(r.name == "u0.r" for r in flat.regs)
