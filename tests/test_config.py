"""CampaignConfig: round-trips, spec parsing, digests, legacy mapping.

The config object's whole job is to make a campaign reproducible from
plain data, so these tests pin the properties that matter for that:
serialization round-trips are the identity, digests are stable under
key order, malformed input fails loudly (never a silent default), and
the legacy kwarg API produces the *same campaign* (byte-identical
outcome) as the config that replaces it.
"""

import dataclasses

import pytest

from repro.chip import ComponentChip
from repro.core.campaign import FormalCampaign
from repro.orchestrate import (
    CampaignConfig, CampaignOrchestrator, ConfigError, EngineConfig,
    FleetExecutor, ParallelExecutor, SerialExecutor,
    WorkStealingExecutor, parse_engines_spec, parse_executor_spec,
)
from repro.orchestrate.config import CONFIG_SCHEMA


@pytest.fixture(scope="module")
def small_blocks():
    """Two modules of block C with one seeded defect: 17 jobs, PASS
    and FAIL mixed."""
    chip = ComponentChip(defects={"B2"}, only_blocks=["C"])
    return [("C", chip.blocks[0][1][:2])]


def _config(**overrides):
    overrides.setdefault("sat_conflicts", 500_000)
    overrides.setdefault("bdd_nodes", 5_000_000)
    return CampaignConfig(**overrides)


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------

class TestExecutorSpec:
    def test_grammar(self):
        assert parse_executor_spec("serial") == ("serial", None)
        assert parse_executor_spec("parallel") == ("parallel", None)
        assert parse_executor_spec("parallel:4") == ("parallel", 4)
        assert parse_executor_spec("workstealing:2") == \
            ("work-stealing", 2)
        assert parse_executor_spec("work-stealing:2") == \
            ("work-stealing", 2)
        assert parse_executor_spec("fleet") == ("fleet", None)
        assert parse_executor_spec("fleet:4") == ("fleet", 4)

    @pytest.mark.parametrize("bad", [
        "quantum", "serial:2", "parallel:0", "parallel:-1",
        "parallel:x", "workstealing:", "", ":4",
    ])
    def test_malformed_specs_name_the_problem(self, bad):
        with pytest.raises(ConfigError, match="spec"):
            parse_executor_spec(bad)

    def test_non_string_rejected(self):
        with pytest.raises(ConfigError, match="must be a string"):
            parse_executor_spec(4)


class TestEnginesSpec:
    def test_grammar(self):
        assert parse_engines_spec("auto") == ("auto",)
        assert parse_engines_spec("kind") == ("kind",)
        assert parse_engines_spec("portfolio") == \
            ("kind", "bdd-combined", "pobdd")
        assert parse_engines_spec("portfolio:auto,kind,bdd-combined") \
            == ("auto", "kind", "bdd-combined")
        assert parse_engines_spec("portfolio: kind , pobdd ") == \
            ("kind", "pobdd")

    @pytest.mark.parametrize("bad", [
        "quantum", "portfolio:", "portfolio:,", "portfolio:quantum",
        "portfolio:kind,kind", "",
    ])
    def test_malformed_specs_name_the_problem(self, bad):
        with pytest.raises(ConfigError):
            parse_engines_spec(bad)


# ----------------------------------------------------------------------
# serialization round-trips and digests
# ----------------------------------------------------------------------

FULL = dict(
    blocks=("A", "C"), lint=False,
    engines="portfolio:kind,bdd-combined", sat_conflicts=123_456,
    bdd_nodes=None, max_bound=50, max_k=30, unique_states=False,
    num_window_vars=3,
    executor="workstealing:3", scheduling="module-affinity",
    portfolio="adaptive", share_bdd=False,
    workspace_max_managers=4, workspace_retain_memos=False,
    workspace_max_manager_nodes=100_000,
    compile_store=False, compile_max_designs=3,
    compile_max_problems=9,
    cache_path="cache.json", cache_max_entries=50,
    checkpoint_path="campaign.journal",
    fleet_port=5555, fleet_lease_timeout=12.5,
    fleet_heartbeat_interval=0.25, fleet_launcher="ssh:riga,tallinn",
)


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        for config in (CampaignConfig(), CampaignConfig(**FULL)):
            again = CampaignConfig.from_dict(config.to_dict())
            assert again == config
            assert again.digest() == config.digest()

    def test_toml_round_trip_is_identity(self):
        for config in (CampaignConfig(), CampaignConfig(**FULL)):
            again = CampaignConfig.from_toml(config.to_toml())
            assert again == config

    def test_load_from_file(self, tmp_path):
        config = CampaignConfig(**FULL)
        path = tmp_path / "campaign.toml"
        path.write_text(config.to_toml())
        assert CampaignConfig.load(str(path)) == config

    def test_example_config_parses(self):
        import pathlib
        example = pathlib.Path(__file__).parent.parent / "examples" \
            / "campaign.toml"
        config = CampaignConfig.load(str(example))
        assert config.blocks == ("C",)
        assert config.scheduling == "module-affinity"

    def test_blocks_list_coerced_to_tuple(self):
        assert CampaignConfig(blocks=["A", "B"]).blocks == ("A", "B")

    def test_none_fields_omitted_from_dict(self):
        data = CampaignConfig().to_dict()
        assert "cache" not in data
        assert "checkpoint" not in data
        assert "max_manager_nodes" not in data.get("workspace", {})


class TestDigest:
    def test_stable_under_key_order(self):
        config = CampaignConfig(**FULL)
        data = config.to_dict()
        shuffled = {
            section: dict(reversed(list(values.items())))
            for section, values in reversed(list(data.items()))
        }
        assert CampaignConfig.from_dict(shuffled).digest() == \
            config.digest()

    def test_every_field_moves_the_digest(self):
        base = CampaignConfig(**FULL)
        changed = dict(
            FULL, blocks=("A",), lint=True, engines="portfolio",
            sat_conflicts=1, bdd_nodes=2, max_bound=51, max_k=31,
            unique_states=True, num_window_vars=4, executor="serial",
            scheduling="fifo", portfolio="static", share_bdd=True,
            workspace_max_managers=5, workspace_retain_memos=True,
            workspace_max_manager_nodes=100_001,
            compile_store=True, compile_max_designs=4,
            compile_max_problems=10, cache_path="other.json",
            cache_max_entries=51, checkpoint_path="other.journal",
            fleet_port=5556, fleet_lease_timeout=13.5,
            fleet_heartbeat_interval=0.35, fleet_launcher="local",
        )
        for field in FULL:
            variant = dataclasses.replace(base, **{field: changed[field]})
            assert variant.digest() != base.digest(), field


# ----------------------------------------------------------------------
# strictness: a typo must never silently fall back to a default
# ----------------------------------------------------------------------

class TestStrictness:
    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigError, match="unknown config section"):
            CampaignConfig.from_dict({"engine": {"spec": "auto"}})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown key"):
            CampaignConfig.from_dict({"execution": {"executr": "serial"}})

    def test_invalid_toml_rejected(self):
        with pytest.raises(ConfigError, match="invalid TOML"):
            CampaignConfig.from_toml("[execution\nexecutor=")

    def test_missing_file_rejected(self):
        with pytest.raises(ConfigError, match="cannot read config"):
            CampaignConfig.load("/nonexistent/campaign.toml")

    @pytest.mark.parametrize("kwargs,match", [
        (dict(scheduling="lifo"), "scheduling"),
        (dict(portfolio="oracle"), "portfolio"),
        (dict(lint=1), "lint"),
        (dict(share_bdd="yes"), "share_bdd"),
        (dict(sat_conflicts=-1), "sat_conflicts"),
        (dict(cache_max_entries=0), "cache_max_entries"),
        (dict(max_k=0), "max_k"),
        (dict(cache_path=7), "cache_path"),
        (dict(blocks=("A", 3)), "blocks"),
        (dict(blocks="CE"), "bare string"),
        (dict(fleet_port=-1), "fleet_port"),
        (dict(fleet_port=70_000), "fleet_port"),
        (dict(fleet_port="x"), "fleet_port"),
        (dict(fleet_lease_timeout=0), "fleet_lease_timeout"),
        (dict(fleet_heartbeat_interval=-1.0),
         "fleet_heartbeat_interval"),
        (dict(fleet_launcher="rsh:a"), "launcher"),
        (dict(fleet_launcher="ssh:"), "launcher"),
    ])
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            CampaignConfig(**kwargs)

    def test_schema_covers_every_field(self):
        mapped = sorted(
            field for keys in CONFIG_SCHEMA.values()
            for field in keys.values()
        )
        declared = sorted(
            field.name for field in dataclasses.fields(CampaignConfig)
        )
        assert mapped == declared


# ----------------------------------------------------------------------
# component builders
# ----------------------------------------------------------------------

class TestBuilders:
    def test_default_engines_match_legacy_default(self):
        assert CampaignConfig().build_engines() == \
            CampaignOrchestrator.DEFAULT_ENGINES

    def test_engine_knobs_reach_every_stage(self):
        engines = _config(engines="portfolio:kind,pobdd",
                          max_k=17, num_window_vars=3).build_engines()
        assert [config.method for config in engines] == ["kind", "pobdd"]
        for config in engines:
            assert isinstance(config, EngineConfig)
            assert config.max_k == 17
            assert config.num_window_vars == 3
            assert config.sat_conflicts == 500_000

    def test_executor_kinds(self):
        assert isinstance(_config().build_executor(), SerialExecutor)
        parallel = _config(executor="parallel:3").build_executor()
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.processes == 3
        stealing = _config(executor="workstealing:2",
                           scheduling="module-affinity").build_executor()
        assert isinstance(stealing, WorkStealingExecutor)
        assert stealing.processes == 2
        assert stealing.scheduling.name == "module-affinity"
        fleet = _config(executor="fleet:2", fleet_port=7777,
                        fleet_lease_timeout=12.5,
                        fleet_heartbeat_interval=0.25,
                        scheduling="module-affinity").build_executor()
        assert isinstance(fleet, FleetExecutor)
        assert fleet.workers == 2
        assert fleet.port == 7777
        assert fleet.lease_timeout == 12.5
        assert fleet.heartbeat_interval == 0.25
        assert fleet.scheduling.name == "module-affinity"

    def test_share_bdd_default_on_with_escape_hatch(self):
        """The campaign default is shared BDD workspaces; the config
        keeps an explicit off switch."""
        assert CampaignConfig().share_bdd is True
        assert _config().build_executor().workspace is not None
        off = _config(share_bdd=False).build_executor()
        assert off.workspace is None
        pool = _config(share_bdd=False,
                       executor="workstealing:2").build_executor()
        assert pool.share_bdd is False

    def test_workspace_valves_forwarded(self):
        executor = _config(executor="parallel:2",
                           workspace_max_managers=3,
                           workspace_retain_memos=False).build_executor()
        assert executor.workspace_options["max_managers"] == 3
        assert executor.workspace_options["retain_memos"] is False

    def test_cache_and_checkpoint(self, tmp_path):
        config = _config(cache_path=str(tmp_path / "cache.json"),
                         cache_max_entries=9,
                         checkpoint_path=str(tmp_path / "j.journal"))
        cache = config.build_cache()
        assert cache is not None and cache.max_entries == 9
        assert config.build_checkpoint() is not None
        assert CampaignConfig().build_cache() is None
        assert CampaignConfig().build_checkpoint() is None


# ----------------------------------------------------------------------
# the acceptance criterion: one config, one campaign — whatever the
# executor, and round-tripped through serialization
# ----------------------------------------------------------------------

class TestConfigDrivenCampaign:
    @pytest.mark.parametrize("executor_spec", [
        "serial", "parallel:2", "workstealing:2",
    ])
    def test_round_tripped_config_reproduces_campaign(
            self, small_blocks, executor_spec):
        config = _config(executor=executor_spec,
                         engines="portfolio:kind,bdd-combined")
        reference = CampaignOrchestrator(
            small_blocks, config=config).run()
        revived = CampaignConfig.from_dict(config.to_dict())
        again = CampaignOrchestrator(small_blocks, config=revived).run()
        assert again.canonical_bytes() == reference.canonical_bytes()
        assert again.stats["config_digest"] == \
            reference.stats["config_digest"]

    def test_report_stamped_with_config_digest(self, small_blocks):
        config = _config()
        report = CampaignOrchestrator(small_blocks, config=config).run()
        assert report.stats["config_digest"] == config.digest()

    def test_component_override_wins_over_config(self, small_blocks):
        config = _config(executor="workstealing:2")
        orchestrator = CampaignOrchestrator(
            small_blocks, config=config, executor=SerialExecutor()
        )
        assert isinstance(orchestrator.executor, SerialExecutor)

    def test_overrides_recorded_in_stats(self, small_blocks):
        """A stamped digest must not be mistaken for the whole story
        when component objects replaced the config's specs."""
        pure = CampaignOrchestrator(small_blocks, config=_config()).run()
        assert pure.stats["config_overrides"] == []
        overridden = CampaignOrchestrator(
            small_blocks, config=_config(),
            executor=SerialExecutor(), engines=_config().build_engines(),
        ).run()
        assert overridden.stats["config_overrides"] == \
            ["engines", "executor"]

    def test_scope_mismatch_recorded_as_override(self, small_blocks):
        """A config naming blocks ('C',) run over some other scope must
        not claim the digest fully describes the run."""
        config = _config(blocks=("C",))
        matching = CampaignOrchestrator(small_blocks, config=config)
        assert "blocks" not in matching.config_overrides
        mismatched = CampaignOrchestrator(
            [("X", small_blocks[0][1])], config=config)
        assert "blocks" in mismatched.config_overrides


# ----------------------------------------------------------------------
# legacy kwargs: accepted, mapped, soft-deprecated — same campaign
# ----------------------------------------------------------------------

class TestLegacyMapping:
    def test_legacy_kwargs_equal_config_campaign(self, small_blocks):
        from repro.formal.budget import ResourceBudget
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = FormalCampaign(
                small_blocks, method="kind", max_k=30,
                budget_factory=lambda: ResourceBudget(
                    sat_conflicts=500_000, bdd_nodes=5_000_000),
            )
        configured = FormalCampaign(
            small_blocks,
            config=CampaignConfig(engines="kind", max_k=30,
                                  sat_conflicts=500_000,
                                  bdd_nodes=5_000_000),
        )
        assert legacy.config == configured.config
        assert legacy.run().canonical_bytes() == \
            configured.run().canonical_bytes()

    def test_facade_defaults_share_config_defaults(self, small_blocks):
        campaign = FormalCampaign(small_blocks)
        assert campaign.config == CampaignConfig()

    def test_engines_tuple_still_accepted(self, small_blocks):
        engines = (EngineConfig(method="kind", sat_conflicts=500_000,
                                bdd_nodes=5_000_000),)
        report = FormalCampaign(small_blocks, engines=engines).run()
        assert report.stats["engines"] == ["kind"]
