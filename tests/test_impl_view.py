"""Implementation-scale synthesis views (the Table 4 substrate)."""

import pytest

from repro.chip.impl_view import (
    TABLE4_LANES, TABLE4_PAPER, synthesis_view, table4_modules,
)
from repro.chip.library import canonical_leaf
from repro.rtl.elaborate import elaborate
from repro.rtl.inject import make_verifiable
from repro.rtl.parity import value_ok
from repro.sim.simulator import Simulator
from repro.sim.stimulus import IntegrityStimulus
from repro.synth.area import AreaReport


class TestSynthesisView:
    def test_even_lane_count_required(self):
        with pytest.raises(ValueError):
            synthesis_view(canonical_leaf(), lanes=3)

    def test_view_grows_area_not_state(self):
        base = canonical_leaf()
        view = synthesis_view(base, lanes=4)
        base_area = AreaReport.of_module(base).gate_equivalents
        view_area = AreaReport.of_module(view).gate_equivalents
        assert view_area > 3 * base_area
        assert elaborate(view).state_bits() == \
            elaborate(base).state_bits()

    def test_view_preserves_output_parity(self):
        """The lanes fold back in parity-neutral pairs, so the view's
        protected outputs still carry odd parity under legal traffic."""
        view = make_verifiable(synthesis_view(canonical_leaf(), lanes=4))
        sim = Simulator(elaborate(view))
        stim = IntegrityStimulus(view, seed=5)
        for vector in stim.vectors(50):
            outs = sim.step(vector)
            assert value_ok(outs["O"])

    def test_view_keeps_entities(self):
        base = canonical_leaf()
        view = synthesis_view(base, lanes=4)
        assert [e.name for e in view.integrity.entities] == \
            [e.name for e in base.integrity.entities]

    def test_table4_modules_shape(self):
        views = table4_modules()
        assert set(views) == set(TABLE4_LANES) == set(TABLE4_PAPER)
        for block, (base, verifiable) in views.items():
            assert base.attrs.get("synthesis_view")
            assert verifiable.integrity.ec_port is not None
