"""CDCL SAT solver: fuzz against brute force, assumptions, budget."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.formal.budget import BudgetExceeded, ResourceBudget
from repro.formal.sat import Solver


def brute_force(num_vars, clauses):
    for bits in itertools.product([0, 1], repeat=num_vars):
        if all(any((bits[l >> 1] ^ (l & 1)) == 1 for l in clause)
               for clause in clauses):
            return True
    return False


def random_instance(rng, max_vars=8, max_clauses=35):
    n = rng.randint(1, max_vars)
    clauses = [
        [rng.randrange(2 * n) for _ in range(rng.randint(1, 4))]
        for _ in range(rng.randint(1, max_clauses))
    ]
    return n, clauses


def solve_instance(n, clauses):
    solver = Solver()
    for _ in range(n):
        solver.new_var()
    for clause in clauses:
        if not solver.add_clause(clause):
            return solver, False
    return solver, solver.solve()


class TestFuzz:
    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_with_brute_force(self, seed):
        rng = random.Random(seed * 31 + 1)
        for _ in range(60):
            n, clauses = random_instance(rng)
            solver, got = solve_instance(n, clauses)
            assert got == brute_force(n, clauses)
            if got:
                for clause in clauses:
                    assert any(solver.value_of(lit) for lit in clause)

    @pytest.mark.parametrize("seed", range(6))
    def test_incremental_assumptions_agree(self, seed):
        """solve(assumptions) must equal solving with the assumptions
        added as unit clauses to a fresh solver."""
        rng = random.Random(seed * 17 + 3)
        for _ in range(30):
            n, clauses = random_instance(rng, max_vars=6)
            solver = Solver()
            for _ in range(n):
                solver.new_var()
            ok = all(solver.add_clause(c) for c in clauses)
            for trial in range(4):
                assumptions = [rng.randrange(2 * n)
                               for _ in range(rng.randint(0, 3))]
                got = solver.solve(assumptions) if ok else False
                want = brute_force(
                    n, clauses + [[lit] for lit in assumptions]
                ) if ok else False
                assert got == want, (n, clauses, assumptions)


class TestApi:
    def test_tautology_and_duplicates(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([2 * a, 2 * a + 1])   # tautology dropped
        assert s.add_clause([2 * a, 2 * a])       # duplicate literal
        assert s.solve() is True

    def test_empty_clause_unsat(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([2 * a])
        assert not s.add_clause([2 * a + 1])
        assert s.solve() is False

    def test_unknown_variable_rejected(self):
        s = Solver()
        with pytest.raises(ValueError):
            s.add_clause([0])

    def test_solve_repeatable(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([2 * a, 2 * b])
        assert s.solve() is True
        assert s.solve([2 * a + 1]) is True
        assert s.value_of(2 * b) == 1
        assert s.solve([2 * a + 1, 2 * b + 1]) is False
        assert s.solve() is True

    def test_budget_exhaustion_raises(self):
        """PHP(6,5) forces a non-trivial amount of search; a tiny
        conflict budget must trip."""
        pigeons, holes = 6, 5
        solver = Solver(ResourceBudget(sat_conflicts=3))
        var = [[solver.new_var() for _ in range(holes)]
               for _ in range(pigeons)]
        for p in range(pigeons):
            solver.add_clause([2 * var[p][h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([2 * var[p1][h] + 1,
                                       2 * var[p2][h] + 1])
        with pytest.raises(BudgetExceeded):
            solver.solve()

    def test_luby_prefix(self):
        want = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [Solver._luby(i) for i in range(15)] == want


class TestStructuredInstances:
    def test_pigeonhole_3_into_2_unsat(self):
        """PHP(3,2): three pigeons, two holes — classically UNSAT."""
        s = Solver()
        var = [[s.new_var() for _ in range(2)] for _ in range(3)]
        for pigeon in range(3):
            s.add_clause([2 * var[pigeon][h] for h in range(2)])
        for hole in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    s.add_clause([2 * var[p1][hole] + 1,
                                  2 * var[p2][hole] + 1])
        assert s.solve() is False

    def test_xor_chain_sat(self):
        """x0 ^ x1 ^ ... ^ x7 = 1 encoded clausally."""
        s = Solver()
        xs = [s.new_var() for _ in range(8)]
        # pairwise chain with auxiliaries
        acc = xs[0]
        for x in xs[1:]:
            out = s.new_var()
            a, b, y = 2 * acc, 2 * x, 2 * out
            s.add_clause([y ^ 1, a, b])
            s.add_clause([y ^ 1, a ^ 1, b ^ 1])
            s.add_clause([y, a ^ 1, b])
            s.add_clause([y, a, b ^ 1])
            acc = out
        s.add_clause([2 * acc])
        assert s.solve() is True
        model_parity = sum(s.value_of(2 * x) for x in xs) % 2
        assert model_parity == 1


class TestIncrementalFuzz:
    """Randomized incremental workloads — the access pattern shared SAT
    sessions lean on: interleaved ``add_clause``/``solve`` with
    assumptions, verdicts *and* models checked against brute force at
    every step, up to 12 variables."""

    @pytest.mark.parametrize("seed", range(10))
    def test_interleaved_adds_and_solves(self, seed):
        rng = random.Random(seed * 101 + 7)
        for _ in range(12):
            n = rng.randint(2, 12)
            solver = Solver()
            for _ in range(n):
                solver.new_var()
            clauses, ok = [], True
            for _round in range(rng.randint(2, 6)):
                for _ in range(rng.randint(1, 8)):
                    clause = [rng.randrange(2 * n)
                              for _ in range(rng.randint(1, 4))]
                    clauses.append(clause)
                    if not solver.add_clause(clause):
                        ok = False
                assumptions = [rng.randrange(2 * n)
                               for _ in range(rng.randint(0, 3))]
                got = solver.solve(assumptions) if ok else False
                want = brute_force(
                    n, clauses + [[lit] for lit in assumptions]
                ) if ok else False
                assert got == want, (n, clauses, assumptions)
                if got:
                    # the model must satisfy every clause AND every
                    # assumption, not just report the right verdict
                    for clause in clauses:
                        assert any(solver.value_of(lit)
                                   for lit in clause)
                    for lit in assumptions:
                        assert solver.value_of(lit) == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_learned_clauses_never_change_verdicts(self, seed):
        """Solving the same instance repeatedly (the learned DB grows
        between calls) must keep agreeing with a fresh solver."""
        rng = random.Random(seed * 13 + 5)
        for _ in range(10):
            n, clauses = random_instance(rng, max_vars=10,
                                         max_clauses=45)
            solver, first = solve_instance(n, clauses)
            want = brute_force(n, clauses)
            assert first == want
            for _ in range(3):
                assert solver.solve() == want


class TestWarmStateApi:
    def test_rearm_swaps_budget(self):
        """A session-style solver: exhaust a tiny budget, ``rearm``
        with a generous one, and the same instance completes."""
        pigeons, holes = 6, 5
        solver = Solver(ResourceBudget(sat_conflicts=3))
        var = [[solver.new_var() for _ in range(holes)]
               for _ in range(pigeons)]
        for p in range(pigeons):
            solver.add_clause([2 * var[p][h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([2 * var[p1][h] + 1,
                                       2 * var[p2][h] + 1])
        with pytest.raises(BudgetExceeded):
            solver.solve()
        solver.rearm(ResourceBudget(sat_conflicts=500_000))
        assert solver.solve() is False

    def test_stats_snapshot_and_delta(self):
        from repro.formal.sat import stats_delta
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([2 * a, 2 * b])
        before = solver.stats_snapshot()
        assert solver.solve([2 * a + 1]) is True
        after = solver.stats_snapshot()
        delta = stats_delta(before, after)
        for key in ("conflicts", "decisions", "propagations",
                    "restarts", "learned"):
            assert key in delta and delta[key] >= 0
        # learned_db is a gauge, not a counter: carried absolute
        assert delta["learned_db"] == after["learned_db"]

    def test_num_clauses_counts_stored_and_learned(self):
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([2 * a, 2 * b])  # stored
        solver.add_clause([2 * a])         # unit: assigned, not stored
        assert solver.num_clauses() == 1
