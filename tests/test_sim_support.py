"""Stimulus generation, testbench monitors, and coverage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chip.library import canonical_leaf
from repro.rtl.elaborate import elaborate
from repro.rtl.inject import EC_PORT, ED_PORT, make_verifiable
from repro.rtl.parity import corrupt, encode_value, value_ok
from repro.sim.coverage import CheckpointCoverage, ToggleCoverage
from repro.sim.stimulus import DirectedSequence, IntegrityStimulus
from repro.sim.testbench import (
    HeMonitor, OutputParityMonitor, Testbench,
)


@pytest.fixture
def module():
    return make_verifiable(canonical_leaf())


class TestIntegrityStimulus:
    def test_protected_inputs_carry_parity(self, module):
        stim = IntegrityStimulus(module, seed=1)
        for vector in stim.vectors(200):
            assert value_ok(vector["I"])

    def test_injection_held_at_zero(self, module):
        stim = IntegrityStimulus(module, seed=2)
        for vector in stim.vectors(50):
            assert vector[EC_PORT] == 0
            assert vector[ED_PORT] == 0

    def test_pinning_overrides(self, module):
        stim = IntegrityStimulus(module, seed=3, pinned={"I": 0x1FF})
        assert all(v["I"] == 0x1FF for v in stim.vectors(10))

    def test_deterministic_by_seed(self, module):
        first = list(IntegrityStimulus(module, seed=7).vectors(20))
        second = list(IntegrityStimulus(module, seed=7).vectors(20))
        assert first == second
        third = list(IntegrityStimulus(module, seed=8).vectors(20))
        assert first != third

    def test_requires_spec(self):
        from repro.rtl.module import Module
        bare = Module("bare")
        bare.output("Y", bare.input("A", 4))
        with pytest.raises(ValueError):
            IntegrityStimulus(bare)

    def test_directed_sequence(self):
        seq = DirectedSequence([{"I": 1}, {"I": 2}])
        assert len(seq) == 2
        assert list(seq) == [{"I": 1}, {"I": 2}]


class TestTestbench:
    def test_clean_on_golden_module(self, module):
        bench = Testbench.for_module(module, elaborate(module))
        stim = IntegrityStimulus(module, seed=11)
        violations = bench.run(stim.vectors(300))
        assert violations == [] and bench.clean

    def test_he_monitor_fires_on_bad_input(self, module):
        bench = Testbench.for_module(module, elaborate(module))
        bad_word = corrupt(encode_value(0x42, 8), 3)
        bench.run([{"I": bad_word, EC_PORT: 0, ED_PORT: 0},
                   {"I": encode_value(0, 8), EC_PORT: 0, ED_PORT: 0}])
        assert not bench.clean
        assert any(v.monitor == "HE" for v in bench.violations)

    def test_stop_on_violation(self, module):
        bench = Testbench.for_module(module, elaborate(module))
        bad_word = corrupt(encode_value(0x42, 8), 3)
        vectors = [{"I": bad_word}] * 10
        bench.run(vectors, stop_on_violation=True)
        assert len(bench.violations) == 1

    def test_output_parity_monitor(self):
        groups = [__import__("repro.rtl.integrity", fromlist=["ParityGroup"])
                  .ParityGroup("O")]
        monitor = OutputParityMonitor(groups, {"O": 9})
        good = encode_value(0x10, 8)
        assert monitor.observe(0, {}, {"O": good}, {}) is None
        assert monitor.observe(0, {}, {"O": corrupt(good, 0)}, {})


class TestCoverage:
    def test_toggle_coverage(self):
        cov = ToggleCoverage()
        widths = {"x": 2}
        cov.sample({"x": 0b00}, widths)
        cov.sample({"x": 0b11}, widths)
        cov.sample({"x": 0b00}, widths)
        assert cov.ratio() == 1.0

    def test_toggle_partial(self):
        cov = ToggleCoverage()
        widths = {"x": 2}
        cov.sample({"x": 0b00}, widths)
        cov.sample({"x": 0b01}, widths)   # bit0 rose, never fell... yet
        assert cov.ratio() == 0.0
        cov.sample({"x": 0b00}, widths)
        assert cov.ratio() == 0.5

    def test_checkpoint_coverage(self):
        cov = CheckpointCoverage(["a", "b"])
        cov.sample({"a": 1, "b": 7})
        cov.sample({"a": 2, "b": 7})
        assert cov.exercised() == {"a": True, "b": False}
        assert cov.ratio() == 0.5

    def test_empty_coverage(self):
        assert ToggleCoverage().ratio() == 0.0
        assert CheckpointCoverage([]).ratio() == 0.0
