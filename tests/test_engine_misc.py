"""Engine front-end corners: auto fallback, never-assumptions,
campaign timeout accounting."""

import pytest

from repro.core.campaign import FormalCampaign
from repro.formal.budget import ResourceBudget
from repro.formal.engine import (
    FAIL, PASS, TIMEOUT, UNKNOWN, CheckResult, ModelChecker,
)
from repro.psl.compile import compile_assertion
from repro.psl.parser import parse_vunit
from repro.rtl.module import Module
from repro.rtl.signals import Const, const, mux


def modular_counter_problem():
    """bad = (r == 7) on a counter that skips 6 and 7: unreachable, but
    not 0-inductive (state 6 satisfies the hypothesis and steps to 7),
    so a k=0 induction attempt must give up."""
    m = Module("m")
    r = m.reg("r", 4, reset=0)
    r.next = mux(r.eq(const(5, 4)), const(8, 4), r + 1)
    m.output("BAD", r.eq(const(7, 4)))
    unit = parse_vunit(
        "vunit v (m) { property p = never ( BAD ); assert p; }"
    )
    return compile_assertion(m, unit, "p")


class TestAutoFallback:
    def test_auto_uses_bdd_when_induction_gives_up(self):
        """With max_k=0 induction cannot conclude; auto must fall back
        to the BDD traversal and still prove the property."""
        ts = modular_counter_problem()
        budget = ResourceBudget(sat_conflicts=100_000,
                                bdd_nodes=1_000_000)
        result = ModelChecker(ts, budget).check(method="auto", max_k=0)
        assert result.status == PASS
        assert result.engine == "auto:bdd-combined"

    def test_auto_reports_kind_when_it_succeeds(self):
        ts = modular_counter_problem()
        result = ModelChecker(ts).check(method="auto", max_k=20)
        assert result.status == PASS
        assert result.engine == "auto:kind"


class TestCheckResult:
    def test_flags(self):
        passed = CheckResult("p", PASS, "kind")
        assert passed.passed and not passed.failed
        failed = CheckResult("p", FAIL, "bmc")
        assert failed.failed and not failed.timed_out
        timed = CheckResult("p", TIMEOUT, "bdd-forward")
        assert timed.timed_out
        assert "PASS" in repr(passed)


class TestNeverAssumption:
    def test_never_as_assume(self):
        m = Module("m")
        go = m.input("GO", 1)
        r = m.reg("r", 2, reset=0)
        r.next = mux(go, r + 1, r)
        m.output("BAD", r.eq(Const(2, 2)))
        unit = parse_vunit("""
        vunit v (m) {
            property pStay = never ( GO );
            assume pStay;
            property p = never ( BAD );
            assert p;
        }
        """)
        ts = compile_assertion(m, unit, "p")
        assert ModelChecker(ts).check(method="bdd-forward").status == PASS


class TestCampaignTimeouts:
    def test_timeout_recorded_not_crashed(self):
        """A campaign with an absurdly tight budget records TIMEOUTs and
        keeps going."""
        from repro.chip.library import canonical_leaf
        from repro.rtl.inject import make_verifiable
        module = make_verifiable(canonical_leaf())
        campaign = FormalCampaign(
            [("X", [module])],
            budget_factory=lambda: ResourceBudget(sat_conflicts=0,
                                                  bdd_nodes=50),
        )
        report = campaign.run()
        assert report.total_properties == 5
        assert not report.all_passed
        assert len(report.by_status(TIMEOUT)) > 0
        # Table-2 accounting still counts the attempted properties
        assert report.blocks["X"].total == 5

    def test_progress_callback(self):
        from repro.chip.library import canonical_leaf
        from repro.rtl.inject import make_verifiable
        module = make_verifiable(canonical_leaf())
        seen = []
        campaign = FormalCampaign([("X", [module])])
        campaign.run(progress=seen.append)
        assert len(seen) == 5
        assert all(":" in line for line in seen)
