"""PSL front-end: lexer/parser, emitter round-trip, and monitor
compilation semantics (checked against simulation)."""

import pytest

from repro.psl.ast import (
    Always, AndB, Implication, Literal, Name, Never, Next, NotB, OrB,
    PslError, RedXor, VUnit, XorB,
)
from repro.psl.compile import compile_assertion
from repro.psl.parser import parse_bool, parse_property, parse_vunit, parse_vunits
from repro.rtl.elaborate import elaborate
from repro.rtl.module import Module
from repro.rtl.signals import evaluate


class TestParser:
    def test_paper_figure2(self):
        """The M_edetect vunit of Figure 2, verbatim structure."""
        unit = parse_vunit("""
        vunit M_edetect (M) { // check error detection ability
            property pCheck1 = always ((EC & ~(^ED)) -> next HE);
            assert   pCheck1;  //   -- check it formally!
            property pCheck2 = always ( ~(^I) -> next HE);
            assert   pCheck2;  //   -- check it formally!
        }
        """)
        assert unit.name == "M_edetect"
        assert unit.module_name == "M"
        assert unit.comment == "check error detection ability"
        assert [name for name, _ in unit.asserted()] == ["pCheck1",
                                                         "pCheck2"]
        check1 = unit.property_named("pCheck1")
        assert isinstance(check1, Always)
        assert isinstance(check1.inner, Implication)
        assert isinstance(check1.inner.consequent, Next)

    def test_paper_figure3(self):
        """The M_soundness vunit of Figure 3: assumes then assert."""
        unit = parse_vunit("""
        vunit M_soundness (M) { // soundness check
            property pIntegrityI     = always ( ^I );
            assume   pIntegrityI;
            property pNoErrInjection = always ( ~EC );
            assume   pNoErrInjection;
            property pNoError        = never  ( HE );
            assert   pNoError;
        }
        """)
        assert len(unit.assumed()) == 2
        assert len(unit.asserted()) == 1
        assert isinstance(unit.property_named("pNoError"), Never)

    def test_precedence(self):
        expr = parse_bool("a | b & c")
        assert isinstance(expr, OrB)
        assert isinstance(expr.right, AndB)
        expr = parse_bool("~a & b")
        assert isinstance(expr, AndB)
        assert isinstance(expr.left, NotB)

    def test_prefix_vs_infix_xor(self):
        reduction = parse_bool("^ED")
        assert isinstance(reduction, RedXor)
        binary = parse_bool("a ^ b")
        assert isinstance(binary, XorB)
        mixed = parse_bool("a ^ ^b")
        assert isinstance(mixed, XorB)
        assert isinstance(mixed.right, RedXor)

    def test_selects(self):
        bit = parse_bool("EC[3]")
        assert bit == Name("EC", 3)
        part = parse_bool("ED[7:0]")
        assert part == Name("ED", 7, 0)

    def test_bool_at_property_level_is_invariant(self):
        prop = parse_property("^O")
        assert isinstance(prop, Always)

    def test_literals(self):
        assert parse_bool("1") == Literal(1)

    def test_errors(self):
        with pytest.raises(PslError):
            parse_vunit("vunit broken (M) { assert missing; }")
        with pytest.raises(PslError):
            parse_bool("a &")
        with pytest.raises(PslError):
            parse_bool("a $$ b")
        with pytest.raises(PslError):
            parse_vunit("vunit u (M) { property p = always (a); }junk")

    def test_multiple_vunits(self):
        units = parse_vunits("""
        vunit u1 (M) { property p = always (a); assert p; }
        vunit u2 (M) { property q = never (b); assert q; }
        """)
        assert [u.name for u in units] == ["u1", "u2"]


class TestRoundTrip:
    CASES = [
        "always ((EC & ~(^ED)) -> next HE)",
        "never ( HE )",
        "always ( ^I )",
        "always ( ~(^I) -> next HE )",
        "always ( RDY -> ^M_DATA )",
        "always ( a | b & ~c )",
        "always ( EC[0] & ~(^ED[3:0]) -> next HE )",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_parse_emit_parse_fixpoint(self, source):
        first = parse_property(source)
        second = parse_property(first.emit())
        assert first == second
        assert second.emit() == first.emit()

    def test_vunit_emit_round_trip(self):
        unit = VUnit("M_soundness", "M", comment="soundness check")
        unit.declare("pIntegrityI", Always(RedXor(Name("I"))))
        unit.assume("pIntegrityI")
        unit.declare("pNoError", Never(Name("HE")))
        unit.assert_("pNoError")
        text = unit.emit()
        parsed = parse_vunit(text)
        assert parsed.name == unit.name
        assert parsed.directives == unit.directives
        for decl in unit.declarations:
            assert parsed.property_named(decl.name) == decl.prop


class TestVUnitApi:
    def test_duplicate_property_rejected(self):
        unit = VUnit("u", "M")
        unit.declare("p", Always(Name("a")))
        with pytest.raises(PslError):
            unit.declare("p", Never(Name("a")))

    def test_directive_requires_declaration(self):
        unit = VUnit("u", "M")
        with pytest.raises(PslError):
            unit.assert_("missing")


def _monitored_design():
    """req/ack module used to check monitor timing."""
    m = Module("m")
    req = m.input("REQ", 1)
    ack = m.input("ACK", 1)
    m.output("BOTH", req & ack)
    return m


class TestCompilation:
    def test_always_bool_violation_is_immediate(self):
        m = _monitored_design()
        unit = parse_vunit(
            "vunit u (m) { property p = always ( ~BOTH ); assert p; }"
        )
        ts = compile_assertion(m, unit, "p")
        state = ts.initial_state()
        _, bad, _ = ts.evaluate_step(state, _input_env(ts, REQ=1, ACK=1))
        assert bad == 1
        _, bad, _ = ts.evaluate_step(state, _input_env(ts, REQ=1, ACK=0))
        assert bad == 0

    def test_next_monitor_delays_obligation(self):
        m = _monitored_design()
        unit = parse_vunit(
            "vunit u (m) { property p = always ( REQ -> next ACK ); "
            "assert p; }"
        )
        ts = compile_assertion(m, unit, "p")
        state = ts.initial_state()
        # cycle 0: REQ with no ACK — obligation starts, no violation yet
        state, bad, _ = ts.evaluate_step(state, _input_env(ts, REQ=1,
                                                           ACK=0))
        assert bad == 0
        # cycle 1: ACK low — violation fires now
        _, bad, _ = ts.evaluate_step(state, _input_env(ts, REQ=0, ACK=0))
        assert bad == 1
        # alternate world: ACK high — satisfied
        _, bad, _ = ts.evaluate_step(state, _input_env(ts, REQ=0, ACK=1))
        assert bad == 0

    def test_assumes_form_constraint(self):
        m = _monitored_design()
        unit = parse_vunit("""
        vunit u (m) {
            property pNoReq = always ( ~REQ );
            assume pNoReq;
            property p = always ( ~BOTH );
            assert p;
        }
        """)
        ts = compile_assertion(m, unit, "p")
        state = ts.initial_state()
        _, _, cons = ts.evaluate_step(state, _input_env(ts, REQ=1, ACK=0))
        assert cons == 0
        _, _, cons = ts.evaluate_step(state, _input_env(ts, REQ=0, ACK=1))
        assert cons == 1

    def test_unknown_signal_rejected(self):
        m = _monitored_design()
        unit = parse_vunit(
            "vunit u (m) { property p = always ( NOPE ); assert p; }"
        )
        with pytest.raises(PslError):
            compile_assertion(m, unit, "p")

    def test_unasserted_property_rejected(self):
        m = _monitored_design()
        unit = parse_vunit(
            "vunit u (m) { property p = always ( ~BOTH ); assert p; "
            "property q = always ( REQ ); }"
        )
        with pytest.raises(PslError):
            compile_assertion(m, unit, "q")

    def test_multibit_name_is_nonzero_check(self):
        m = Module("m")
        bus = m.input("BUS", 4)
        m.output("Y", bus)
        unit = parse_vunit(
            "vunit u (m) { property p = always ( ~BUS ); assert p; }"
        )
        ts = compile_assertion(m, unit, "p")
        _, bad, _ = ts.evaluate_step(ts.initial_state(),
                                     _input_env(ts, BUS=0))
        assert bad == 0
        _, bad, _ = ts.evaluate_step(ts.initial_state(),
                                     _input_env(ts, BUS=3))
        assert bad == 1


def _input_env(ts, **words):
    """Map word-level input values onto AIG input literals."""
    blaster = ts.blaster
    env = {}
    for name, value in words.items():
        for pos, lit in enumerate(blaster.input_bits[name]):
            env[lit] = (value >> pos) & 1
    return env
