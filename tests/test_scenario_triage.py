"""Sim-then-formal triage: the directional soundness cross-check
(sim FAIL implies formal FAIL) and the formal replay of simulation
counterexamples."""

import pytest

from repro.chip.defects import (
    DROPPED_ERROR_FLAG, STUCK_PARITY, WRONG_ROTATE, DefectSite,
)
from repro.rtl.inject import make_verifiable
from repro.scenario import FamilySpec, run_sweep
from repro.scenario.mutate import SIM_VISIBLE, apply_defect
from repro.scenario.triage import (
    replay_violation, sim_screen, trace_from_vectors,
)
from repro.sim.campaign import SimulationCampaign

TRIAGE_SPEC = FamilySpec(blocks=1, modules_per_block=2,
                         datapath_width=4, pipeline_depth=1,
                         error_report_width=2)


@pytest.fixture(scope="module")
def triaged():
    record, report = run_sweep(TRIAGE_SPEC, triage=True, sim_cycles=128)
    return record, report


class TestSimFormalAgreement:
    def test_sim_fail_implies_formal_fail(self, triaged):
        record, _ = triaged
        triage = record["triage"]
        detected = {row["site"] for row in record["mutants"]
                    if row["detected"]}
        assert set(triage["screened"]) <= detected
        assert triage["formal_confirms_sim"]
        assert triage["disagreements"] == []

    def test_formal_only_class_is_invisible_to_simulation(self, triaged):
        record, _ = triaged
        screened = set(record["triage"]["screened"])
        dropped = {row["site"] for row in record["mutants"]
                   if row["class"] == DROPPED_ERROR_FLAG}
        assert dropped
        assert not dropped & screened
        # ...yet formal kills every one of them, via P0
        for row in record["mutants"]:
            if row["class"] == DROPPED_ERROR_FLAG:
                assert row["detected"]
                assert row["failing_categories"] == ["P0"]

    def test_screened_mutants_are_sim_visible_classes(self, triaged):
        record, _ = triaged
        for site_id in record["triage"]["screened"]:
            assert SIM_VISIBLE[DefectSite.parse(site_id).defect_class]

    def test_every_sim_counterexample_replays_formally(self, triaged):
        record, _ = triaged
        replayed = record["triage"]["replayed"]
        assert set(replayed) == set(record["triage"]["screened"])
        for site_id, qualified in replayed.items():
            assert qualified is not None, site_id
            site = DefectSite.parse(site_id)
            vunit_name, _, assert_name = qualified.partition(".")
            assert vunit_name.startswith(site.module_name)
            if site.defect_class == STUCK_PARITY:
                assert assert_name.startswith("pNoError_")
            else:
                assert assert_name.startswith("pIntegrityO_")


class TestReplayMechanics:
    def test_replay_violation_direct(self, leaf):
        site = DefectSite(WRONG_ROTATE, leaf.name, "O")
        mutant = make_verifiable(apply_defect(leaf, site))
        results = sim_screen([(site.site_id, mutant)], cycles=512)
        result = results[site.site_id]
        assert result.found_bug
        assert len(result.stimulus) == result.cycles_run
        qualified = replay_violation(mutant, result.violations[0],
                                     result.stimulus)
        assert qualified == f"{leaf.name}_integrity.pIntegrityO_O_0"

    def test_replay_requires_real_violation(self, verifiable_leaf):
        """A clean module's traffic replays no counterexample."""
        results = sim_screen([("clean", verifiable_leaf)], cycles=64)
        result = results["clean"]
        assert not result.found_bug

    def test_trace_from_vectors_matches_simulation(self, leaf):
        """The converted trace drives the same input words the
        simulator applied (ports outside the cone are dropped)."""
        from repro.core.stereotypes import integrity_vunit
        from repro.psl.compile import compile_assertion

        site = DefectSite(WRONG_ROTATE, leaf.name, "O")
        mutant = make_verifiable(apply_defect(leaf, site))
        results = sim_screen([(site.site_id, mutant)], cycles=512)
        result = results[site.site_id]
        vunit = integrity_vunit(mutant)
        ts = compile_assertion(mutant, vunit, "pIntegrityO_O_0")
        trace = trace_from_vectors(ts, result.stimulus)
        assert trace.length == len(result.stimulus)
        for applied, replayed in zip(result.stimulus,
                                     trace.words_by_frame()):
            for name, value in replayed.items():
                width = mutant.inputs[name].width
                assert value == (applied[name] & ((1 << width) - 1))

    def test_record_stimulus_off_keeps_results_lean(self, verifiable_leaf):
        campaign = SimulationCampaign([verifiable_leaf],
                                      cycles_per_module=16)
        report = campaign.run()
        assert report.results[0].stimulus == []
