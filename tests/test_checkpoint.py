"""Checkpoint/resume fault injection.

A campaign interrupted after *any* prefix of its jobs — by an executor
crash or a hard SIGKILL — must resume from the journal into a report
whose outcome is byte-identical (``CampaignReport.canonical_bytes``)
to an uninterrupted run; and any damage to the journal (torn tail,
corrupt header, plan mismatch, tampered entry) must degrade to
re-checking, never to a wrong or missing verdict.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.chip import ComponentChip
from repro.core.report import format_table2
from repro.orchestrate import (
    CampaignCheckpoint, CampaignOrchestrator, EngineConfig, ResultCache,
    SerialExecutor, WorkStealingExecutor,
)

#: jobs in the tiny two-module plan; asserted against the real plan in
#: the ``reference`` fixture so the parametrization can't go stale
TOTAL_JOBS = 17


def _engines():
    return (EngineConfig(sat_conflicts=500_000, bdd_nodes=5_000_000),)


def _tiny_blocks():
    """Two modules, one seeded defect — FAIL entries (with traces that
    must re-validate on replay) land in every journal."""
    chip = ComponentChip(defects={"B2"}, only_blocks=["C"])
    return [("C", chip.blocks[0][1][:2])]


@pytest.fixture(scope="module")
def tiny_blocks():
    return _tiny_blocks()


@pytest.fixture(scope="module")
def reference(tiny_blocks):
    """The uninterrupted run every resumed run must reproduce."""
    report = CampaignOrchestrator(tiny_blocks, engines=_engines()).run()
    assert report.total_properties == TOTAL_JOBS
    assert report.by_status("fail"), "fixture must produce FAILs"
    return report


class CrashAfter:
    """Executor that dies after yielding ``k`` results — the moment a
    kill lands mid-stream, as far as the orchestrator can observe."""

    def __init__(self, k):
        self.k = k
        self.name = f"crash-after-{k}"

    def map(self, jobs):
        for count, result in enumerate(SerialExecutor().map(jobs)):
            if count == self.k:
                raise RuntimeError("simulated mid-campaign kill")
            yield result


def _crash_run(blocks, journal_path, k, cache=None):
    orchestrator = CampaignOrchestrator(
        blocks, engines=_engines(), executor=CrashAfter(k),
        checkpoint=CampaignCheckpoint(journal_path), cache=cache,
    )
    with pytest.raises(RuntimeError, match="simulated mid-campaign"):
        orchestrator.run()


def _resume(blocks, journal_path, executor=None, cache=None):
    return CampaignOrchestrator(
        blocks, engines=_engines(), executor=executor, cache=cache,
        checkpoint=CampaignCheckpoint(journal_path),
    ).run(resume=True)


class TestKillAndResume:
    @pytest.mark.parametrize("k", range(TOTAL_JOBS))
    def test_resume_after_any_prefix_is_byte_identical(
            self, k, tiny_blocks, reference, tmp_path):
        journal = tmp_path / "journal.jsonl"
        _crash_run(tiny_blocks, journal, k)
        resumed = _resume(tiny_blocks, journal)
        assert resumed.stats["journal_replayed"] == k
        assert resumed.canonical_bytes() == reference.canonical_bytes()
        assert format_table2(resumed) == format_table2(reference)

    def test_resume_with_work_stealing_executor(self, tiny_blocks,
                                                reference, tmp_path):
        journal = tmp_path / "journal.jsonl"
        _crash_run(tiny_blocks, journal, 6)
        resumed = _resume(tiny_blocks, journal,
                          executor=WorkStealingExecutor(processes=2))
        assert resumed.stats["journal_replayed"] == 6
        assert resumed.canonical_bytes() == reference.canonical_bytes()

    def test_completed_campaign_resumes_without_executing(
            self, tiny_blocks, reference, tmp_path):
        journal = tmp_path / "journal.jsonl"
        CampaignOrchestrator(
            tiny_blocks, engines=_engines(),
            checkpoint=CampaignCheckpoint(journal),
        ).run()
        resumed = _resume(tiny_blocks, journal)
        assert resumed.stats["journal_replayed"] == TOTAL_JOBS
        assert resumed.stats["modules_checked"] == []
        assert resumed.canonical_bytes() == reference.canonical_bytes()

    def test_double_crash_then_resume(self, tiny_blocks, reference,
                                      tmp_path):
        """A resumed run may itself be killed; the journal accumulates
        across attempts."""
        journal = tmp_path / "journal.jsonl"
        _crash_run(tiny_blocks, journal, 4)
        orchestrator = CampaignOrchestrator(
            tiny_blocks, engines=_engines(), executor=CrashAfter(5),
            checkpoint=CampaignCheckpoint(journal),
        )
        with pytest.raises(RuntimeError, match="simulated mid-campaign"):
            orchestrator.run(resume=True)
        resumed = _resume(tiny_blocks, journal)
        assert resumed.stats["journal_replayed"] == 9
        assert resumed.canonical_bytes() == reference.canonical_bytes()

    def test_journal_and_cache_compose(self, tiny_blocks, reference,
                                       tmp_path):
        """Journal replays take precedence; the cache serves later
        campaigns, backfilled from the journal."""
        journal = tmp_path / "journal.jsonl"
        cache_path = tmp_path / "cache.json"
        _crash_run(tiny_blocks, journal, 8,
                   cache=ResultCache(cache_path))
        resumed = _resume(tiny_blocks, journal,
                          cache=ResultCache(cache_path))
        assert resumed.stats["journal_replayed"] == 8
        assert resumed.stats["cache_hits"] == 0
        assert resumed.canonical_bytes() == reference.canonical_bytes()
        warm = CampaignOrchestrator(
            tiny_blocks, engines=_engines(),
            cache=ResultCache(cache_path),
        ).run()
        assert warm.stats["cache_hits"] == TOTAL_JOBS

    def test_resume_without_checkpoint_raises(self, tiny_blocks):
        orchestrator = CampaignOrchestrator(tiny_blocks,
                                            engines=_engines())
        with pytest.raises(ValueError, match="requires a checkpoint"):
            orchestrator.run(resume=True)


class TestJournalDamage:
    def test_torn_final_line_drops_only_that_entry(self, tiny_blocks,
                                                   reference, tmp_path):
        """A kill mid-write leaves a half-written last line — the
        expected crash artifact.  The valid prefix still replays."""
        journal = tmp_path / "journal.jsonl"
        _crash_run(tiny_blocks, journal, 5)
        journal.write_text(journal.read_text()[:-10])
        resumed = _resume(tiny_blocks, journal)
        assert resumed.stats["journal_replayed"] == 4
        assert resumed.canonical_bytes() == reference.canonical_bytes()

    def test_torn_tail_then_double_resume_accumulates(self, tiny_blocks,
                                                      reference,
                                                      tmp_path):
        """A resume after a torn tail must truncate the tear before
        appending — otherwise its first journaled entry merges into
        the fragment and a *second* resume would lose everything the
        first one completed."""
        journal = tmp_path / "journal.jsonl"
        _crash_run(tiny_blocks, journal, 5)
        journal.write_bytes(journal.read_bytes()[:-10])
        orchestrator = CampaignOrchestrator(
            tiny_blocks, engines=_engines(), executor=CrashAfter(3),
            checkpoint=CampaignCheckpoint(journal),
        )
        with pytest.raises(RuntimeError, match="simulated mid-campaign"):
            orchestrator.run(resume=True)
        resumed = _resume(tiny_blocks, journal)
        # 4 from the torn-tail prefix + 3 the killed resume journaled
        assert resumed.stats["journal_replayed"] == 7
        assert resumed.canonical_bytes() == reference.canonical_bytes()

    def test_corrupt_header_degrades_to_plain_rerun(self, tiny_blocks,
                                                    reference, tmp_path):
        journal = tmp_path / "journal.jsonl"
        _crash_run(tiny_blocks, journal, 7)
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(["{ not a header"] + lines[1:]) + "\n")
        resumed = _resume(tiny_blocks, journal)
        assert resumed.stats["journal_replayed"] == 0
        assert resumed.canonical_bytes() == reference.canonical_bytes()
        # the rerun rewrote a valid journal in place of the bad one
        again = _resume(tiny_blocks, journal)
        assert again.stats["journal_replayed"] == TOTAL_JOBS

    def test_plan_mismatch_discards_journal(self, tiny_blocks, reference,
                                            tmp_path):
        """A journal from a different campaign (here: the un-defected
        variant of the same modules) must not replay a single entry."""
        journal = tmp_path / "journal.jsonl"
        golden_chip = ComponentChip(only_blocks=["C"])
        golden = [("C", golden_chip.blocks[0][1][:2])]
        CampaignOrchestrator(
            golden, engines=_engines(),
            checkpoint=CampaignCheckpoint(journal),
        ).run()
        resumed = _resume(tiny_blocks, journal)
        assert resumed.stats["journal_replayed"] == 0
        assert resumed.canonical_bytes() == reference.canonical_bytes()

    def test_stale_fingerprint_entry_rechecked(self, tiny_blocks,
                                               reference, tmp_path):
        journal = tmp_path / "journal.jsonl"
        _crash_run(tiny_blocks, journal, 6)
        lines = journal.read_text().splitlines()
        entry = json.loads(lines[3])
        entry["fingerprint"] = "0" * 64
        lines[3] = json.dumps(entry)
        journal.write_text("\n".join(lines) + "\n")
        resumed = _resume(tiny_blocks, journal)
        assert resumed.stats["journal_replayed"] == 5
        assert resumed.canonical_bytes() == reference.canonical_bytes()

    def test_malformed_entry_never_flips_verdict(self, tiny_blocks,
                                                 reference, tmp_path):
        """Damaging every journaled verdict to nonsense forces a full
        re-check — the report outcome must not change at all."""
        journal = tmp_path / "journal.jsonl"
        CampaignOrchestrator(
            tiny_blocks, engines=_engines(),
            checkpoint=CampaignCheckpoint(journal),
        ).run()
        lines = journal.read_text().splitlines()
        damaged = [lines[0]]
        for line in lines[1:]:
            entry = json.loads(line)
            entry["result"]["status"] = "definitely-bogus"
            damaged.append(json.dumps(entry))
        journal.write_text("\n".join(damaged) + "\n")
        resumed = _resume(tiny_blocks, journal)
        assert resumed.stats["journal_replayed"] == 0
        assert resumed.canonical_bytes() == reference.canonical_bytes()

    def test_journaled_fail_without_replaying_trace_rechecked(
            self, tiny_blocks, reference, tmp_path):
        """A journaled FAIL whose counterexample no longer replays is
        not trusted — the property is re-checked."""
        journal = tmp_path / "journal.jsonl"
        CampaignOrchestrator(
            tiny_blocks, engines=_engines(),
            checkpoint=CampaignCheckpoint(journal),
        ).run()
        lines = journal.read_text().splitlines()
        tampered = 0
        rewritten = [lines[0]]
        for line in lines[1:]:
            entry = json.loads(line)
            if entry["result"]["status"] == "fail":
                entry["result"]["trace"] = []
                tampered += 1
            rewritten.append(json.dumps(entry))
        assert tampered > 0
        journal.write_text("\n".join(rewritten) + "\n")
        resumed = _resume(tiny_blocks, journal)
        assert resumed.stats["journal_replayed"] == TOTAL_JOBS - tampered
        assert resumed.canonical_bytes() == reference.canonical_bytes()


def _slow_campaign(blocks, journal_path):
    """Child-process campaign: ~20 ms per property, so the parent can
    land a SIGKILL somewhere in the middle of the stream."""
    CampaignOrchestrator(
        blocks, engines=_engines(),
        checkpoint=CampaignCheckpoint(journal_path),
    ).run(progress=lambda line: time.sleep(0.02))


class TestRealKill:
    def test_sigkilled_campaign_resumes_byte_identical(
            self, tiny_blocks, reference, tmp_path):
        """The genuine article: SIGKILL a running campaign process mid
        stream, then resume from whatever the journal durably holds."""
        journal = tmp_path / "journal.jsonl"
        context = multiprocessing.get_context("fork")
        child = context.Process(target=_slow_campaign,
                                args=(tiny_blocks, str(journal)))
        child.start()
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if journal.exists() and \
                        len(journal.read_text().splitlines()) >= 5:
                    break
                time.sleep(0.005)
            else:
                pytest.fail("child campaign never journaled 4 entries")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.join()
        resumed = _resume(tiny_blocks, journal)
        replayed = resumed.stats["journal_replayed"]
        assert 0 < replayed < TOTAL_JOBS
        assert resumed.canonical_bytes() == reference.canonical_bytes()
        assert format_table2(resumed) == format_table2(reference)
