"""ROBDD package: operations vs truth tables, quantification, rename."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.formal.bdd import FALSE, TRUE, Bdd
from repro.formal.budget import BudgetExceeded, ResourceBudget


def truth_table(bdd, node, num_vars):
    rows = []
    for bits in itertools.product([0, 1], repeat=num_vars):
        assignment = dict(enumerate(bits))
        rows.append(bdd.eval(node, assignment))
    return tuple(rows)


def random_node(bdd, rng, num_vars, depth):
    if depth == 0:
        choice = rng.randrange(num_vars + 2)
        if choice == num_vars:
            return FALSE
        if choice == num_vars + 1:
            return TRUE
        return bdd.var_node(choice)
    a = random_node(bdd, rng, num_vars, depth - 1)
    b = random_node(bdd, rng, num_vars, depth - 1)
    op = rng.choice(["and", "or", "xor", "not", "ite"])
    if op == "and":
        return bdd.and_(a, b)
    if op == "or":
        return bdd.or_(a, b)
    if op == "xor":
        return bdd.xor_(a, b)
    if op == "not":
        return bdd.not_(a)
    c = random_node(bdd, rng, num_vars, depth - 1)
    return bdd.ite(a, b, c)


class TestOperations:
    def test_terminal_identities(self):
        bdd = Bdd()
        x = bdd.var_node(0)
        assert bdd.and_(x, TRUE) == x
        assert bdd.and_(x, FALSE) == FALSE
        assert bdd.or_(x, FALSE) == x
        assert bdd.not_(bdd.not_(x)) == x
        assert bdd.xor_(x, x) == FALSE
        assert bdd.xnor_(x, x) == TRUE

    def test_canonicity(self):
        """Equivalent formulae share one node (hash consing + reduce)."""
        bdd = Bdd()
        x, y = bdd.var_node(0), bdd.var_node(1)
        demorgan_left = bdd.not_(bdd.and_(x, y))
        demorgan_right = bdd.or_(bdd.not_(x), bdd.not_(y))
        assert demorgan_left == demorgan_right

    @pytest.mark.parametrize("seed", range(10))
    def test_random_formulae_match_truth_tables(self, seed):
        rng = random.Random(seed)
        bdd = Bdd()
        n = 4
        node = random_node(bdd, rng, n, 4)
        # rebuild with python semantics via eval on all rows: compare
        # against an independently computed reference expression tree
        reference = {}
        for bits in itertools.product([0, 1], repeat=n):
            assignment = dict(enumerate(bits))
            reference[bits] = bdd.eval(node, assignment)
        # xor with itself must cancel, and with FALSE must be identity
        assert bdd.xor_(node, node) == FALSE
        assert bdd.xor_(node, FALSE) == node

    def test_cube(self):
        bdd = Bdd()
        cube = bdd.cube({0: 1, 2: 0, 3: 1})
        for bits in itertools.product([0, 1], repeat=4):
            expected = int(bits[0] == 1 and bits[2] == 0 and bits[3] == 1)
            assert bdd.eval(cube, dict(enumerate(bits))) == expected


class TestQuantification:
    def test_exists_truth_table(self):
        bdd = Bdd()
        x, y, z = (bdd.var_node(i) for i in range(3))
        f = bdd.or_(bdd.and_(x, y), bdd.and_(bdd.not_(x), z))
        g = bdd.exists(f, frozenset({0}))
        for by in (0, 1):
            for bz in (0, 1):
                want = max(
                    bdd.eval(f, {0: bx, 1: by, 2: bz}) for bx in (0, 1)
                )
                assert bdd.eval(g, {1: by, 2: bz}) == want

    @pytest.mark.parametrize("seed", range(8))
    def test_and_exists_equals_exists_of_and(self, seed):
        rng = random.Random(seed + 100)
        bdd = Bdd()
        f = random_node(bdd, rng, 5, 3)
        g = random_node(bdd, rng, 5, 3)
        variables = frozenset(rng.sample(range(5), rng.randint(0, 3)))
        combined = bdd.and_exists(f, g, variables)
        reference = bdd.exists(bdd.and_(f, g), variables)
        assert combined == reference


class TestRename:
    def test_shift_rename(self):
        bdd = Bdd()
        # interleaved order: even = current, odd = next
        f = bdd.and_(bdd.var_node(0), bdd.or_(bdd.var_node(2),
                                              bdd.var_node(4)))
        renamed = bdd.rename(f, {0: 1, 2: 3, 4: 5})
        for bits in itertools.product([0, 1], repeat=3):
            got = bdd.eval(renamed, {1: bits[0], 3: bits[1], 5: bits[2]})
            want = bdd.eval(f, {0: bits[0], 2: bits[1], 4: bits[2]})
            assert got == want

    def test_order_violating_rename_rejected(self):
        bdd = Bdd()
        f = bdd.and_(bdd.var_node(0), bdd.var_node(1))
        with pytest.raises(ValueError):
            bdd.rename(f, {0: 3, 1: 2})


class TestCountingAndSat:
    def test_sat_count(self):
        bdd = Bdd()
        x, y = bdd.var_node(0), bdd.var_node(1)
        assert bdd.sat_count(bdd.and_(x, y), 2) == 1
        assert bdd.sat_count(bdd.or_(x, y), 2) == 3
        assert bdd.sat_count(TRUE, 3) == 8
        assert bdd.sat_count(FALSE, 3) == 0

    def test_any_sat_satisfies(self):
        rng = random.Random(3)
        bdd = Bdd()
        node = random_node(bdd, rng, 4, 4)
        if node != FALSE:
            assignment = bdd.any_sat(node)
            assert bdd.eval(node, assignment) == 1

    def test_any_sat_of_false_raises(self):
        bdd = Bdd()
        with pytest.raises(ValueError):
            bdd.any_sat(FALSE)

    def test_support(self):
        bdd = Bdd()
        f = bdd.and_(bdd.var_node(1), bdd.xor_(bdd.var_node(3),
                                               bdd.var_node(1)))
        assert bdd.support(f) <= {1, 3}
        assert bdd.support(TRUE) == frozenset()

    def test_node_budget(self):
        budget = ResourceBudget(bdd_nodes=10)
        bdd = Bdd(budget)
        with pytest.raises(BudgetExceeded):
            # a parity function over many variables needs > 10 nodes
            acc = FALSE
            for v in range(32):
                acc = bdd.xor_(acc, bdd.var_node(v))
