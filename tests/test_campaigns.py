"""Formal and simulation campaigns on chip subsets (the full-chip runs
live in the benchmark harness)."""

import pytest

from repro.chip import ComponentChip, DEFECTS, DEFECTS_BY_ID
from repro.core.bugs import classify_findings
from repro.core.campaign import FormalCampaign
from repro.core.report import (
    format_status_summary, format_table2, format_table3, render_table,
)
from repro.core.stereotypes import stereotype_vunits
from repro.formal.budget import ResourceBudget
from repro.formal.engine import FAIL, PASS
from repro.psl.compile import compile_assertion
from repro.sim.campaign import SimulationCampaign


def _budget():
    return ResourceBudget(sat_conflicts=500_000, bdd_nodes=5_000_000)


@pytest.fixture(scope="module")
def block_c_report():
    """Golden block C campaign (small: 101 properties)."""
    chip = ComponentChip(only_blocks=["C"])
    campaign = FormalCampaign(chip.blocks, budget_factory=_budget)
    return campaign.run()


class TestFormalCampaign:
    def test_golden_block_all_pass(self, block_c_report):
        assert block_c_report.all_passed
        assert block_c_report.total_properties == 101
        summary = block_c_report.blocks["C"]
        assert summary.submodules == 13
        assert (summary.p0, summary.p1, summary.p2, summary.p3) == \
            (43, 20, 38, 0)
        assert summary.bugs == 0

    def test_lint_runs_clean(self, block_c_report):
        assert block_c_report.lint_issues == []

    def test_defective_block_flags_bug(self):
        chip = ComponentChip(defects={"B2"}, only_blocks=["C"])
        campaign = FormalCampaign(chip.blocks, budget_factory=_budget)
        report = campaign.run()
        assert not report.all_passed
        assert report.blocks["C"].bugs == 1
        failures = report.failures_by_module()
        assert set(failures) == {"C00_fsmctl"}
        assert all(r.category == "P1" for r in failures["C00_fsmctl"])
        for record in failures["C00_fsmctl"]:
            assert record.result.trace is not None
            assert record.result.trace.replay()

    def test_report_rendering(self, block_c_report):
        table = format_table2(block_c_report)
        assert "Module Name" in table and "Total" in table
        assert "P0: Ability of Error Detection" in table
        summary = format_status_summary(block_c_report)
        assert "101" in summary and "passed" in summary


class TestCampaignTimeouts:
    """A campaign containing timed-out properties (starved budgets)."""

    @pytest.fixture(scope="class")
    def starved_report(self):
        chip = ComponentChip(only_blocks=["C"])
        blocks = [("C", chip.blocks[0][1][:3])]
        campaign = FormalCampaign(
            blocks,
            budget_factory=lambda: ResourceBudget(sat_conflicts=0,
                                                  bdd_nodes=0),
        )
        return campaign.run()

    def test_timeouts_reported_not_failed(self, starved_report):
        timeouts = starved_report.by_status("timeout")
        assert timeouts, "starved budgets should time properties out"
        assert not starved_report.all_passed
        assert starved_report.by_status("fail") == []
        for record in timeouts:
            assert record.result.timed_out
            assert record.result.trace is None

    def test_timeouts_still_counted_per_category(self, starved_report):
        """Table 2 counts every checked property, whatever its status."""
        summary = starved_report.blocks["C"]
        assert summary.total == starved_report.total_properties
        counts = starved_report.counts_by_category()
        assert (summary.p0, summary.p1, summary.p2) == \
            (counts["P0"], counts["P1"], counts["P2"])

    def test_timeouts_are_not_bugs(self, starved_report):
        """Only FAIL verdicts attribute logic bugs; a timed-out check is
        inconclusive and must not inflate the bug column."""
        assert starved_report.blocks["C"].bugs == 0
        assert starved_report.distinct_bug_modules() == []

    def test_status_summary_mentions_timeouts(self, starved_report):
        summary = format_status_summary(starved_report)
        timeouts = len(starved_report.by_status("timeout"))
        assert f"{timeouts} timed out" in summary


class TestProgressCallback:
    def test_one_call_per_property_in_plan_order(self):
        chip = ComponentChip(only_blocks=["C"])
        blocks = [("C", chip.blocks[0][1][:3])]
        campaign = FormalCampaign(blocks, budget_factory=_budget)
        lines = []
        report = campaign.run(progress=lines.append)
        assert len(lines) == report.total_properties
        assert lines == [
            f"{r.qualified_name}: {r.result.status.upper()}"
            for r in report.results
        ]

    def test_order_stable_across_executors(self):
        from repro.orchestrate import ParallelExecutor
        chip = ComponentChip(only_blocks=["C"])
        blocks = [("C", chip.blocks[0][1][:3])]
        serial_lines, parallel_lines = [], []
        FormalCampaign(blocks, budget_factory=_budget).run(
            progress=serial_lines.append
        )
        FormalCampaign(
            blocks, budget_factory=_budget,
            executor=ParallelExecutor(processes=2),
        ).run(progress=parallel_lines.append)
        assert serial_lines == parallel_lines


class TestSimulationCampaign:
    @pytest.fixture(scope="class")
    def findings(self):
        chip = ComponentChip.with_all_defects()
        defective = [chip.module_named(d.module_name) for d in DEFECTS]

        sim = SimulationCampaign(defective, cycles_per_module=2000,
                                 seed=2004)
        sim_report = sim.run()
        sim_found = {
            r.module_name: r.first_violation_cycle
            for r in sim_report.results if r.found_bug
        }

        formal_failures = {}
        for module in defective:
            fails = []
            for unit in stereotype_vunits(module):
                for assert_name, _ in unit.asserted():
                    ts = compile_assertion(module, unit, assert_name)
                    from repro.formal.engine import ModelChecker
                    result = ModelChecker(ts, _budget()).check()
                    if result.status == FAIL:
                        fails.append(type("R", (), {
                            "qualified_name":
                                f"{unit.name}.{assert_name}",
                            "result": result,
                        })())
            if fails:
                formal_failures[module.name] = fails
        return classify_findings(DEFECTS, formal_failures, sim_found)

    def test_formal_finds_all_seven(self, findings):
        assert all(f.found_by_formal for f in findings)

    def test_simulation_split_matches_paper(self, findings):
        """Table 3: B0/B2/B4 easy for simulation, B1/B3/B5/B6 not."""
        for finding in findings:
            assert finding.found_by_simulation == finding.defect.sim_easy, \
                finding.defect.defect_id
            assert finding.matches_paper

    def test_table3_rendering(self, findings):
        table = format_table3(findings)
        assert "B3" in table and "Ability of Error Detection" in table
        # the measured columns agree with the paper column
        for line in table.splitlines()[2:]:
            cells = line.split("  ")
            cells = [c.strip() for c in cells if c.strip()]
            assert cells[-3] == cells[-2]   # paper vs measured sim


class TestRenderTable:
    def test_alignment(self):
        table = render_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[:2])
