"""Scoping, checkpoint enumeration, defect records."""

import pytest

from repro.chip.library import canonical_leaf
from repro.core.bugs import BugFinding, Defect
from repro.core.checkpoints import (
    Checkpoint, count_checkpoints, detection_checkpoints,
    enumerate_checkpoints,
)
from repro.core.leaf import classify, discover_leaves, formal_scope
from repro.rtl.inject import make_verifiable
from repro.rtl.integrity import IntegritySpec
from repro.rtl.module import Module


def structured_top():
    leaf = make_verifiable(canonical_leaf())
    top = Module("top")
    inst = top.instantiate(leaf, "u0", **{
        name: top.input(name, port.width)
        for name, port in leaf.inputs.items()
    })
    top.output("HE", inst["HE"])
    return top, leaf


class TestScoping:
    def test_leaf_with_checkpoints_in_scope(self):
        module = make_verifiable(canonical_leaf())
        entry = classify(module)
        assert entry.in_scope

    def test_structured_module_excluded(self):
        top, _ = structured_top()
        entry = classify(top)
        assert not entry.in_scope and "structured" in entry.reason

    def test_module_without_spec_excluded(self):
        bare = Module("bare")
        bare.output("Y", bare.input("A", 4))
        entry = classify(bare)
        assert not entry.in_scope and "no integrity" in entry.reason

    def test_module_without_checkpoints_excluded(self):
        empty = Module("glue")
        empty.output("Y", empty.input("A", 4))
        empty.integrity = IntegritySpec()
        entry = classify(empty)
        assert not entry.in_scope

    def test_discover_and_scope(self):
        top, leaf = structured_top()
        leaves = discover_leaves(top)
        assert leaves == [leaf]
        entries = formal_scope([top, leaf])
        assert entries[0].module is leaf and entries[0].in_scope
        assert entries[1].module is top and not entries[1].in_scope


class TestCheckpoints:
    def test_enumeration(self):
        module = make_verifiable(canonical_leaf())
        points = enumerate_checkpoints(module)
        kinds = [p.kind for p in points]
        assert kinds.count("entity") == 2
        assert kinds.count("input") == 1
        assert kinds.count("output") == 1

    def test_detection_population_matches_p0(self):
        module = make_verifiable(canonical_leaf())
        detection = detection_checkpoints([module])
        assert len(detection) == module.integrity.count_p0() == 3
        assert count_checkpoints([module]) == 3

    def test_module_without_spec_contributes_nothing(self):
        bare = Module("bare")
        bare.output("Y", bare.input("A", 4))
        assert enumerate_checkpoints(bare) == []


class TestSpecAccounting:
    def test_count_methods(self):
        module = make_verifiable(canonical_leaf())
        spec = module.integrity
        assert spec.count_p0() == 3
        assert spec.count_p1() == 1
        assert spec.count_p2() == 1
        assert spec.count_p3() == 0
        assert spec.count_total() == 5
        assert spec.has_checkpoints()

    def test_entity_lookup(self):
        module = make_verifiable(canonical_leaf())
        assert module.integrity.entity("stateA").reg_name == "A"
        with pytest.raises(KeyError):
            module.integrity.entity("missing")

    def test_validate_against_catches_mismatch(self):
        module = make_verifiable(canonical_leaf())
        from repro.rtl.integrity import ParityGroup
        module.integrity.protected_inputs.append(ParityGroup("GHOST"))
        problems = module.integrity.validate_against(module)
        assert any("GHOST" in p for p in problems)


class TestDefectRecords:
    def test_paper_row(self):
        defect = Defect("B5", "E", "E00_dec", "P2", False, "decoder")
        row = defect.paper_row
        assert row["Defect ID"] == "B5"
        assert row["Type of Property"] == "Output Data Integrity"
        assert row["Can be found by logic simulation easily?"] == "No"

    def test_matches_paper_logic(self):
        defect = Defect("B0", "A", "m", "P1", True, "")
        good = BugFinding(defect, found_by_formal=True,
                          found_by_simulation=True)
        assert good.matches_paper
        missed = BugFinding(defect, found_by_formal=True,
                            found_by_simulation=False)
        assert not missed.matches_paper
        unfound = BugFinding(defect, found_by_formal=False,
                             found_by_simulation=True)
        assert not unfound.matches_paper
