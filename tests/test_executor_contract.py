"""Executor-contract conformance battery.

One parametrized suite, run identically against every shipped executor
(serial, chunked pool, work-stealing pool): plan-order streaming,
0/1/many-job edge cases, mid-stream ``close()``, error propagation,
effective-mode naming, and the orchestrator's detection of executors
that under-yield, over-yield, or reorder.  A future executor (e.g. a
multi-host distributed one) gets certified by adding one line to
``EXECUTORS`` — if the battery passes, it is report-compatible with
every other execution strategy.
"""

import dataclasses

import pytest

from repro.chip import ComponentChip
from repro.orchestrate import (
    CampaignConfig, CampaignOrchestrator, EngineConfig, FleetExecutor,
    ModuleAffinityScheduling, ParallelExecutor, SerialExecutor,
    WorkStealingExecutor, plan_campaign,
)


def _engines(**overrides):
    overrides.setdefault("sat_conflicts", 500_000)
    overrides.setdefault("bdd_nodes", 5_000_000)
    return (EngineConfig(**overrides),)


#: the conformance roster: every executor the package ships, including
#: non-default tunings that change scheduling behaviour
EXECUTORS = [
    pytest.param(lambda: SerialExecutor(), id="serial"),
    pytest.param(lambda: ParallelExecutor(processes=2), id="parallel"),
    pytest.param(lambda: ParallelExecutor(processes=2, chunksize=1),
                 id="parallel-chunk1"),
    pytest.param(lambda: WorkStealingExecutor(processes=2),
                 id="work-stealing"),
    pytest.param(lambda: WorkStealingExecutor(
        processes=2, scheduling=ModuleAffinityScheduling()),
        id="work-stealing-affinity"),
    # compile-store variants: off entirely, and LRU-thrashed down to a
    # single retained design/problem — per-worker stores must never
    # leak across the boundary or move a verdict
    pytest.param(lambda: WorkStealingExecutor(
        processes=2, compile_store=False),
        id="work-stealing-nostore"),
    pytest.param(lambda: WorkStealingExecutor(
        processes=2, scheduling=ModuleAffinityScheduling(),
        store_options={"max_designs": 1, "max_problems": 1}),
        id="work-stealing-tight-store"),
    pytest.param(lambda: ParallelExecutor(
        processes=2, compile_store=False),
        id="parallel-nostore"),
    # SAT-workspace variants: shared incremental solver sessions on,
    # clustering disabled, and LRU-thrashed to one live session — warm
    # solver state must never move a verdict or reorder the stream
    pytest.param(lambda: WorkStealingExecutor(
        processes=2, share_sat=True),
        id="work-stealing-satspace"),
    pytest.param(lambda: ParallelExecutor(
        processes=2, share_sat=True, sat_options={"cluster_limit": 1}),
        id="parallel-satspace-cluster1"),
    pytest.param(lambda: SerialExecutor(
        share_sat=True, sat_options={"max_sessions": 1}),
        id="serial-satspace-thrash"),
    # socket-fanout fleet: the same contract over a TCP transport —
    # leases, heartbeats, and the portable job wire format instead of
    # pickled pool queues
    pytest.param(lambda: FleetExecutor(workers=2),
                 id="fleet"),
    pytest.param(lambda: FleetExecutor(
        workers=2, scheduling=ModuleAffinityScheduling()),
        id="fleet-affinity"),
    pytest.param(lambda: FleetExecutor(
        workers=2, share_sat=True, share_bdd=True),
        id="fleet-warm"),
]

parametrized = pytest.mark.parametrize("make_executor", EXECUTORS)


@pytest.fixture(scope="module")
def tiny_blocks():
    """Two modules, one seeded defect — 17 jobs, PASS and FAIL mixed,
    so counterexample traces cross every execution boundary."""
    chip = ComponentChip(defects={"B2"}, only_blocks=["C"])
    return [("C", chip.blocks[0][1][:2])]


@pytest.fixture(scope="module")
def tiny_plan(tiny_blocks):
    return plan_campaign(tiny_blocks, _engines())


def _outcome(job_result):
    return (job_result.index, job_result.qualified_name,
            job_result.result.status, job_result.result.engine,
            job_result.result.depth)


@pytest.fixture(scope="module")
def serial_outcomes(tiny_plan):
    """The reference stream every executor must reproduce."""
    return [_outcome(r) for r in SerialExecutor().map(tiny_plan.jobs)]


@parametrized
class TestStreamingContract:
    def test_streams_every_result_in_plan_order(self, make_executor,
                                                tiny_plan,
                                                serial_outcomes):
        executor = make_executor()
        results = list(executor.map(tiny_plan.jobs))
        assert [r.index for r in results] == \
            [job.index for job in tiny_plan.jobs]
        assert [_outcome(r) for r in results] == serial_outcomes

    def test_counterexamples_survive_the_boundary(self, make_executor,
                                                  tiny_plan):
        executor = make_executor()
        failures = [r for r in executor.map(tiny_plan.jobs)
                    if r.result.status == "fail"]
        assert failures, "fixture must produce at least one FAIL"
        for job_result in failures:
            assert job_result.result.trace is not None
            assert job_result.result.trace.replay()

    def test_zero_jobs(self, make_executor):
        assert list(make_executor().map([])) == []

    def test_single_job(self, make_executor, tiny_plan, serial_outcomes):
        executor = make_executor()
        results = list(executor.map(tiny_plan.jobs[:1]))
        assert [_outcome(r) for r in results] == serial_outcomes[:1]

    def test_effective_mode_naming(self, make_executor, tiny_plan):
        """A run too small to parallelise must not claim it did; a real
        multi-job run must not claim a fallback."""
        executor = make_executor()
        list(executor.map(tiny_plan.jobs[:1]))
        assert executor.name == "serial" or \
            "serial-fallback" in executor.name
        list(executor.map(tiny_plan.jobs))
        assert "serial-fallback" not in executor.name

    def test_close_mid_stream_then_reuse(self, make_executor, tiny_plan,
                                         serial_outcomes):
        """Abandoning the stream after one result must release workers
        promptly and leave the executor reusable."""
        executor = make_executor()
        stream = executor.map(tiny_plan.jobs)
        first = next(stream)
        assert _outcome(first) == serial_outcomes[0]
        close = getattr(stream, "close", None)
        assert close is not None, "map() must support close()"
        close()
        results = list(executor.map(tiny_plan.jobs))
        assert [_outcome(r) for r in results] == serial_outcomes

    def test_job_error_propagates(self, make_executor, tiny_blocks):
        """A job that blows up must surface in the consuming process,
        not vanish into a worker."""
        plan = plan_campaign(tiny_blocks, _engines(method="quantum"))
        executor = make_executor()
        with pytest.raises(ValueError, match="unknown method"):
            list(executor.map(plan.jobs))

    def test_error_surfaces_after_in_order_prefix(self, make_executor,
                                                  tiny_plan):
        """When the last job errors, whatever results stream out first
        must be a correct in-plan-order prefix — a late failure must
        not scramble or swallow earlier completions mid-flight."""
        bad_last = dataclasses.replace(
            tiny_plan.jobs[-1], engines=(EngineConfig(method="quantum"),)
        )
        mixed = list(tiny_plan.jobs[:-1]) + [bad_last]
        executor = make_executor()
        yielded = []
        with pytest.raises(ValueError, match="unknown method"):
            for job_result in executor.map(mixed):
                yielded.append(job_result.index)
        assert yielded == list(range(len(yielded)))

    def test_orchestrator_outcome_identical(self, make_executor,
                                            tiny_blocks):
        serial = CampaignOrchestrator(
            tiny_blocks, engines=_engines(), executor=SerialExecutor()
        ).run()
        other = CampaignOrchestrator(
            tiny_blocks, engines=_engines(), executor=make_executor()
        ).run()
        assert other.canonical_bytes() == serial.canonical_bytes()


#: cone-addressing variants: the `[coi]` knobs change job fingerprints
#: and compilation strategy, so they must be certified report-compatible
#: on every executor family, exactly like a new executor would be
COI_EXECUTORS = [
    pytest.param(lambda: SerialExecutor(), id="serial"),
    pytest.param(lambda: ParallelExecutor(processes=2), id="parallel"),
    pytest.param(lambda: WorkStealingExecutor(processes=2),
                 id="work-stealing"),
]

COI_CONFIGS = [
    pytest.param(CampaignConfig(coi_fingerprints="cone"), id="cone"),
    pytest.param(CampaignConfig(coi_slice=True), id="slice"),
    pytest.param(CampaignConfig(coi_fingerprints="cone", coi_slice=True),
                 id="cone-slice"),
]


@pytest.fixture(scope="module")
def module_mode_bytes(tiny_blocks):
    """The legacy serial, module-fingerprint report — the reference
    bytes every cone-addressing variant must reproduce."""
    return CampaignOrchestrator(
        tiny_blocks, engines=_engines(), executor=SerialExecutor()
    ).run().canonical_bytes()


@pytest.mark.parametrize("coi_config", COI_CONFIGS)
@pytest.mark.parametrize("make_executor", COI_EXECUTORS)
class TestConeAddressingContract:
    """Cone fingerprints and slice compilation must be invisible in
    report bytes — on/off, on any executor.  The fixture's seeded
    defect guarantees a FAIL, so slice-mode counterexample
    re-derivation crosses every boundary too."""

    def test_report_identical_to_module_mode_serial(
            self, make_executor, coi_config, tiny_blocks,
            module_mode_bytes):
        report = CampaignOrchestrator(
            tiny_blocks, engines=_engines(), executor=make_executor(),
            config=coi_config,
        ).run()
        assert report.canonical_bytes() == module_mode_bytes


class TestWorkStealingSpecifics:
    """Guarantees beyond the shared battery that work-stealing makes
    (chunked ``imap`` can lose results inside a failing chunk, so these
    can't be asserted for every executor)."""

    def test_every_completed_result_streams_before_late_error(
            self, tiny_plan):
        """All 16 good results must reach the consumer — and thus the
        checkpoint journal — before the 17th job's error is raised."""
        bad_last = dataclasses.replace(
            tiny_plan.jobs[-1], engines=(EngineConfig(method="quantum"),)
        )
        mixed = list(tiny_plan.jobs[:-1]) + [bad_last]
        executor = WorkStealingExecutor(processes=2)
        yielded = []
        with pytest.raises(ValueError, match="unknown method"):
            for job_result in executor.map(mixed):
                yielded.append(job_result.index)
        assert yielded == list(range(len(mixed) - 1))


class _DropLast:
    """Under-yielding adapter: silently loses the final result."""

    def __init__(self, inner):
        self.inner = inner
        self.name = "drop-last"

    def map(self, jobs):
        jobs = list(jobs)
        return self.inner.map(jobs[:-1])


class _DuplicateLast:
    """Over-yielding adapter: repeats the final result."""

    def __init__(self, inner):
        self.inner = inner
        self.name = "duplicate-last"

    def map(self, jobs):
        results = list(self.inner.map(jobs))
        return iter(results + results[-1:])


class _Reversed:
    """Reordering adapter: yields results back to front."""

    def __init__(self, inner):
        self.inner = inner
        self.name = "reversed"

    def map(self, jobs):
        return iter(list(self.inner.map(jobs))[::-1])


@parametrized
class TestContractBreachDetection:
    """The orchestrator must reject a misbehaving executor loudly —
    whatever well-behaved executor sits underneath the misbehaviour."""

    def test_under_yield_detected(self, make_executor, tiny_blocks):
        orchestrator = CampaignOrchestrator(
            tiny_blocks, engines=_engines(),
            executor=_DropLast(make_executor()),
        )
        with pytest.raises(RuntimeError, match="ran out of results"):
            orchestrator.run()

    def test_over_yield_detected(self, make_executor, tiny_blocks):
        orchestrator = CampaignOrchestrator(
            tiny_blocks, engines=_engines(),
            executor=_DuplicateLast(make_executor()),
        )
        with pytest.raises(RuntimeError, match="beyond the last job"):
            orchestrator.run()

    def test_reordering_detected(self, make_executor, tiny_blocks):
        orchestrator = CampaignOrchestrator(
            tiny_blocks, engines=_engines(),
            executor=_Reversed(make_executor()),
        )
        with pytest.raises(RuntimeError, match="ordering contract"):
            orchestrator.run()
