"""Stable defect identifiers: DefectSite, the injection-plumbing
lookups they address, and per-block defect accounting."""

import pytest

from repro.chip.defects import (
    DEFECT_CLASSES, DEFECTS, DROPPED_ERROR_FLAG, STUCK_PARITY,
    SWAPPED_OPERAND, WRONG_ROTATE, DefectSite, defects_in_blocks,
)
from repro.chip.library import LeafConfig, canonical_leaf, generic_leaf
from repro.core.bugs import Defect
from repro.rtl.inject import clone_leaf, _clone_leaf
from repro.rtl.module import RtlError
from repro.scenario.mutate import apply_defect, enumerate_sites


class TestDefectSite:
    def test_site_id_roundtrip(self):
        for defect_class in DEFECT_CLASSES:
            site = DefectSite(defect_class, "A00_wide", "loc0")
            assert DefectSite.parse(site.site_id) == site

    def test_site_id_format(self):
        site = DefectSite(STUCK_PARITY, "M", "stateA")
        assert site.site_id == "stuck-parity@M:stateA"

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown defect class"):
            DefectSite("melted-fuse", "M", "x")

    @pytest.mark.parametrize("module_name,location", [
        ("", "x"), ("M", ""), ("A@B", "x"), ("M", "a:b"), ("M:N", "x"),
    ])
    def test_reserved_characters_rejected(self, module_name, location):
        with pytest.raises(ValueError):
            DefectSite(STUCK_PARITY, module_name, location)

    @pytest.mark.parametrize("text", [
        "nonsense", "stuck-parity@onlymodule", "stuck-parity:noat",
        "", "@M:l",
    ])
    def test_parse_malformed(self, text):
        with pytest.raises(ValueError):
            DefectSite.parse(text)


class TestDefectsInBlocks:
    def test_default_catalogue(self):
        counts = defects_in_blocks()
        assert counts == {"A": 3, "C": 1, "D": 1, "E": 2}
        assert sum(counts.values()) == len(DEFECTS)

    def test_custom_defect_records(self):
        custom = [
            Defect("X0", "Q", "Q00", "P1", True, "seeded"),
            Defect("X1", "Q", "Q01", "P2", False, "seeded"),
            Defect("X2", "R", "R00", "P0", False, "seeded"),
        ]
        assert defects_in_blocks(custom) == {"Q": 2, "R": 1}

    def test_empty(self):
        assert defects_in_blocks([]) == {}


class TestInjectionPlumbingLookups:
    """The by-name paths a site identifier resolves through."""

    def test_ec_index_of(self, leaf):
        spec = leaf.integrity
        assert spec.ec_index_of("stateA") == 0
        assert spec.ec_index_of("dataB") == 1
        with pytest.raises(KeyError):
            spec.ec_index_of("nonexistent")

    def test_output_group(self, leaf):
        group = leaf.integrity.output_group("O")
        assert group.signal == "O"
        with pytest.raises(KeyError):
            leaf.integrity.output_group("HE")

    def test_clone_leaf_is_public_with_compat_alias(self, leaf):
        clone, mapping = clone_leaf(leaf)
        assert clone.name == leaf.name
        assert clone is not leaf
        assert _clone_leaf is clone_leaf


class TestSiteStabilityUnderGrowth:
    """Growing a module's configuration must never rename existing
    sites — records keyed by site id stay comparable."""

    def _config(self, output_groups):
        return LeafConfig(name="G", fsm=1, counter=1, datapath=1,
                          input_groups=1, he=2,
                          output_groups=output_groups)

    def test_growth_preserves_site_ids(self):
        small = {s.site_id
                 for s in enumerate_sites(generic_leaf(self._config(1)))}
        grown = {s.site_id
                 for s in enumerate_sites(generic_leaf(self._config(2)))}
        assert small < grown
        assert all("OUT1" in site_id for site_id in grown - small)


class TestApplyDefectValidation:
    def test_wrong_module_rejected(self, leaf):
        site = DefectSite(STUCK_PARITY, "other", "stateA")
        with pytest.raises(RtlError, match="does not address"):
            apply_defect(leaf, site)

    def test_unknown_entity_rejected(self, leaf):
        site = DefectSite(STUCK_PARITY, leaf.name, "ghost")
        with pytest.raises(KeyError):
            apply_defect(leaf, site)

    def test_unknown_he_rejected(self, leaf):
        site = DefectSite(DROPPED_ERROR_FLAG, leaf.name, "O")
        with pytest.raises(RtlError, match="no HE signal"):
            apply_defect(leaf, site)

    def test_unknown_output_rejected(self, leaf):
        for defect_class in (WRONG_ROTATE, SWAPPED_OPERAND):
            site = DefectSite(defect_class, leaf.name, "HE")
            with pytest.raises(KeyError):
                apply_defect(leaf, site)

    def test_input_is_never_mutated(self, leaf):
        before = {name: repr(expr) for name, expr in leaf.outputs.items()}
        for site in enumerate_sites(leaf):
            mutant = apply_defect(leaf, site)
            assert mutant.attrs["defect_site"] == site.site_id
            assert "defect_site" not in leaf.attrs
        after = {name: repr(expr) for name, expr in leaf.outputs.items()}
        assert before == after

    def test_canonical_leaf_site_inventory(self, leaf):
        by_class = {}
        for site in enumerate_sites(leaf):
            by_class.setdefault(site.defect_class, []).append(
                site.location)
        assert by_class == {
            STUCK_PARITY: ["stateA", "dataB"],
            WRONG_ROTATE: ["O"],
            SWAPPED_OPERAND: ["O"],
            DROPPED_ERROR_FLAG: ["HE"],
        }
