"""Behavioural tests of the defect-hosting modules: each bug's root
cause manifests exactly as described, and the corrected variants are
clean — checked by simulation, independently of the formal engines."""

import pytest

from repro.chip.specials import (
    ARM_ADDRESS, ARM_DATA_NIBBLE, B5_CASE, B5_DATA, DECODER_VALID_CASES,
    REGFILE_ADDRESSES, RESERVED_REGISTER, address_decoder, fsm_controller,
    macro_interface, pipeline_stage, register_file, wrap_counter,
)
from repro.rtl.elaborate import elaborate
from repro.rtl.inject import make_verifiable
from repro.rtl.parity import encode_value, value_ok
from repro.sim.simulator import Simulator


def enc(value):
    return encode_value(value, 8)


class TestWrapCounterB0:
    def test_bug_fires_on_wrap(self):
        sim = Simulator(elaborate(wrap_counter("M", buggy=True)))
        # count up with enable (IN0 bit 0) held high: wrap at 8 ticks
        fired = None
        for cycle in range(12):
            outs = sim.step({"IN0": enc(0x01)})
            if outs["HE"]:
                fired = cycle
                break
        assert fired is not None and fired >= 7

    def test_golden_never_fires(self):
        sim = Simulator(elaborate(wrap_counter("M", buggy=False)))
        for _ in range(40):
            assert sim.step({"IN0": enc(0x01)})["HE"] == 0


class TestRegisterFileB1:
    def _write(self, sim, addr, data, wen=1):
        return sim.step({"WADDR": enc(addr), "WDATA": enc(data),
                         "WEN": wen})

    def test_trigger_needs_arming(self):
        sim = Simulator(elaborate(register_file("M", buggy=True)))
        strike = REGFILE_ADDRESSES[RESERVED_REGISTER]
        # strike without arming: parity stays consistent
        self._write(sim, strike, 0x70)    # non-zero reserved nibble
        outs = self._write(sim, 0x00, 0x00, wen=0)
        assert outs["HE"] == 0

    def test_armed_strike_corrupts_parity(self):
        sim = Simulator(elaborate(register_file("M", buggy=True)))
        strike = REGFILE_ADDRESSES[RESERVED_REGISTER]
        self._write(sim, ARM_ADDRESS, ARM_DATA_NIBBLE)    # arm
        self._write(sim, strike, 0x70)    # reserved nibble, odd ones
        outs = self._write(sim, 0x00, 0x00, wen=0)
        assert outs["HE"] == 1
        assert not value_ok(sim.peek("R2"))

    def test_reserved_field_masked(self):
        sim = Simulator(elaborate(register_file("M", buggy=False)))
        strike = REGFILE_ADDRESSES[RESERVED_REGISTER]
        self._write(sim, strike, 0xFF)
        assert sim.peek("R2") & 0xF0 == 0   # reserved bits read as zero
        assert value_ok(sim.peek("R2"))


class TestFsmControllerB2:
    def test_first_grant_corrupts(self):
        sim = Simulator(elaborate(fsm_controller("M", buggy=True)))
        sim.step({"IN0": enc(0x01)})      # request -> grant transition
        assert not value_ok(sim.peek("FSM0"))   # stale parity stored
        outs = sim.step({"IN0": enc(0x00)})
        assert outs["HE0"] == 1           # reported the next cycle

    def test_golden_grant_is_clean(self):
        sim = Simulator(elaborate(fsm_controller("M", buggy=False)))
        sim.step({"IN0": enc(0x01)})
        outs = sim.step({"IN0": enc(0x00)})
        assert outs["HE0"] == 0 and outs["HE1"] == 0


class TestMacroInterfaceB3:
    def test_sim_view_has_no_macro_port(self):
        from repro.chip.blocks import _verifiable
        module = _verifiable(macro_interface("M", buggy=True))
        sim_view = module.attrs["sim_view"]
        assert "M_DATA" not in sim_view.inputs
        assert module.attrs["defect"] == "B3"

    def test_buggy_accepts_before_checking(self):
        design = elaborate(macro_interface("M", buggy=True))
        sim = Simulator(design)
        bad_word = enc(0x42) ^ 1   # even parity
        # cycles 0,1: settle; cycle 2: counter reads 2 -> accept opens
        sim.step({"IN0": enc(0x01), "M_DATA": bad_word})
        sim.step({"IN0": enc(0x01), "M_DATA": bad_word})
        outs = sim.step({"IN0": enc(0x01), "M_DATA": bad_word})
        assert outs["ACC"] == 1 and outs["RDY"] == 0   # the hole
        outs = sim.step({"IN0": enc(0x01), "M_DATA": enc(0)})
        assert outs["HE"] == 0    # corrupted data entered, unreported

    def test_fixed_accept_window_waits_for_ready(self):
        sim = Simulator(elaborate(macro_interface("M", buggy=False)))
        bad_word = enc(0x42) ^ 1
        for _ in range(3):
            outs = sim.step({"IN0": enc(0x01), "M_DATA": bad_word})
            assert outs["ACC"] == 0
        # once the counter saturates, bad macro data is both accepted
        # and checked; the error-log flop reports one cycle later
        sim.step({"IN0": enc(0x01), "M_DATA": bad_word})
        outs = sim.step({"IN0": enc(0x01), "M_DATA": bad_word})
        assert outs["RDY"] == 1
        outs = sim.step({"IN0": enc(0x01), "M_DATA": bad_word})
        assert outs["HE"] == 1


class TestPipelineB4:
    def test_select_flips_output_parity(self):
        module = pipeline_stage("M", datapaths=4, counters=1,
                                input_groups=2, he=1, output_groups=4,
                                onehot=0, buggy=True)
        sim = Simulator(elaborate(module))
        # IN0 bit 1 is the select; with it high, OUT2 parity breaks
        sim.step({"IN0": enc(0x02), "IN1": enc(0x00)})
        outs = sim.step({"IN0": enc(0x02), "IN1": enc(0x00)})
        assert not value_ok(outs["OUT2"])
        assert value_ok(outs["OUT0"])

    def test_merge_outputs_carry_parity(self):
        module = pipeline_stage("M", datapaths=5, counters=1,
                                input_groups=2, he=1, output_groups=6,
                                onehot=0, buggy=False)
        sim = Simulator(elaborate(module))
        import random
        rng = random.Random(4)
        for _ in range(30):
            outs = sim.step({"IN0": enc(rng.randrange(256)),
                             "IN1": enc(rng.randrange(256))})
            for name, value in outs.items():
                if name.startswith("OUT"):
                    assert value_ok(value), name


class TestAddressDecoderB5:
    def _step(self, sim, addr, data):
        return sim.step({"ADDR": enc(addr), "DIN": enc(data)})

    def test_miscoded_case_breaks_parity(self):
        module = address_decoder("M", B5_CASE, B5_DATA, "B5", buggy=True)
        sim = Simulator(elaborate(module))
        self._step(sim, B5_CASE, B5_DATA)
        outs = self._step(sim, 0, 0)
        assert outs["VLD"] == 1
        assert not value_ok(outs["DOUT"])

    def test_neighbour_cases_are_clean(self):
        module = address_decoder("M", B5_CASE, B5_DATA, "B5", buggy=True)
        sim = Simulator(elaborate(module))
        # same address, different data: clean (data-pattern dependence)
        self._step(sim, B5_CASE, B5_DATA ^ 0xFF)
        assert value_ok(self._step(sim, 0, 0)["DOUT"])
        # different address, same data: clean
        self._step(sim, B5_CASE + 1, B5_DATA)
        assert value_ok(self._step(sim, 0, 0)["DOUT"])

    def test_invalid_addresses_decode_idle(self):
        module = address_decoder("M", B5_CASE, B5_DATA, "B5", buggy=False)
        sim = Simulator(elaborate(module))
        self._step(sim, DECODER_VALID_CASES + 5, 0x33)
        outs = self._step(sim, 0, 0)
        assert outs["VLD"] == 0
        assert value_ok(outs["DOUT"])
