"""Verilog emission (Figure 6 reproduction)."""

import re

import pytest

from repro.chip.library import canonical_leaf
from repro.rtl.inject import make_verifiable, make_wrapper
from repro.rtl.module import Module
from repro.rtl.signals import cat, const, mux
from repro.rtl.verilog import emit_hierarchy, emit_module


@pytest.fixture(scope="module")
def figure6_text():
    verifiable = make_verifiable(canonical_leaf("B"))
    wrapper = make_wrapper(verifiable, wrapper_name="A", inst_name="B_in_A")
    return emit_hierarchy(wrapper)


class TestFigure6:
    def test_leaf_emitted_before_wrapper(self, figure6_text):
        assert figure6_text.index("module B (") < \
            figure6_text.index("module A (")

    def test_injection_ports_declared(self, figure6_text):
        assert re.search(r"input \[1:0\] I_ERR_INJ_C;", figure6_text)
        assert re.search(r"input \[8:0\] I_ERR_INJ_D;", figure6_text)

    def test_wrapper_ties_injection_to_zero(self, figure6_text):
        assert ".I_ERR_INJ_C(2'b00)" in figure6_text
        assert ".I_ERR_INJ_D(9'b000000000)" in figure6_text

    def test_registers_have_reset_clause(self, figure6_text):
        assert "always @(posedge CK or posedge RESET)" in figure6_text
        assert re.search(r"if \(RESET\) A <= 4'b\d{4};", figure6_text)


class TestEmitter:
    def test_operators_render(self):
        m = Module("ops")
        a = m.input("A", 4)
        b = m.input("B", 4)
        s = m.input("S", 1)
        m.output("Y1", a + b)
        m.output("Y2", a.eq(b))
        m.output("Y3", mux(s, a, b))
        m.output("Y4", cat(a, b))
        m.output("Y5", a.reduce_xor())
        m.output("Y6", a[1:3])
        text = emit_module(m)
        for fragment in ("+", "==", "?", "{", "^", "[2:1]"):
            assert fragment in text, fragment

    def test_shared_nodes_emitted_once(self):
        m = Module("share")
        a = m.input("A", 4)
        shared = a ^ const(5, 4)
        m.output("Y1", shared & a)
        m.output("Y2", shared | a)
        text = emit_module(m)
        assert text.count("^ 4'b0101") == 1

    def test_constants_verilog_style(self):
        m = Module("c")
        m.output("Y", const(0b1010, 4))
        assert "4'b1010" in emit_module(m)
