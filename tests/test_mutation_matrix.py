"""Mutation-kill matrix: a fixed family crossed with every defect
class must leave zero survivors, each killed by its expected
stereotype category — the sweeps' quality bar in miniature."""

import pytest

from repro.chip.defects import DEFECT_CLASSES
from repro.scenario import (
    FamilySpec, canonical_record_bytes, generate_family, record_digest,
    run_sweep,
)
from repro.scenario.mutate import (
    EXPECTED_CATEGORY, enumerate_sites, sites_for_family,
)
from repro.scenario.sweep import SWEEP_SCHEMA

MATRIX_SPEC = FamilySpec(blocks=1, modules_per_block=2,
                         datapath_width=4, pipeline_depth=1,
                         error_report_width=2)


@pytest.fixture(scope="module")
def matrix():
    """One sweep over the full fixed family x defect-class grid."""
    record, report = run_sweep(MATRIX_SPEC)
    return record, report


class TestKillMatrix:
    def test_zero_survivors(self, matrix):
        record, _ = matrix
        assert record["detection"]["survivors"] == []
        assert record["detection"]["detected"] \
            == record["detection"]["total"]
        assert record["detection"]["rate"] == 1.0

    def test_every_class_seeded(self, matrix):
        record, _ = matrix
        seeded = {row["class"] for row in record["mutants"]}
        assert seeded == set(DEFECT_CLASSES)

    def test_expected_category_kills_each_mutant(self, matrix):
        record, _ = matrix
        for row in record["mutants"]:
            assert EXPECTED_CATEGORY[row["class"]] \
                in row["failing_categories"], row["site"]

    def test_first_fail_is_canonical(self, matrix):
        record, _ = matrix
        for row in record["mutants"]:
            first = row["first_fail"]
            assert not first["engine"].startswith("portfolio:")
            assert "." in first["property"]

    def test_engine_attempts_recorded(self, matrix):
        record, _ = matrix
        engines = record["timing"]["engines"]
        assert engines
        assert sum(bucket["fails"] for bucket in engines.values()) \
            >= record["detection"]["total"]

    def test_record_is_versioned_and_stamped(self, matrix):
        record, report = matrix
        assert record["schema"] == SWEEP_SCHEMA
        assert record["family"] == MATRIX_SPEC.to_dict()
        assert record["family_digest"] == MATRIX_SPEC.digest()
        assert report.stats["scenario_sweep"] is record

    def test_rerun_is_byte_identical(self, matrix):
        record, _ = matrix
        again, _ = run_sweep(MATRIX_SPEC)
        assert canonical_record_bytes(again) \
            == canonical_record_bytes(record)
        assert record_digest(again) == record_digest(record)

    def test_canonical_bytes_exclude_timing(self, matrix):
        record, _ = matrix
        assert b"timing" not in canonical_record_bytes(record)
        assert "campaign_seconds" in record["timing"]


class TestSiteSampling:
    def test_class_filter(self):
        blocks = generate_family(MATRIX_SPEC)
        only = sites_for_family(blocks, classes=["stuck-parity"])
        assert only
        assert all(site.defect_class == "stuck-parity"
                   for _, _, site in only)

    def test_unknown_class_rejected(self):
        blocks = generate_family(MATRIX_SPEC)
        with pytest.raises(ValueError, match="unknown defect class"):
            sites_for_family(blocks, classes=["bit-rot"])

    def test_sites_per_module_cap_is_deterministic(self):
        blocks = generate_family(MATRIX_SPEC)
        capped = sites_for_family(blocks, sites_per_module=2, seed=11)
        again = sites_for_family(blocks, sites_per_module=2, seed=11)
        assert [s.site_id for _, _, s in capped] \
            == [s.site_id for _, _, s in again]
        per_module = {}
        for _, module, site in capped:
            per_module.setdefault(module.name, []).append(site.site_id)
        assert all(len(ids) == 2 for ids in per_module.values())
        full = {s.site_id for _, _, s in sites_for_family(blocks)}
        assert {s.site_id for _, _, s in capped} <= full

    def test_sampling_preserves_enumeration_order(self):
        blocks = generate_family(MATRIX_SPEC)
        capped = sites_for_family(blocks, sites_per_module=3, seed=5)
        for _, modules in blocks:
            for module in modules:
                order = [s.site_id for s in enumerate_sites(module)]
                chosen = [s.site_id for _, m, s in capped
                          if m.name == module.name]
                assert chosen == [sid for sid in order
                                  if sid in set(chosen)]
