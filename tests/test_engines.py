"""Formal engines: BMC, k-induction, BDD traversals and POBDD must
agree with each other and with known ground truth."""

import pytest

from repro.formal.bmc import bmc
from repro.formal.budget import BudgetExceeded, ResourceBudget
from repro.formal.engine import FAIL, PASS, TIMEOUT, UNKNOWN, ModelChecker
from repro.formal.induction import k_induction
from repro.formal.pobdd import pobdd_reach
from repro.formal.reachability import (
    SymbolicModel, backward_reach, combined_reach, forward_reach,
)
from repro.formal.transition import TransitionSystem
from repro.psl.compile import compile_assertion
from repro.psl.parser import parse_vunit
from repro.rtl.elaborate import elaborate
from repro.rtl.module import Module
from repro.rtl.netlist import bitblast
from repro.rtl.signals import Const, const, mux

ALL_METHODS = ["bmc", "kind", "bdd-forward", "bdd-backward",
               "bdd-combined", "pobdd"]


def counter_problem(bad_at, width=4, with_enable=True, assume_off=False):
    """A counter that fails exactly when it reaches ``bad_at``."""
    m = Module("cnt")
    en = m.input("EN", 1)
    r = m.reg("r", width, reset=0)
    r.next = mux(en, r + 1, r) if with_enable else r + 1
    m.output("BAD", r.eq(const(bad_at, width)))
    source = f"""
    vunit v (cnt) {{
        property pOff = always ( ~EN );
        {"assume pOff;" if assume_off else ""}
        property pSafe = never ( BAD );
        assert pSafe;
    }}
    """
    unit = parse_vunit(source)
    return compile_assertion(m, unit, "pSafe")


class TestGroundTruth:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_reachable_bad_found(self, method, budget):
        ts = counter_problem(bad_at=5)
        result = ModelChecker(ts, budget).check(method=method, max_bound=20)
        assert result.status == FAIL
        assert result.trace is not None
        assert result.trace.replay()
        # minimal counterexample: five increments, violation visible in
        # the cycle the counter holds 5
        assert result.trace.length == 6

    @pytest.mark.parametrize("method", ["kind", "bdd-forward",
                                        "bdd-backward", "bdd-combined",
                                        "pobdd"])
    def test_unreachable_bad_proved(self, method, budget):
        # 4-bit counter counts 0..15; 16 is not representable, so use a
        # guard: bad when r == 12 but the constraint never enables
        ts = counter_problem(bad_at=12, assume_off=True)
        result = ModelChecker(ts, budget).check(method=method)
        assert result.status == PASS

    def test_bmc_is_bounded_only(self, budget):
        ts = counter_problem(bad_at=12, assume_off=True)
        result = ModelChecker(ts, budget).check(method="bmc", max_bound=6)
        assert result.status == UNKNOWN

    def test_bmc_depth_exact(self, budget):
        ts = counter_problem(bad_at=3, with_enable=False)
        result = bmc(ts, max_bound=10, budget=budget)
        assert result.failed and result.bound == 3

    def test_auto_method(self, budget):
        ts = counter_problem(bad_at=12, assume_off=True)
        result = ModelChecker(ts, budget).check(method="auto")
        assert result.status == PASS and result.engine.startswith("auto:")

    def test_unknown_method_rejected(self, budget):
        ts = counter_problem(bad_at=3)
        with pytest.raises(ValueError):
            ModelChecker(ts, budget).check(method="quantum")


class TestConstraintSemantics:
    def test_constraint_applies_to_violating_cycle(self, budget):
        """bad = EN must be unreachable under assume never EN, even
        though bad depends on the same-cycle input."""
        m = Module("m")
        en = m.input("EN", 1)
        r = m.reg("r", 1, reset=0)
        r.next = r
        m.output("BAD", en)
        unit = parse_vunit("""
        vunit v (m) {
            property pOff = never ( EN );
            assume pOff;
            property pSafe = never ( BAD );
            assert pSafe;
        }
        """)
        ts = compile_assertion(m, unit, "pSafe")
        for method in ALL_METHODS[1:]:
            result = ModelChecker(ts, budget).check(method=method)
            assert result.status == PASS, method

    def test_next_assumption_constrains_pairs(self, budget):
        """assume always(req -> next ack) makes 'req then no ack'
        unreachable."""
        m = Module("m")
        req = m.input("REQ", 1)
        ack = m.input("ACK", 1)
        prev_req = m.reg("prev_req", 1, reset=0)
        prev_req.next = req
        m.output("BAD", prev_req & ~ack)
        unit = parse_vunit("""
        vunit v (m) {
            property pProto = always ( REQ -> next ACK );
            assume pProto;
            property pSafe = never ( BAD );
            assert pSafe;
        }
        """)
        ts = compile_assertion(m, unit, "pSafe")
        for method in ("kind", "bdd-forward", "bdd-combined"):
            assert ModelChecker(ts, budget).check(method=method).status \
                == PASS


class TestResourceBudget:
    def test_bdd_timeout_reported(self):
        ts = counter_problem(bad_at=12, assume_off=True)
        tight = ResourceBudget(bdd_nodes=50)
        result = ModelChecker(ts, tight).check(method="bdd-forward")
        assert result.status == TIMEOUT
        assert result.stats["resource"] == "BDD node"

    def test_sat_timeout_reported(self):
        ts = counter_problem(bad_at=15, with_enable=False)
        tight = ResourceBudget(sat_conflicts=0)
        result = ModelChecker(ts, tight).check(method="kind")
        # either it solves without conflicts or budget trips; with a
        # 0-conflict budget deep BMC must trip
        assert result.status in (TIMEOUT, FAIL)


class TestCoiReduction:
    def test_unrelated_state_stripped(self, budget):
        m = Module("m")
        en = m.input("EN", 1)
        relevant = m.reg("rel", 2, reset=0)
        relevant.next = relevant + 1
        junk = m.reg("junk", 8, reset=0)
        junk.next = junk ^ 0xFF
        m.output("BAD", relevant.eq(Const(3, 2)))
        unit = parse_vunit(
            "vunit v (m) { property p = never ( BAD ); assert p; }"
        )
        ts = compile_assertion(m, unit, "p")
        names = {ts.latch_name(lit) for lit in ts.latches}
        assert all(name.startswith("rel") for name in names)
        assert ts.size_stats()["latches"] == 2


class TestTraces:
    def test_words_by_frame(self, budget):
        ts = counter_problem(bad_at=2, with_enable=False)
        result = bmc(ts, 5, budget=budget)
        words = result.trace.words_by_frame()
        assert len(words) == 3
        assert all("EN" in frame for frame in words)
        assert "counterexample" in result.trace.format()

    def test_replay_rejects_truncated_trace(self, budget):
        ts = counter_problem(bad_at=4, with_enable=False)
        result = bmc(ts, 8, budget=budget)
        trace = result.trace
        assert trace.replay()
        trace.inputs_by_frame.append({})   # junk frame beyond violation
        assert not trace.replay()


class TestEngineAgreement:
    @pytest.mark.parametrize("bad_at", [1, 4, 9])
    def test_all_engines_agree_on_depth(self, bad_at, budget):
        ts = counter_problem(bad_at=bad_at, with_enable=False)
        depths = set()
        for method in ALL_METHODS:
            result = ModelChecker(ts, budget).check(method=method,
                                                    max_bound=20)
            assert result.status == FAIL, method
            depths.add(result.trace.length)
        assert depths == {bad_at + 1}
