"""Service-layer certification: verdict database, submission queue,
HTTP API, and the daemon's crash story.

The acceptance bar mirrors the executor/checkpoint suites: a campaign
served through the daemon — cold, as a fully cache-hit re-submission,
and with a mid-run daemon SIGKILL + restart resume — must produce
``CampaignReport.canonical_bytes`` identical to a serial in-process
run, the verdict database must degrade every kind of rot to a miss
(never a wrong verdict), and two clients posting the same config must
get one underlying job run.
"""

import json
import multiprocessing
import os
import signal
import socket
import sqlite3
import threading
import time

import pytest

from repro.chip import ComponentChip
from repro.core.report import format_table2
from repro.orchestrate import CampaignOrchestrator, ResultCache
from repro.orchestrate.config import CampaignConfig, ConfigError
from repro.orchestrate.stats import STATS_SCHEMA, counter_groups
from repro.service import (
    CampaignQueue, ServiceClient, ServiceDaemon, ServiceError,
    VerdictDatabase,
)

#: jobs in the tiny two-module plan; pinned by the reference fixture
TOTAL_JOBS = 17


def _tiny_blocks():
    """Two modules of block C, one seeded defect — FAIL verdicts (with
    traces that must re-validate on every hit) land in the store."""
    chip = ComponentChip(defects={"B2"}, only_blocks=["C"])
    return [("C", chip.blocks[0][1][:2])]


def _service_blocks(config):
    """blocks_provider for daemons under test: every config maps to
    the tiny fixture scope (module-level so fork children can use it)."""
    return _tiny_blocks()


@pytest.fixture(scope="module")
def tiny_blocks():
    return _tiny_blocks()


@pytest.fixture(scope="module")
def reference(tiny_blocks):
    """The serial in-process run every served campaign must reproduce
    byte-for-byte (default config — the same one tests submit)."""
    report = CampaignOrchestrator(tiny_blocks,
                                  config=CampaignConfig()).run()
    assert report.total_properties == TOTAL_JOBS
    assert report.by_status("fail"), "fixture must produce FAILs"
    return report


def _db_campaign(blocks, db):
    return CampaignOrchestrator(blocks, config=CampaignConfig(),
                                cache=db).run()


# ======================================================================
# VerdictDatabase: the ResultCache contract against SQLite
# ======================================================================

class TestVerdictDatabase:
    def test_campaign_through_db_is_byte_identical_and_then_all_hits(
            self, tiny_blocks, reference, tmp_path):
        db = VerdictDatabase(str(tmp_path / "verdicts.sqlite"))
        cold = _db_campaign(tiny_blocks, db)
        assert cold.canonical_bytes() == reference.canonical_bytes()
        assert cold.stats["cache_misses"] == TOTAL_JOBS
        assert len(db) == TOTAL_JOBS
        warm = _db_campaign(tiny_blocks, db)
        assert warm.canonical_bytes() == reference.canonical_bytes()
        assert warm.stats["cache_misses"] == 0
        assert warm.stats["cache_hits"] == TOTAL_JOBS
        stats = db.stats()
        assert stats["stored"] == TOTAL_JOBS
        assert stats["hits"] == TOTAL_JOBS
        assert stats["unsafe_evicted"] == 0

    def test_survives_reopen(self, tiny_blocks, reference, tmp_path):
        path = str(tmp_path / "verdicts.sqlite")
        db = VerdictDatabase(path)
        _db_campaign(tiny_blocks, db)
        db.flush()
        db.close()
        warm = _db_campaign(tiny_blocks, VerdictDatabase(path))
        assert warm.stats["cache_misses"] == 0
        assert warm.canonical_bytes() == reference.canonical_bytes()

    def test_provenance_row(self, tiny_blocks, tmp_path):
        db = VerdictDatabase(str(tmp_path / "verdicts.sqlite"))
        _db_campaign(tiny_blocks, db)
        plan = CampaignOrchestrator(tiny_blocks,
                                    config=CampaignConfig()).plan()
        job = plan.jobs[0]
        row = db.get(job.fingerprint)
        assert row["fingerprint"] == job.fingerprint
        assert row["module"] == job.module.name
        assert row["category"] == job.category
        assert row["status"] in ("pass", "fail", "timeout", "unknown")
        assert isinstance(row["stored_at"], float)
        assert isinstance(row["entry"], dict)
        assert db.get("no-such-fingerprint") is None

    def test_engine_history_matches_the_json_cache(self, tiny_blocks,
                                                   tmp_path):
        """The adaptive portfolio policy must see the same historical
        winners whichever store backs it."""
        db = VerdictDatabase(str(tmp_path / "verdicts.sqlite"))
        cache = ResultCache(str(tmp_path / "cache.json"))
        _db_campaign(tiny_blocks, db)
        CampaignOrchestrator(tiny_blocks, config=CampaignConfig(),
                             cache=cache).run()
        history = db.engine_history()
        assert history == cache.engine_history()
        assert history, "fixture must produce definitive verdicts"

    def test_import_cache_migrates_and_second_run_hits(
            self, tiny_blocks, reference, tmp_path):
        cache_path = str(tmp_path / "legacy-cache.json")
        cache = ResultCache(cache_path)
        CampaignOrchestrator(tiny_blocks, config=CampaignConfig(),
                             cache=cache).run()
        cache.flush()
        db = VerdictDatabase(str(tmp_path / "verdicts.sqlite"))
        assert db.import_cache(cache_path) == TOTAL_JOBS
        assert len(db) == TOTAL_JOBS
        served = _db_campaign(tiny_blocks, db)
        assert served.stats["cache_misses"] == 0
        assert served.canonical_bytes() == reference.canonical_bytes()
        # importing again is idempotent: nothing on disk is newer
        assert db.import_cache(cache_path) == 0

    def test_import_rejects_rotten_or_foreign_caches(self, tmp_path):
        db = VerdictDatabase(str(tmp_path / "verdicts.sqlite"))
        missing = str(tmp_path / "nope.json")
        assert db.import_cache(missing) == 0
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert db.import_cache(str(garbage)) == 0
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({
            "version": ResultCache.VERSION,
            "repro_version": "0.0.0-not-this-build",
            "entries": {"fp": {"status": "pass"}},
        }))
        assert db.import_cache(str(foreign)) == 0
        assert len(db) == 0


# ======================================================================
# Corruption matrix: every way the database can rot degrades to a
# miss, scoped as tightly as the damage allows — mirroring the JSON
# cache's matrix in test_orchestrate.py
# ======================================================================

def _db_truncate_half(path):
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


def _db_garbage_file(path):
    path.write_bytes(b"this is not a sqlite database at all")


def _db_wrong_repro_version(path):
    conn = sqlite3.connect(str(path))
    conn.execute("UPDATE meta SET value = '0.0.0-not-this-build' "
                 "WHERE key = 'repro_version'")
    conn.commit()
    conn.close()


def _db_wrong_schema_version(path):
    conn = sqlite3.connect(str(path))
    conn.execute("UPDATE meta SET value = '999' WHERE key = 'schema'")
    conn.commit()
    conn.close()


def _db_fail_entries_empty_trace(path):
    conn = sqlite3.connect(str(path))
    rows = conn.execute(
        "SELECT fingerprint, entry FROM verdicts WHERE status = 'fail'"
    ).fetchall()
    for fingerprint, payload in rows:
        entry = json.loads(payload)
        entry["trace"] = []
        conn.execute("UPDATE verdicts SET entry = ? "
                     "WHERE fingerprint = ?",
                     (json.dumps(entry), fingerprint))
    conn.commit()
    conn.close()


def _db_one_entry_garbage(path):
    conn = sqlite3.connect(str(path))
    conn.execute(
        "UPDATE verdicts SET entry = 'Zzz not json' WHERE fingerprint ="
        " (SELECT fingerprint FROM verdicts ORDER BY fingerprint"
        "  LIMIT 1)")
    conn.commit()
    conn.close()


#: (mutator, which entries must degrade to misses)
DB_CORRUPTIONS = [
    pytest.param(_db_truncate_half, "all", id="truncated-file"),
    pytest.param(_db_garbage_file, "all", id="garbage-file"),
    pytest.param(_db_wrong_repro_version, "all",
                 id="wrong-repro-version"),
    pytest.param(_db_wrong_schema_version, "all",
                 id="wrong-schema-version"),
    pytest.param(_db_fail_entries_empty_trace, "fails",
                 id="fail-empty-trace"),
    pytest.param(_db_one_entry_garbage, "one", id="non-json-entry"),
]


class TestVerdictDbCorruptionMatrix:
    @pytest.mark.parametrize("mutate,scope", DB_CORRUPTIONS)
    def test_corruption_degrades_to_miss_never_flips_verdict(
            self, mutate, scope, tiny_blocks, tmp_path):
        path = tmp_path / "verdicts.sqlite"
        db = VerdictDatabase(str(path))
        cold = _db_campaign(tiny_blocks, db)
        db.flush()  # fold the WAL so mutators see one whole file
        db.close()
        conn = sqlite3.connect(str(path))
        fails = conn.execute("SELECT COUNT(*) FROM verdicts "
                             "WHERE status = 'fail'").fetchone()[0]
        conn.close()
        assert fails > 0, "fixture must store FAIL verdicts"
        mutate(path)
        rerun_db = VerdictDatabase(str(path))
        rerun = _db_campaign(tiny_blocks, rerun_db)
        expected_misses = {
            "all": TOTAL_JOBS, "fails": fails, "one": 1,
        }[scope]
        assert rerun.stats["cache_misses"] == expected_misses
        assert rerun.stats["cache_hits"] == TOTAL_JOBS - expected_misses
        assert [r.result.status for r in rerun.results] == \
            [r.result.status for r in cold.results]
        assert format_table2(rerun) == format_table2(cold)
        if scope != "all":
            assert rerun_db.stats()["unsafe_evicted"] == expected_misses
        # the rerun healed the store: a further run is all hits
        healed = _db_campaign(tiny_blocks, VerdictDatabase(str(path)))
        assert healed.stats["cache_misses"] == 0


# ======================================================================
# Submission queue: in-flight dedup, one run for N clients
# ======================================================================

class TestCampaignQueue:
    def test_duplicate_inflight_submissions_share_one_run(
            self, reference, tmp_path):
        db = VerdictDatabase(str(tmp_path / "verdicts.sqlite"))
        queue = CampaignQueue(db, str(tmp_path / "svc"),
                              blocks_provider=_service_blocks,
                              throttle=0.05)
        try:
            config = CampaignConfig()
            first, deduped_first = queue.submit(config, tenant="a")
            second, deduped_second = queue.submit(config, tenant="b")
            assert not deduped_first
            assert deduped_second
            assert second is first  # one run, two subscribers
            assert first.finished.wait(timeout=120.0)
            assert first.state == "done"
            assert first.canonical == \
                reference.canonical_bytes().decode("utf-8")
            # one underlying job run — not one per client
            assert first.executed == TOTAL_JOBS
            assert db.stats()["stored"] == TOTAL_JOBS
            metrics = queue.metrics()
            assert metrics["totals"]["submissions"] == 2
            assert metrics["totals"]["deduped"] == 1
            assert metrics["totals"]["jobs_executed"] == TOTAL_JOBS
        finally:
            queue.close()
            db.close()

    def test_distinct_configs_queue_separately(self, tmp_path):
        db = VerdictDatabase(str(tmp_path / "verdicts.sqlite"))
        queue = CampaignQueue(db, str(tmp_path / "svc"),
                              blocks_provider=_service_blocks,
                              throttle=0.05)
        try:
            first, _ = queue.submit(CampaignConfig())
            second, deduped = queue.submit(
                CampaignConfig(engines="auto"))
            assert not deduped
            assert second is not first
            assert first.finished.wait(timeout=120.0)
            assert second.finished.wait(timeout=120.0)
            assert {first.state, second.state} == {"done"}
        finally:
            queue.close()
            db.close()

    def test_completed_run_resubmission_is_all_verdict_hits(
            self, reference, tmp_path):
        db = VerdictDatabase(str(tmp_path / "verdicts.sqlite"))
        queue = CampaignQueue(db, str(tmp_path / "svc"),
                              blocks_provider=_service_blocks)
        try:
            config = CampaignConfig()
            first, _ = queue.submit(config)
            assert first.finished.wait(timeout=120.0)
            # journal cleaned up: the campaign's truth lives in the db
            assert not os.path.exists(queue.journal_path(config))
            again, deduped = queue.submit(config)
            assert not deduped  # first run already finished
            assert again.finished.wait(timeout=120.0)
            assert again.executed == 0
            assert again.verdict_hits == TOTAL_JOBS
            assert again.canonical == first.canonical == \
                reference.canonical_bytes().decode("utf-8")
        finally:
            queue.close()
            db.close()


# ======================================================================
# The HTTP boundary
# ======================================================================

@pytest.fixture()
def daemon(tmp_path):
    daemon = ServiceDaemon(
        CampaignConfig(), port=0,
        db_path=str(tmp_path / "verdicts.sqlite"),
        data_dir=str(tmp_path / "svc"),
        blocks_provider=_service_blocks,
    ).start()
    yield daemon
    daemon.close()


class TestServiceApi:
    def test_healthz_and_metrics_schema(self, daemon):
        client = ServiceClient(daemon.url)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["verdicts"] == 0
        metrics = client.metrics()
        assert metrics["stats_schema"] == STATS_SCHEMA
        assert metrics["queue"]["totals"] == {}
        assert metrics["verdict_db"]["entries"] == 0

    def test_cold_run_then_cache_hit_resubmission(self, daemon,
                                                  reference):
        client = ServiceClient(daemon.url)
        config = CampaignConfig()
        ticket = client.submit(config, tenant="alpha")
        assert not ticket["deduped"]
        assert ticket["config_digest"] == config.digest()
        status = client.wait(ticket["id"], timeout=120.0)
        assert status["state"] == "done"
        assert status["stats_schema"] == STATS_SCHEMA
        assert status["jobs"] == TOTAL_JOBS
        assert status["executed"] == TOTAL_JOBS
        assert status["verdict_hits"] == 0
        # the acceptance bar: served bytes == serial in-process bytes
        assert status["canonical"] == \
            reference.canonical_bytes().decode("utf-8")
        assert "orchestrator" in status["counter_groups"]

        again = client.submit(config, tenant="beta")
        final = client.wait(again["id"], timeout=120.0)
        assert final["executed"] == 0
        assert final["verdict_hits"] == TOTAL_JOBS
        assert final["canonical"] == status["canonical"]
        # /metrics must prove the re-submission ran zero jobs
        metrics = client.metrics()
        assert metrics["queue"]["tenants"]["beta"]["jobs_executed"] == 0
        assert metrics["queue"]["tenants"]["beta"]["verdict_hits"] == \
            TOTAL_JOBS
        assert metrics["queue"]["tenants"]["alpha"]["jobs_executed"] \
            == TOTAL_JOBS
        assert metrics["verdict_db"]["entries"] == TOTAL_JOBS

    def test_concurrent_duplicate_posts_one_underlying_run(
            self, daemon, reference):
        """Two clients racing the same config: one run id, one job
        run, byte-identical reports on both sides."""
        client = ServiceClient(daemon.url)
        config = CampaignConfig()
        tickets = [None, None]

        def post(slot, tenant):
            tickets[slot] = client.submit(config, tenant=tenant)

        threads = [
            threading.Thread(target=post, args=(slot, tenant))
            for slot, tenant in ((0, "racer-a"), (1, "racer-b"))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tickets[0]["id"] == tickets[1]["id"]
        assert sorted(t["deduped"] for t in tickets) == [False, True]
        finals = [client.wait(t["id"], timeout=120.0) for t in tickets]
        assert finals[0]["canonical"] == finals[1]["canonical"] == \
            reference.canonical_bytes().decode("utf-8")
        assert finals[0]["executed"] == TOTAL_JOBS
        totals = client.metrics()["queue"]["totals"]
        assert totals["submissions"] == 2
        assert totals["deduped"] == 1
        assert totals["jobs_executed"] == TOTAL_JOBS

    def test_watch_streams_events_then_status(self, daemon):
        client = ServiceClient(daemon.url)
        ticket = client.submit(CampaignConfig())
        events, status = [], None
        for message in client.watch(ticket["id"]):
            if "event" in message:
                events.append(message["event"])
            else:
                status = message["status"]
        assert status is not None and status["state"] == "done"
        assert len(events) == TOTAL_JOBS  # one line per property
        assert all(":" in line for line in events)

    def test_verdict_endpoint_serves_provenance(self, daemon,
                                                tiny_blocks):
        client = ServiceClient(daemon.url)
        ticket = client.submit(CampaignConfig())
        client.wait(ticket["id"], timeout=120.0)
        plan = CampaignOrchestrator(tiny_blocks,
                                    config=CampaignConfig()).plan()
        job = plan.jobs[0]
        verdict = client.verdict(job.fingerprint)
        assert verdict["module"] == job.module.name
        assert verdict["category"] == job.category
        with pytest.raises(ServiceError) as exc:
            client.verdict("not-a-fingerprint")
        assert exc.value.status == 404

    def test_config_toml_submission(self, daemon):
        config = CampaignConfig()
        payload = {"config_toml": config.to_toml()}
        import urllib.request
        request = urllib.request.Request(
            f"{daemon.url}/v1/campaigns",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json",
                     "X-Tenant": "toml-tenant"},
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            ticket = json.loads(response.read())
        assert ticket["config_digest"] == config.digest()
        status = ServiceClient(daemon.url).wait(ticket["id"],
                                                timeout=120.0)
        assert status["state"] == "done"
        assert status["tenant"] == "toml-tenant"

    def test_api_errors(self, daemon):
        client = ServiceClient(daemon.url)
        with pytest.raises(ServiceError) as exc:
            client.status("c999999-nope")
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/v1/campaigns",
                            {"config": {"bogus_section": {}}})
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/v1/campaigns", {})
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/v2/nothing")
        assert exc.value.status == 404
        # an unreachable daemon is a ServiceError, not a traceback
        dead = ServiceClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServiceError):
            dead.healthz()


# ======================================================================
# The crash story: SIGKILL the daemon mid-run, restart, resume
# ======================================================================

def _daemon_child(db_path, data_dir, port):
    """Child process: a throttled daemon (~50 ms per property) so the
    parent can land a SIGKILL mid-campaign."""
    daemon = ServiceDaemon(
        CampaignConfig(), host="127.0.0.1", port=port,
        db_path=db_path, data_dir=data_dir,
        blocks_provider=_service_blocks, throttle=0.05,
    )
    daemon.serve_forever()


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestDaemonKillResume:
    def test_sigkilled_daemon_resumes_byte_identical(
            self, reference, tmp_path):
        """Kill the whole daemon process mid-campaign; a restarted
        daemon on the same database and data dir, handed the same
        config, must resume from the journal into the same bytes —
        and a third submission must be a pure verdict-cache hit."""
        db_path = str(tmp_path / "verdicts.sqlite")
        data_dir = str(tmp_path / "svc")
        port = _free_port()
        context = multiprocessing.get_context("fork")
        child = context.Process(target=_daemon_child,
                                args=(db_path, data_dir, port))
        child.start()
        config = CampaignConfig()
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=5.0)
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    client.healthz()
                    break
                except ServiceError:
                    time.sleep(0.05)
            else:
                pytest.fail("daemon child never came up")
            ticket = client.submit(config)
            journal = os.path.join(
                data_dir, f"journal-{ticket['config_digest']}.jsonl")
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if os.path.exists(journal) and \
                        len(open(journal).read().splitlines()) >= 5:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("served campaign never journaled entries")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.join()

        # restart on the same state, re-submit the same config
        daemon = ServiceDaemon(
            CampaignConfig(), port=0, db_path=db_path,
            data_dir=data_dir, blocks_provider=_service_blocks,
        ).start()
        try:
            survivor = ServiceClient(daemon.url)
            resumed = survivor.submit(config)
            status = survivor.wait(resumed["id"], timeout=120.0)
            assert status["state"] == "done"
            replayed = status["journal_replayed"]
            assert 0 < replayed < TOTAL_JOBS
            assert status["canonical"] == \
                reference.canonical_bytes().decode("utf-8")
            assert replayed + status["verdict_hits"] \
                + status["executed"] == TOTAL_JOBS

            # third submission: everything is in the verdict db now
            third = survivor.submit(config)
            final = survivor.wait(third["id"], timeout=120.0)
            assert final["executed"] == 0
            assert final["journal_replayed"] == 0
            assert final["verdict_hits"] == TOTAL_JOBS
            assert final["canonical"] == status["canonical"]
            metrics = survivor.metrics()
            assert metrics["queue"]["totals"]["verdict_hits"] >= \
                TOTAL_JOBS
        finally:
            daemon.close()


# ======================================================================
# [service] config section
# ======================================================================

class TestServiceConfigSection:
    def test_defaults_are_absent_and_unserialized(self):
        config = CampaignConfig()
        assert config.service_host is None
        assert config.service_port is None
        assert config.service_db is None
        assert config.service_data_dir is None
        # absent fields serialize to nothing: pre-service configs
        # keep their digests
        assert "service" not in config.to_dict()

    def test_round_trip_and_digest(self):
        config = CampaignConfig(service_host="0.0.0.0",
                                service_port=9000,
                                service_db="out/v.sqlite",
                                service_data_dir="out/svc")
        data = config.to_dict()
        assert data["service"] == {
            "host": "0.0.0.0", "port": 9000, "db": "out/v.sqlite",
            "data_dir": "out/svc",
        }
        clone = CampaignConfig.from_toml(config.to_toml())
        assert clone == config
        assert clone.digest() == config.digest()
        assert clone.digest() != CampaignConfig().digest()

    @pytest.mark.parametrize("kwargs", [
        {"service_port": -1},
        {"service_port": 65536},
        {"service_port": "8357"},
        {"service_host": ""},
        {"service_host": 17},
        {"service_db": 17},
        {"service_data_dir": b"x"},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            CampaignConfig(**kwargs)

    def test_daemon_resolves_section(self, tmp_path):
        config = CampaignConfig(
            service_host="127.0.0.1", service_port=0,
            service_db=str(tmp_path / "custom.sqlite"),
            service_data_dir=str(tmp_path / "state"),
        )
        daemon = ServiceDaemon(config,
                               blocks_provider=_service_blocks)
        try:
            assert daemon.db.path == str(tmp_path / "custom.sqlite")
            assert daemon.queue.data_dir == str(tmp_path / "state")
            assert daemon.address[0] == "127.0.0.1"
            assert daemon.address[1] > 0  # ephemeral port resolved
        finally:
            daemon.close()


# ======================================================================
# Presets and the stats schema
# ======================================================================

class TestPresets:
    def test_every_preset_parses(self):
        from repro.cli import PRESET_NAMES, resolve_config_path
        for name in PRESET_NAMES:
            path = resolve_config_path(f"preset:{name}")
            assert os.path.exists(path)
            CampaignConfig.load(path)  # must not raise

    def test_plain_paths_pass_through(self):
        from repro.cli import resolve_config_path
        assert resolve_config_path("some/file.toml") == "some/file.toml"

    def test_unknown_preset_is_a_config_error(self):
        from repro.cli import resolve_config_path
        with pytest.raises(ConfigError, match="unknown preset"):
            resolve_config_path("preset:hourly")

    def test_smoke_preset_is_the_fast_one(self):
        from repro.cli import resolve_config_path
        config = CampaignConfig.load(resolve_config_path("preset:smoke"))
        assert config.executor == "serial"
        assert config.blocks == ("C",)


class TestStatsSchema:
    def test_reports_carry_the_schema_stamp(self, reference):
        assert reference.stats["stats_schema"] == STATS_SCHEMA

    def test_counter_groups_shape(self, reference):
        groups = counter_groups(reference.stats)
        assert groups["orchestrator"]["jobs"] == TOTAL_JOBS
        assert "engine_attempts" in groups
        assert "compile_store_run" in groups
        for counters in groups.values():
            assert all(isinstance(v, int) and not isinstance(v, bool)
                       for v in counters.values())

    def test_tolerates_foreign_shapes(self):
        assert counter_groups({}) == {}
        assert counter_groups({"fleet": "not-a-dict",
                               "jobs": "many"}) == {}


class TestCliSubmit:
    def test_submit_exit_code_mirrors_campaign_run(self, daemon,
                                                   tmp_path, capsys):
        from repro.cli import main
        config_path = tmp_path / "campaign.toml"
        config_path.write_text(CampaignConfig().to_toml())
        code = main(["submit", "--config", str(config_path),
                     "--url", daemon.url])
        out = capsys.readouterr().out
        # the tiny fixture seeds a defect, so the campaign FAILs: the
        # CLI must say so and exit 1, exactly like `campaign run`
        assert code == 1
        assert "FAILURES" in out
        assert f"{TOTAL_JOBS} jobs" in out
