"""Shared BDD workspaces: manager reuse must never change a verdict.

Covers the workspace pool itself (lease/reuse/eviction/memo policies),
manager-level soundness (clear_memos, budget exhaustion mid-operation),
engine wiring (``EngineOptions.workspace``), and the campaign-level
contract: byte-identical ``CampaignReport.canonical_bytes`` with
sharing on or off, across all three executors.
"""

import pytest

from repro.chip import ComponentChip
from repro.formal.bdd import Bdd, nodes_created_total
from repro.formal.budget import BudgetExceeded, ResourceBudget
from repro.formal.engine import (
    EngineOptions, ModelChecker, PASS, TIMEOUT,
)
from repro.formal.workspace import BddWorkspace, WorkspaceBinding
from repro.orchestrate import (
    CampaignOrchestrator, EngineConfig, ParallelExecutor, SerialExecutor,
    WorkStealingExecutor, plan_campaign, run_check_job,
)


def _bdd_engines(**overrides):
    overrides.setdefault("method", "bdd-combined")
    overrides.setdefault("sat_conflicts", 500_000)
    overrides.setdefault("bdd_nodes", 5_000_000)
    return (EngineConfig(**overrides),)


@pytest.fixture(scope="module")
def small_blocks():
    """First four modules of block C — enough structure, fast checks."""
    chip = ComponentChip(only_blocks=["C"])
    return [("C", chip.blocks[0][1][:4])]


@pytest.fixture(scope="module")
def cold_report(small_blocks):
    """Reference outcome with sharing explicitly off — campaigns now
    default to ``share_bdd=True``, and these tests are exactly the
    cold-vs-shared comparison, so the cold side must opt out."""
    return CampaignOrchestrator(
        small_blocks, engines=_bdd_engines(),
        executor=SerialExecutor(share_bdd=False),
    ).run()


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------

class TestWorkspacePool:
    def test_lease_creates_then_reuses(self):
        ws = BddWorkspace()
        first = ws.lease("m1")
        assert ws.lease("m1") is first
        assert ws.lease("m2") is not first
        stats = ws.stats()
        assert stats["leases"] == 3
        assert stats["reuses"] == 1
        assert stats["managers"] == 2

    def test_bind_scopes_to_one_key(self):
        ws = BddWorkspace()
        binding = ws.bind("m1")
        assert isinstance(binding, WorkspaceBinding)
        assert binding.lease() is ws.lease("m1")

    def test_lease_rearms_budget(self):
        ws = BddWorkspace()
        first_budget = ResourceBudget(bdd_nodes=100)
        manager = ws.lease("m1", first_budget)
        assert manager.budget is first_budget
        second_budget = ResourceBudget(bdd_nodes=200)
        assert ws.lease("m1", second_budget).budget is second_budget
        assert ws.lease("m1").budget is None  # disarmed

    def test_lru_eviction_at_capacity(self):
        ws = BddWorkspace(max_managers=2)
        a = ws.lease("a")
        ws.lease("b")
        ws.lease("a")            # refresh a: b is now least recent
        ws.lease("c")            # evicts b
        assert ws.manager("b") is None
        assert ws.manager("a") is a
        assert ws.stats()["evictions"] == 1

    def test_retain_memos_false_clears_between_leases(self):
        ws = BddWorkspace(retain_memos=False)
        manager = ws.lease("m")
        x, y = manager.var_node(0), manager.var_node(1)
        manager.and_(x, y)
        assert manager._ite_memo
        assert ws.lease("m") is manager
        assert not manager._ite_memo

    def test_oversize_manager_discarded(self):
        ws = BddWorkspace(max_manager_nodes=4)
        manager = ws.lease("m")
        for var in range(6):
            manager.var_node(var)
        fresh = ws.lease("m")
        assert fresh is not manager
        assert ws.stats()["oversize_discards"] == 1

    def test_discard_and_clear_memos(self):
        ws = BddWorkspace()
        manager = ws.lease("m")
        manager.and_(manager.var_node(0), manager.var_node(1))
        ws.clear_memos("m")
        assert not manager._ite_memo
        ws.discard("m")
        assert ws.manager("m") is None
        assert ws.lease("m") is not manager

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            BddWorkspace(max_managers=0)
        with pytest.raises(ValueError):
            BddWorkspace(max_manager_nodes=1)


# ----------------------------------------------------------------------
# manager-level soundness
# ----------------------------------------------------------------------

class TestManagerReuse:
    def test_clear_memos_keeps_node_table_sound(self):
        """Recomputing cleared operations rebuilds no nodes and returns
        the same canonical results."""
        manager = Bdd()
        x, y, z = (manager.var_node(v) for v in range(3))
        before = [manager.ite(x, y, z),
                  manager.and_exists(x, manager.or_(y, z), frozenset([1])),
                  manager.exists(manager.xor_(x, y), frozenset([0]))]
        table_size = manager.num_nodes()
        manager.clear_memos()
        after = [manager.ite(x, y, z),
                 manager.and_exists(x, manager.or_(y, z), frozenset([1])),
                 manager.exists(manager.xor_(x, y), frozenset([0]))]
        assert before == after
        assert manager.num_nodes() == table_size  # all hash-cons hits

    def test_budget_exhaustion_leaves_manager_consistent(self):
        """A BudgetExceeded mid-operation must not poison the table:
        the next problem (fresh budget) computes correct results."""
        manager = Bdd(ResourceBudget(bdd_nodes=5))
        variables = [manager.var_node(v) for v in range(3)]
        with pytest.raises(BudgetExceeded):
            for _ in range(10):
                acc = manager.var_node(0)
                for v in range(1, 8):
                    acc = manager.xor_(acc, manager.var_node(v))
        manager.rearm(ResourceBudget(bdd_nodes=1_000_000))
        x, y = variables[0], variables[1]
        reference = Bdd()
        rx, ry = reference.var_node(0), reference.var_node(1)
        # same structure ⇒ same truth assignments on both managers
        for bits in ((0, 0), (0, 1), (1, 0), (1, 1)):
            assignment = {0: bits[0], 1: bits[1]}
            assert (manager.eval(manager.xor_(x, y), assignment)
                    == reference.eval(reference.xor_(rx, ry), assignment))

    def test_supplied_manager_disarmed_without_budget(self, small_blocks):
        """SymbolicModel(bdd=manager) with no budget must disarm the
        manager — a spent budget from its previous problem would
        otherwise trip a 'check' that was given no budget at all."""
        from repro.formal.reachability import SymbolicModel
        from repro.orchestrate import compile_job
        plan = plan_campaign(small_blocks, _bdd_engines())
        ts = compile_job(plan.jobs[0])
        manager = Bdd(ResourceBudget(bdd_nodes=10))
        with pytest.raises(BudgetExceeded):
            SymbolicModel(ts, budget=manager.budget, bdd=manager)
        model = SymbolicModel(ts, bdd=manager)  # no budget: disarmed
        assert manager.budget is None
        assert model.bdd is manager

    def test_warmed_manager_charges_less_budget(self, small_blocks):
        """The second identical problem on a shared manager creates
        (and is charged for) strictly fewer nodes."""
        plan = plan_campaign(small_blocks, _bdd_engines())
        job = plan.jobs[0]
        from repro.orchestrate import compile_job
        ts = compile_job(job)
        ws = BddWorkspace()
        cold_budget = ResourceBudget(bdd_nodes=5_000_000)
        checker = ModelChecker(ts, budget=cold_budget)
        options = EngineOptions(workspace=ws.bind("m"))
        first = checker.check(method="bdd-combined", options=options)
        warm_budget = ResourceBudget(bdd_nodes=5_000_000)
        checker = ModelChecker(ts, budget=warm_budget)
        second = checker.check(method="bdd-combined", options=options)
        assert first.status == second.status
        assert first.depth == second.depth
        assert warm_budget.spent_nodes < cold_budget.spent_nodes
        assert ws.stats()["reuses"] == 1


# ----------------------------------------------------------------------
# engine and job wiring
# ----------------------------------------------------------------------

class TestEngineWiring:
    @pytest.mark.parametrize("method", ["bdd-forward", "bdd-backward",
                                        "bdd-combined", "pobdd", "auto"])
    def test_shared_verdict_matches_cold(self, small_blocks, method):
        plan = plan_campaign(small_blocks, _bdd_engines(method=method))
        from repro.orchestrate import compile_job
        job = plan.jobs[0]
        ts = compile_job(job)
        budget = ResourceBudget(bdd_nodes=5_000_000,
                                sat_conflicts=500_000)
        cold = ModelChecker(ts, budget=budget).check(method=method)
        ws = BddWorkspace()
        shared = ModelChecker(
            ts, budget=ResourceBudget(bdd_nodes=5_000_000,
                                      sat_conflicts=500_000)
        ).check(method=method,
                options=EngineOptions(workspace=ws.bind(job.workspace_key)))
        assert (cold.status, cold.depth) == (shared.status, shared.depth)

    def test_workspace_excluded_from_fingerprints(self):
        config = EngineConfig(method="bdd-combined")
        assert "workspace" not in config.describe()
        # and the options slice carries no workspace at plan level
        assert config.options().workspace is None

    def test_run_check_job_binds_module_key(self, small_blocks):
        plan = plan_campaign(small_blocks, _bdd_engines())
        ws = BddWorkspace()
        first_module = plan.jobs[0].workspace_key
        same_module = [job for job in plan.jobs
                       if job.workspace_key == first_module]
        assert len(same_module) > 1
        for job in same_module:
            run_check_job(job, workspace=ws)
        stats = ws.stats()
        assert stats["managers"] == 1
        assert stats["reuses"] == len(same_module) - 1

    def test_portfolio_stages_share_one_manager(self, small_blocks):
        """TIMEOUT in a starved stage must not poison the generous
        stage leasing the same manager — the definitive verdict wins
        and matches the cold run."""
        starved_then_fed = (
            EngineConfig(method="bdd-combined", bdd_nodes=50),
            EngineConfig(method="bdd-combined", bdd_nodes=5_000_000),
        )
        plan = plan_campaign(small_blocks, starved_then_fed)
        job = plan.jobs[0]
        ws = BddWorkspace()
        shared = run_check_job(job, workspace=ws).result
        cold = run_check_job(job).result
        attempts = [a["status"] for a in shared.stats["portfolio"]]
        assert attempts[0] == TIMEOUT
        assert shared.status == cold.status == PASS
        assert shared.depth == cold.depth
        assert ws.stats()["reuses"] >= 1  # stage 2 reused stage 1's table

    def test_planner_module_groups_contiguous(self, small_blocks):
        plan = plan_campaign(small_blocks, _bdd_engines())
        groups = plan.module_groups()
        assert sum(len(indices) for indices in groups.values()) \
            == plan.total_jobs
        for indices in groups.values():
            assert indices == list(range(indices[0],
                                         indices[0] + len(indices)))


# ----------------------------------------------------------------------
# campaign-level contract
# ----------------------------------------------------------------------

class TestCampaignSharing:
    def test_serial_sharing_fewer_nodes_same_bytes(self, small_blocks,
                                                   cold_report):
        before = nodes_created_total()
        cold_again = CampaignOrchestrator(
            small_blocks, engines=_bdd_engines(),
            executor=SerialExecutor(share_bdd=False)).run()
        cold_nodes = nodes_created_total() - before
        ws = BddWorkspace()
        before = nodes_created_total()
        shared = CampaignOrchestrator(
            small_blocks, engines=_bdd_engines(),
            executor=SerialExecutor(workspace=ws)).run()
        shared_nodes = nodes_created_total() - before
        assert shared.canonical_bytes() == cold_report.canonical_bytes()
        assert cold_again.canonical_bytes() == cold_report.canonical_bytes()
        assert shared_nodes < cold_nodes
        assert ws.stats()["reuses"] > 0

    @pytest.mark.parametrize("make_executor", [
        lambda: SerialExecutor(share_bdd=True),
        lambda: ParallelExecutor(processes=2, share_bdd=True),
        lambda: WorkStealingExecutor(processes=2, share_bdd=True),
    ], ids=["serial", "parallel", "work-stealing"])
    def test_byte_identical_across_executors(self, small_blocks,
                                             cold_report, make_executor):
        report = CampaignOrchestrator(
            small_blocks, engines=_bdd_engines(),
            executor=make_executor()).run()
        assert report.canonical_bytes() == cold_report.canonical_bytes()

    def test_starved_job_does_not_poison_next_job(self, small_blocks):
        """A TIMEOUT (budget exhausted mid-build) on a shared manager
        leaves the next job of the same module sound.  Under a
        *binding* node budget the contract is one-sided: a warmed
        manager charges only fresh nodes, so sharing may settle a
        check that TIMEOUTs cold — but never the reverse, and never a
        different PASS/FAIL verdict."""
        starved = (EngineConfig(method="bdd-combined", bdd_nodes=50),)
        cold = CampaignOrchestrator(
            small_blocks, engines=starved,
            executor=SerialExecutor(share_bdd=False)).run()
        shared = CampaignOrchestrator(
            small_blocks, engines=starved,
            executor=SerialExecutor(share_bdd=True)).run()
        statuses = [r.result.status for r in cold.results]
        assert TIMEOUT in statuses  # the starvation is real
        for cold_record, shared_record in zip(cold.results,
                                              shared.results):
            if cold_record.result.status == TIMEOUT:
                continue  # sharing may strengthen TIMEOUT, nothing else
            assert shared_record.result.status \
                == cold_record.result.status

    @pytest.mark.parametrize("make_executor", [
        lambda opts: SerialExecutor(share_bdd=True, workspace_options=opts),
        lambda opts: ParallelExecutor(processes=2, share_bdd=True,
                                      workspace_options=opts),
        lambda opts: WorkStealingExecutor(processes=2, share_bdd=True,
                                          workspace_options=opts),
    ], ids=["serial", "parallel", "work-stealing"])
    def test_workspace_options_reach_workers(self, small_blocks,
                                             cold_report, make_executor):
        """The memory valves are tunable through every executor and
        never change the outcome."""
        options = {"max_managers": 1, "retain_memos": False,
                   "max_manager_nodes": 10_000}
        report = CampaignOrchestrator(
            small_blocks, engines=_bdd_engines(),
            executor=make_executor(options)).run()
        assert report.canonical_bytes() == cold_report.canonical_bytes()

    def test_workspace_persists_across_runs(self, small_blocks,
                                            cold_report):
        """An explicit workspace stays warm across campaigns — the
        ECO-rerun case — and reuses managers from run to run."""
        ws = BddWorkspace()
        executor = SerialExecutor(workspace=ws)
        CampaignOrchestrator(small_blocks, engines=_bdd_engines(),
                             executor=executor).run()
        managers_after_first = ws.stats()["managers"]
        reuses_after_first = ws.stats()["reuses"]
        second = CampaignOrchestrator(small_blocks, engines=_bdd_engines(),
                                      executor=executor).run()
        assert second.canonical_bytes() == cold_report.canonical_bytes()
        assert ws.stats()["managers"] == managers_after_first
        assert ws.stats()["reuses"] > reuses_after_first
