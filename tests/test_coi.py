"""Cone-of-influence content addressing (`repro.formal.coi`).

The load-bearing property: an assertion's cone digest depends on
exactly the logic in its support cone.  A defect *outside* the cone
leaves the digest — hence the job fingerprint, hence the cached
verdict — unchanged; a defect *inside* changes it.  Slice compilation
must be invisible in outcomes: the transition system built from the
cone slice yields the same verdict as the full-module compile, and a
whole campaign run with cone fingerprints + slicing stays
byte-identical to the legacy module-digest run.
"""

import os

import pytest

from repro.core.stereotypes import stereotype_vunits
from repro.formal.budget import ResourceBudget
from repro.formal.coi import cone_digest, index_module
from repro.formal.engine import ModelChecker
from repro.orchestrate import (
    CampaignConfig, CampaignOrchestrator, ConfigError, EngineConfig,
    plan_campaign,
)
from repro.orchestrate.planner import COI_FINGERPRINT_MODES
from repro.psl.compile import compile_assertion, compile_sliced_assertion
from repro.rtl.inject import make_verifiable
from repro.scenario.family import FamilySpec, generate_family
from repro.scenario.mutate import apply_defect, sites_for_family
from repro.scenario.sweep import record_digest, run_sweep

#: one small family module with one datapath defect: wrong-rotate
#: touches a handful of cones and leaves the rest bit-for-bit alone
SPEC = FamilySpec(blocks=1, modules_per_block=1, datapath_width=4,
                  pipeline_depth=1, error_report_width=2)


def _engines(**overrides):
    overrides.setdefault("sat_conflicts", 500_000)
    overrides.setdefault("bdd_nodes", 5_000_000)
    return (EngineConfig(**overrides),)


def _assertion_digests(module):
    """(vunit name, assert name) -> cone digest over all stereotypes."""
    return {
        (vunit.name, assert_name): cone_digest(module, vunit, assert_name)
        for vunit in stereotype_vunits(module)
        for assert_name, _ in vunit.asserted()
    }


@pytest.fixture(scope="module")
def golden_and_mutant():
    selected = sites_for_family(
        generate_family(SPEC), classes=["wrong-rotate"],
        sites_per_module=1, seed=SPEC.seed,
    )
    assert selected, "family must yield at least one wrong-rotate site"
    _, module, site = selected[0]
    return make_verifiable(module), make_verifiable(apply_defect(module, site))


class TestConeDigest:
    def test_digest_deterministic(self, golden_and_mutant):
        golden, _ = golden_and_mutant
        assert _assertion_digests(golden) == _assertion_digests(golden)

    def test_mutation_splits_digests_by_cone(self, golden_and_mutant):
        """The central claim: a one-site defect changes the digest of
        exactly the assertions whose cone reads the mutated logic, and
        no others — both sides must be non-empty for a datapath site."""
        golden, mutant = golden_and_mutant
        before = _assertion_digests(golden)
        after = _assertion_digests(mutant)
        assert before.keys() == after.keys()
        changed = {key for key in before if before[key] != after[key]}
        unchanged = set(before) - changed
        assert changed, "the defect must land inside at least one cone"
        assert unchanged, "the defect must stay outside at least one cone"

    def test_shared_index_matches_oneshot_helper(self, golden_and_mutant):
        golden, _ = golden_and_mutant
        index = index_module(golden)
        for vunit in stereotype_vunits(golden):
            for assert_name, _ in vunit.asserted():
                assert index.info(vunit, assert_name).digest == \
                    cone_digest(golden, vunit, assert_name)


class TestSliceCompile:
    def test_slice_verdicts_match_full_compile(self, verifiable_leaf,
                                               budget):
        for vunit in stereotype_vunits(verifiable_leaf):
            for assert_name, _ in vunit.asserted():
                full = compile_assertion(verifiable_leaf, vunit,
                                         assert_name)
                sliced = compile_sliced_assertion(verifiable_leaf, vunit,
                                                  assert_name)
                assert sliced.size_stats()["latches"] <= \
                    full.size_stats()["latches"]
                want = ModelChecker(full, budget).check(
                    method="bdd-forward")
                got = ModelChecker(sliced, budget).check(
                    method="bdd-forward")
                assert got.status == want.status, \
                    f"{vunit.name}.{assert_name}"


class TestPlannerFingerprints:
    def test_unknown_mode_rejected(self, verifiable_leaf):
        with pytest.raises(ValueError, match="coi_fingerprints"):
            plan_campaign([("L", [verifiable_leaf])], _engines(),
                          coi_fingerprints="quantum")
        assert COI_FINGERPRINT_MODES == ("module", "cone")

    def test_cone_mode_rekeys_every_job(self, verifiable_leaf):
        blocks = [("L", [verifiable_leaf])]
        module_plan = plan_campaign(blocks, _engines())
        cone_plan = plan_campaign(blocks, _engines(),
                                  coi_fingerprints="cone")
        assert all(job.cone_digest == "" for job in module_plan.jobs)
        assert all(job.cone_digest for job in cone_plan.jobs)
        for before, after in zip(module_plan.jobs, cone_plan.jobs):
            assert before.fingerprint != after.fingerprint

    def test_slice_alone_keeps_module_fingerprints(self, verifiable_leaf):
        """``slice = true`` changes how jobs compile, never what they
        are: fingerprints stay module-scoped, caches stay valid."""
        blocks = [("L", [verifiable_leaf])]
        plain = plan_campaign(blocks, _engines())
        sliced = plan_campaign(blocks, _engines(), coi_slice=True)
        assert [job.fingerprint for job in plain.jobs] == \
            [job.fingerprint for job in sliced.jobs]
        assert all(job.compile_slice for job in sliced.jobs)
        assert all(job.cone_digest for job in sliced.jobs)


class TestVerdictReuse:
    def test_untouched_cone_jobs_hit_the_golden_cache(
            self, golden_and_mutant, tmp_path):
        """Warm the cache with the *golden* module, then run the
        mutant: every assertion whose cone the defect missed must be a
        cache hit by construction — the exact split the digests
        predict."""
        golden, mutant = golden_and_mutant
        changed = {
            key for key, digest in _assertion_digests(golden).items()
            if _assertion_digests(mutant)[key] != digest
        }
        config = CampaignConfig(coi_fingerprints="cone",
                                cache_path=str(tmp_path / "cache.json"))
        CampaignOrchestrator([("G", [golden])], engines=_engines(),
                             config=config).run()
        report = CampaignOrchestrator([("G", [mutant])],
                                      engines=_engines(),
                                      config=config).run()
        coi = report.stats["coi"]
        assert coi["fingerprints"] == "cone"
        assert coi["jobs_executed"] == len(changed)
        assert coi["cone_hits"] == report.stats["jobs"] - len(changed)
        assert coi["cone_hits"] > 0

    def test_module_mode_reports_zero_cone_hits(self, verifiable_leaf,
                                                tmp_path):
        config = CampaignConfig(
            cache_path=str(tmp_path / "cache.json"))
        blocks = [("L", [verifiable_leaf])]
        CampaignOrchestrator(blocks, engines=_engines(),
                             config=config).run()
        report = CampaignOrchestrator(blocks, engines=_engines(),
                                      config=config).run()
        coi = report.stats["coi"]
        assert coi["fingerprints"] == "module"
        assert coi["cone_hits"] == 0          # hits exist, cones don't
        assert report.stats["cache_hits"] == report.stats["jobs"]


class TestWarmSweep:
    def test_warm_golden_executes_fewer_jobs_same_digest(self, tmp_path):
        config = CampaignConfig(coi_fingerprints="cone", coi_slice=True,
                                cache_path=str(tmp_path / "cache.json"))
        kwargs = dict(config=config, classes=["wrong-rotate"],
                      sites_per_module=1)
        cold_record, _ = run_sweep(SPEC, **kwargs)
        os.remove(config.cache_path)
        warm_record, _ = run_sweep(SPEC, warm_golden=True, **kwargs)

        assert record_digest(warm_record) == record_digest(cold_record)
        cold, warm = cold_record["timing"], warm_record["timing"]
        assert cold["golden"] is None
        assert warm["golden"]["jobs"] > 0
        assert warm["cone_hits"] > 0
        assert warm["jobs_executed"] < cold["jobs_executed"]


class TestCoiConfig:
    def test_toml_round_trip(self):
        config = CampaignConfig.from_toml(
            '[coi]\nfingerprints = "cone"\nslice = true\n')
        assert config.coi_fingerprints == "cone"
        assert config.coi_slice is True
        again = CampaignConfig.from_toml(config.to_toml())
        assert again.digest() == config.digest()

    def test_absent_section_keeps_legacy_digest(self):
        """Pre-COI configs must not change identity: ``None`` defaults
        serialize to nothing, so stamped digests stay put."""
        assert CampaignConfig(coi_fingerprints=None,
                              coi_slice=None).digest() == \
            CampaignConfig().digest()

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigError, match="coi_fingerprints"):
            CampaignConfig(coi_fingerprints="quantum")
        with pytest.raises(ConfigError, match="coi_slice"):
            CampaignConfig(coi_slice=1)
