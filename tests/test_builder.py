"""Parity-protected state builders."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl.builder import (
    ProtectedState, he_report, is_any_of, latched_flag, one_hot_codes,
    parity_counter, parity_fsm, priority_select,
)
from repro.rtl.elaborate import elaborate
from repro.rtl.module import Module
from repro.rtl.parity import encode_value, value_ok
from repro.rtl.signals import Input, const, evaluate
from repro.sim.simulator import Simulator


class TestProtectedState:
    def test_reset_is_encoded(self):
        m = Module("m")
        state = ProtectedState(m, "s", 8, reset_data=0x42)
        assert state.reg.reset == encode_value(0x42, 8)

    def test_drive_width_checked(self):
        m = Module("m")
        state = ProtectedState(m, "s", 8)
        with pytest.raises(ValueError):
            state.drive(Input("x", 4))

    def test_drive_recomputes_parity(self):
        m = Module("m")
        data_in = m.input("D", 8)
        state = ProtectedState(m, "s", 8)
        state.drive(data_in)
        m.output("OK", state.check_ok())
        sim = Simulator(elaborate(m))
        for value in (0x00, 0xFF, 0xA5, 0x01):
            sim.step({"D": value})
            assert value_ok(sim.peek("s"))
            assert sim.peek("s") & 0xFF == value

    def test_check_fail_detects_poked_corruption(self):
        m = Module("m")
        state = ProtectedState(m, "s", 8)
        state.drive(state.data)
        m.output("FAIL", state.check_fail())
        sim = Simulator(elaborate(m))
        sim.poke("s", encode_value(0, 8) ^ 1)   # flip one bit
        outs = sim.step({})
        assert outs["FAIL"] == 1


class TestCounter:
    def test_counts_and_keeps_parity(self):
        m = Module("m")
        en = m.input("EN", 1)
        counter = parity_counter(m, "c", 4, enable=en)
        m.output("OK", counter.check_ok())
        sim = Simulator(elaborate(m))
        for cycle in range(20):
            sim.step({"EN": 1})
            word = sim.peek("c")
            assert value_ok(word)
            assert word & 0xF == (cycle + 1) % 16

    def test_hold_when_disabled(self):
        m = Module("m")
        en = m.input("EN", 1)
        counter = parity_counter(m, "c", 4, enable=en)
        m.output("OK", counter.check_ok())
        sim = Simulator(elaborate(m))
        sim.step({"EN": 1})
        before = sim.peek("c")
        sim.step({"EN": 0})
        assert sim.peek("c") == before

    def test_clear_overrides_enable(self):
        m = Module("m")
        en = m.input("EN", 1)
        clr = m.input("CLR", 1)
        counter = parity_counter(m, "c", 4, enable=en, clear=clr)
        m.output("OK", counter.check_ok())
        sim = Simulator(elaborate(m))
        sim.step({"EN": 1})
        sim.step({"EN": 1, "CLR": 1})
        assert sim.peek("c") & 0xF == 0
        assert value_ok(sim.peek("c"))


class TestHelpers:
    def test_one_hot_codes(self):
        assert one_hot_codes(4) == [1, 2, 4, 8]
        with pytest.raises(ValueError):
            one_hot_codes(5, data_width=4)

    @given(st.integers(0, 15))
    def test_is_any_of(self, value):
        x = Input("x", 4)
        codes = [1, 2, 4, 8]
        expr = is_any_of(x, codes)
        assert evaluate(expr, {x: value}) == int(value in codes)

    @given(st.integers(0, 7))
    def test_priority_select(self, sel_bits):
        conds = [Input(f"c{i}", 1) for i in range(3)]
        values = [const(10 + i, 8) for i in range(3)]
        expr = priority_select(conds, values, const(99, 8))
        env = {c: (sel_bits >> i) & 1 for i, c in enumerate(conds)}
        expected = 99
        for i in range(2, -1, -1):
            if (sel_bits >> i) & 1:
                expected = 10 + i
        assert evaluate(expr, env) == expected

    def test_latched_flag_delays_one_cycle(self):
        m = Module("m")
        cond = m.input("C", 1)
        flag = latched_flag(m, "f", cond)
        m.output("F", flag)
        sim = Simulator(elaborate(m))
        assert sim.step({"C": 1})["F"] == 0
        assert sim.step({"C": 0})["F"] == 1
        assert sim.step({"C": 0})["F"] == 0

    def test_he_report_requires_flags(self):
        m = Module("m")
        with pytest.raises(ValueError):
            he_report(m, "HE", [])
