#!/usr/bin/env python
"""Docs sanity checker (CI's docs job, also runnable locally).

Verifies, without any third-party dependency:

1. every relative markdown link in README.md and docs/**/*.md resolves
   to a real file or directory in the repository (anchors are stripped;
   ``http(s)``/``mailto`` links are skipped);
2. every file path mentioned in backticks that *looks* repo-relative
   (starts with a known top-level directory and has an extension)
   exists — catching docs that drift after a refactor;
3. every example script in ``examples/`` is linked from the README's
   examples table, so new examples cannot ship undocumented;
4. the configuration reference (``docs/configuration.md``) documents
   every ``CampaignConfig`` TOML section and key, and every registered
   scheduling/portfolio policy name — so a knob added to the config
   dataclass (or a new policy) cannot ship undocumented;
5. documented defaults track the live config: every key's *default
   value* as rendered by ``CampaignConfig()`` (via its ``to_dict``
   TOML form) must appear inside that key's section of the reference —
   so flipping a default (the engine spec, a compile-store bound)
   without updating the docs fails CI;
6. the scenario reference (``docs/scenarios.md``) documents every
   defect class, every ``FamilySpec`` field, and the current sweep
   record schema version;
7. the service reference (``docs/service.md``) documents every
   endpoint in the daemon's live ``SERVICE_ENDPOINTS`` table and the
   current stats schema version; every preset in
   ``examples/presets/`` parses as a ``CampaignConfig``, matches the
   CLI's ``preset:`` name registry, and is documented in the
   configuration reference.

Exit status 0 = all good; 1 = problems (each printed with file:line).

Run:  python tools/check_docs.py
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

#: markdown inline link: [text](target)
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: backticked repo path, e.g. `src/repro/formal/workspace.py`
CODE_PATH = re.compile(
    r"`((?:src|tests|examples|benchmarks|docs|tools)/[\w./-]+\.\w+)`"
)
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files():
    docs = [REPO / "README.md"]
    docs_dir = REPO / "docs"
    if docs_dir.is_dir():
        docs.extend(sorted(docs_dir.rglob("*.md")))
    return [path for path in docs if path.is_file()]


def check_links(path, problems):
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        for match in LINK.finditer(line):
            target = match.group(1).split("#", 1)[0]
            if not target or target.startswith(EXTERNAL):
                continue
            if target.startswith("<"):
                continue  # placeholder like <this repo>
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: "
                    f"broken link -> {target}"
                )
        for match in CODE_PATH.finditer(line):
            if not (REPO / match.group(1)).exists():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: "
                    f"missing path referenced in backticks -> "
                    f"{match.group(1)}"
                )


def check_config_reference(problems):
    """The config reference must track the config schema, not trail it."""
    doc = REPO / "docs" / "configuration.md"
    if not doc.is_file():
        problems.append("docs/configuration.md: missing (the "
                        "CampaignConfig reference)")
        return
    sys.path.insert(0, str(REPO / "src"))
    try:
        from repro.orchestrate.config import CONFIG_SCHEMA, CampaignConfig
        from repro.orchestrate.policy import (
            PORTFOLIO_POLICIES, SCHEDULING_POLICIES,
        )
    finally:
        sys.path.pop(0)
    text = doc.read_text()
    defaults = CampaignConfig().to_dict()
    for section, keys in CONFIG_SCHEMA.items():
        # keys are checked inside their own section's slice (heading
        # to next heading): [cache] path must not satisfy a deleted
        # [checkpoint] path row just because the word appears earlier
        heading = text.find(f"[{section}]")
        if heading < 0:
            problems.append(
                f"docs/configuration.md: section [{section}] of the "
                f"campaign config is undocumented"
            )
            continue
        end = text.find("\n#", heading)
        section_text = text[heading:end if end >= 0 else len(text)]
        for key in keys:
            if f"`{key}`" not in section_text:
                problems.append(
                    f"docs/configuration.md: config key "
                    f"[{section}] {key} is undocumented"
                )
                continue
            # documented default must match the live one: render the
            # default the way the reference table does and require it
            # on the key's own table row — not merely somewhere in the
            # section, where another key's equal value would mask a
            # drift (absent defaults — no-cache paths, unbounded
            # knobs — have no canonical rendering and are skipped)
            if key not in defaults.get(section, {}):
                continue
            value = defaults[section][key]
            if isinstance(value, bool):
                rendered = "true" if value else "false"
            elif isinstance(value, str):
                rendered = f'"{value}"'
            else:
                rendered = str(value)
            key_rows = [line for line in section_text.splitlines()
                        if f"`{key}`" in line]
            if not any(f"`{rendered}`" in row for row in key_rows):
                problems.append(
                    f"docs/configuration.md: [{section}] {key} "
                    f"default drifted — live default is `{rendered}`"
                )
    for kind, registry in (("scheduling", SCHEDULING_POLICIES),
                           ("portfolio", PORTFOLIO_POLICIES)):
        for name in registry:
            if f"`{name}`" not in text:
                problems.append(
                    f"docs/configuration.md: {kind} policy "
                    f"{name!r} is undocumented"
                )


def check_scenario_reference(problems):
    """docs/scenarios.md must track the scenario layer's live
    vocabulary: every defect class, every ``FamilySpec`` field, and
    the current record schema version — so a new class or a schema
    bump cannot ship undocumented."""
    doc = REPO / "docs" / "scenarios.md"
    if not doc.is_file():
        problems.append("docs/scenarios.md: missing (the scenario "
                        "sweep reference)")
        return
    sys.path.insert(0, str(REPO / "src"))
    try:
        import dataclasses

        from repro.chip.defects import DEFECT_CLASSES
        from repro.scenario.family import FamilySpec
        from repro.scenario.sweep import SWEEP_SCHEMA
    finally:
        sys.path.pop(0)
    text = doc.read_text()
    for defect_class in DEFECT_CLASSES:
        if f"`{defect_class}`" not in text:
            problems.append(
                f"docs/scenarios.md: defect class {defect_class!r} "
                f"is undocumented"
            )
    for field in dataclasses.fields(FamilySpec):
        if f"`{field.name}`" not in text:
            problems.append(
                f"docs/scenarios.md: FamilySpec field "
                f"{field.name!r} is undocumented"
            )
    if f"`\"{SWEEP_SCHEMA}\"`" not in text:
        problems.append(
            f"docs/scenarios.md: record schema version "
            f"{SWEEP_SCHEMA!r} is not documented — did it bump "
            f"without a doc update?"
        )


def check_service_reference(problems):
    """docs/service.md must track the daemon's live endpoint table,
    and the preset library must parse, match the CLI's registry, and
    be documented — so a new endpoint or preset cannot ship
    undocumented, and a preset edit that breaks parsing fails here
    instead of at serve time."""
    doc = REPO / "docs" / "service.md"
    if not doc.is_file():
        problems.append("docs/service.md: missing (the "
                        "verification-as-a-service reference)")
        return
    sys.path.insert(0, str(REPO / "src"))
    try:
        from repro.cli import PRESET_NAMES
        from repro.orchestrate.config import CampaignConfig, ConfigError
        from repro.orchestrate.stats import STATS_SCHEMA
        from repro.service.api import SERVICE_ENDPOINTS
    finally:
        sys.path.pop(0)
    text = doc.read_text()
    for method, path, _summary in SERVICE_ENDPOINTS:
        # one table row must name both halves of the endpoint
        if not any(f"`{method}`" in line and f"`{path}`" in line
                   for line in text.splitlines()):
            problems.append(
                f"docs/service.md: endpoint {method} {path} is "
                f"undocumented"
            )
    if f"`\"{STATS_SCHEMA}\"`" not in text:
        problems.append(
            f"docs/service.md: stats schema {STATS_SCHEMA!r} is not "
            f"documented — did it bump without a doc update?"
        )
    config_doc = (REPO / "docs" / "configuration.md").read_text() \
        if (REPO / "docs" / "configuration.md").is_file() else ""
    preset_dir = REPO / "examples" / "presets"
    on_disk = sorted(path.stem for path in preset_dir.glob("*.toml")) \
        if preset_dir.is_dir() else []
    if on_disk != sorted(PRESET_NAMES):
        problems.append(
            f"examples/presets/: files {on_disk} do not match the "
            f"CLI preset registry {sorted(PRESET_NAMES)}"
        )
    for name in on_disk:
        try:
            CampaignConfig.load(preset_dir / f"{name}.toml")
        except (ConfigError, OSError) as exc:
            problems.append(
                f"examples/presets/{name}.toml: does not parse as a "
                f"CampaignConfig -> {exc}"
            )
        if f"`preset:{name}`" not in config_doc:
            problems.append(
                f"docs/configuration.md: preset 'preset:{name}' is "
                f"undocumented"
            )


def check_examples_table(problems):
    readme = (REPO / "README.md").read_text()
    for script in sorted((REPO / "examples").glob("*.py")):
        rel = f"examples/{script.name}"
        if rel not in readme:
            problems.append(
                f"README.md: examples table is missing {rel}"
            )


def main():
    problems = []
    for path in doc_files():
        check_links(path, problems)
    check_examples_table(problems)
    check_config_reference(problems)
    check_scenario_reference(problems)
    check_service_reference(problems)
    if problems:
        print(f"{len(problems)} documentation problem(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"docs ok: {len(doc_files())} file(s) checked, "
          f"links, examples table, and config reference all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
