"""Parameterized chip-family generation.

A :class:`FamilySpec` is to a generated chip what a
:class:`~repro.orchestrate.config.CampaignConfig` is to a campaign:
frozen plain data, serializable, and content-digested — the same spec
always generates byte-identical RTL (``emit_module`` text), so
generated scenarios are cacheable and their check jobs fingerprint-
stable across runs and executors.

Each block of the family holds one *wide* module — the Figure 7 merge
datapath scaled by ``datapath_width`` and ``pipeline_depth`` — plus a
seeded mix of :func:`~repro.chip.library.generic_leaf` shapes whose
entity/port counts are drawn from a per-module deterministic RNG.
``error_report_width`` bounds how many HE report outputs a generic
leaf distributes its failure flags over.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, fields
from typing import Dict, List, Tuple

from ..chip.library import LeafConfig, fig7_module, generic_leaf
from ..rtl.inject import make_verifiable
from ..rtl.module import Module

Blocks = List[Tuple[str, List[Module]]]


@dataclass(frozen=True)
class FamilySpec:
    """Shape of one generated chip family (all knobs, one digest).

    - ``blocks`` / ``modules_per_block`` scale the campaign's breadth;
    - ``datapath_width`` / ``pipeline_depth`` scale each block's wide
      module (the Figure 7 stereotype) — datapath bits per stage and
      stages per chain;
    - ``error_report_width`` caps the HE report outputs of the generic
      leaves (each leaf uses ``min(error_report_width, flags)``).
    """

    name: str = "family"
    seed: int = 2004
    blocks: int = 2
    modules_per_block: int = 2
    datapath_width: int = 8
    pipeline_depth: int = 2
    error_report_width: int = 2

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"family name must be a non-empty string, "
                             f"got {self.name!r}")
        for field_name, minimum in (
            ("seed", 0), ("blocks", 1), ("modules_per_block", 1),
            ("datapath_width", 2), ("pipeline_depth", 1),
            ("error_report_width", 1),
        ):
            value = getattr(self, field_name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                raise ValueError(
                    f"family {field_name} must be an integer >= "
                    f"{minimum}, got {value!r}"
                )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FamilySpec":
        return cls(**data)

    def digest(self) -> str:
        """SHA-256 of the canonical serialized form — the family's
        content identity, stamped into every sweep record."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _block_name(index: int) -> str:
    """``A``..``Z``, then ``A26``, ``A27``... — short, stable names."""
    if index < 26:
        return chr(ord("A") + index)
    return f"A{index}"


def _leaf_config(spec: FamilySpec, block: str, position: int) -> LeafConfig:
    """One seeded generic-leaf shape.

    The RNG is keyed by (family seed, family name, block, position), so
    a module's shape never depends on how many siblings were generated
    before it — growing the family leaves existing modules' RTL (and
    hence their job fingerprints) untouched.
    """
    rng = random.Random(f"{spec.seed}:{spec.name}:{block}:{position}")
    fsm = rng.randint(0, 2)
    counter = rng.randint(0, 1)
    datapath = rng.randint(1, 2)        # >= 1 entity guaranteed
    onehot = rng.randint(0, 1)
    input_groups = rng.randint(1, 2)
    output_groups = rng.randint(1, 2)
    flags = fsm + counter + datapath + onehot + input_groups
    he = min(spec.error_report_width, flags)
    return LeafConfig(
        name=f"{block}{position:02d}_leaf",
        fsm=fsm,
        counter=counter,
        datapath=datapath,
        onehot=onehot,
        input_groups=input_groups,
        he=he,
        output_groups=output_groups,
    )


def generate_family(spec: FamilySpec) -> Blocks:
    """Generate the family's *base* (pre-injection) blocks.

    Deterministic: the same spec always produces modules with
    byte-identical emitted Verilog.  Block ``i`` holds one wide
    Figure 7 module (``<block>00_wide``, scaled by the spec's width
    and depth) followed by ``modules_per_block - 1`` seeded generic
    leaves.
    """
    blocks: Blocks = []
    for index in range(spec.blocks):
        block = _block_name(index)
        modules: List[Module] = [
            fig7_module(f"{block}00_wide",
                        data_width=spec.datapath_width,
                        depth=spec.pipeline_depth)
        ]
        for position in range(1, spec.modules_per_block):
            modules.append(generic_leaf(_leaf_config(spec, block,
                                                     position)))
        blocks.append((block, modules))
    return blocks


def verifiable_family(spec: FamilySpec) -> Blocks:
    """The family in Verifiable RTL form (error-injection ports
    inserted) — the golden, defect-free variant the formal campaign
    consumes and every mutant is diffed against."""
    return [
        (block, [make_verifiable(module) for module in modules])
        for block, modules in generate_family(spec)
    ]
