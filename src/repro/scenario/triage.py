"""Sim-then-formal triage of mutation campaigns.

The cheap screen runs first: every mutant simulates under legal random
traffic (:class:`~repro.sim.stimulus.IntegrityStimulus` — odd parity on
protected inputs, injection held off) with the dynamic P1/P2 monitors
watching.  Mutants the screen catches are already dead; formal then
settles the rest *and* re-confirms the screened ones, because the
methodology's soundness cross-check is directional: **a sim FAIL must
imply a formal FAIL** — the monitors are the dynamic counterparts of
the stereotype assertions, so a violation the simulator observed under
legal traffic is a counterexample the model checker must also find.

:func:`replay_violation` closes the loop mechanically: the recorded
stimulus prefix up to the violation is converted into a bit-level
:class:`~repro.formal.trace.Trace` and concretely replayed against the
compiled stereotype assertion.  A sim counterexample that replays as a
formal counterexample is the strongest agreement evidence short of the
model-check itself.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.stereotypes import P1, P2, stereotype_vunits
from ..formal.trace import Trace
from ..formal.transition import TransitionSystem
from ..psl.compile import compile_assertion
from ..rtl.module import Module
from ..sim.campaign import SimModuleResult, SimulationCampaign
from ..sim.testbench import Violation

#: testbench monitor name -> the stereotype category it shadows
_MONITOR_CATEGORY = {"HE": P1, "OutputParity": P2}


def sim_screen(mutants: Sequence[Tuple[str, Module]],
               cycles: int = 256, seed: int = 2004
               ) -> Dict[str, SimModuleResult]:
    """Random-simulation screen over ``(site_id, verifiable module)``
    mutants.

    Returns results keyed by site id (mutants of the same base module
    share a module *name*, so the pairing is positional).  Stimulus is
    recorded so violations can be replayed formally.
    """
    campaign = SimulationCampaign(
        [module for _, module in mutants],
        cycles_per_module=cycles, seed=seed, record_stimulus=True,
    )
    report = campaign.run()
    return {site_id: result
            for (site_id, _), result in zip(mutants, report.results)}


def trace_from_vectors(ts: TransitionSystem,
                       vectors: Sequence[Mapping[str, int]]) -> Trace:
    """Convert word-level stimulus vectors into a bit-level trace on
    one compiled assertion's transition system.

    Ports absent from the system's cone simply contribute no literals;
    undriven literals default to 0 during replay — the same convention
    the engines' counterexamples use.
    """
    frames: List[Dict[int, int]] = []
    for vector in vectors:
        frame: Dict[int, int] = {}
        for name, bits in ts.blaster.input_bits.items():
            value = vector.get(name, 0)
            for position, lit in enumerate(bits):
                frame[lit] = (value >> position) & 1
        frames.append(frame)
    return Trace(ts, frames)


def replay_violation(module: Module, violation: Violation,
                     vectors: Sequence[Mapping[str, int]]
                     ) -> Optional[str]:
    """Replay one sim violation through the formal trace machinery.

    ``vectors`` is the recorded stimulus of the simulation run that
    produced ``violation``; the prefix up to the violation cycle (the
    testbench observes outputs of cycle ``c`` after applying vector
    ``c-1``, matching formal frame ``c-1``) becomes the candidate
    counterexample.  Returns the qualified name
    (``vunit.assertion``) of the first stereotype assertion of the
    violation's category that the trace concretely refutes — i.e. the
    replay violates the assertion on its last frame while satisfying
    every environment assumption — or ``None`` when no assertion
    confirms the violation (a triage *disagreement*).
    """
    category = _MONITOR_CATEGORY.get(violation.monitor)
    if category is None:
        return None
    prefix = list(vectors[:violation.cycle])
    if not prefix:
        return None
    for vunit in stereotype_vunits(module):
        if vunit.category != category:
            continue
        for assert_name, _ in vunit.asserted():
            ts = compile_assertion(module, vunit, assert_name)
            if trace_from_vectors(ts, prefix).replay():
                return f"{vunit.name}.{assert_name}"
    return None
