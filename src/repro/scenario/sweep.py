"""Defect-seeding mutation sweeps over generated chip families.

A sweep asks the methodology's own quality question: *if this defect
were in the design, would the stereotype properties have caught it?*
Every sampled :class:`~repro.chip.defects.DefectSite` becomes one
mutant variant of its base module; all mutants run as one formal
campaign through the existing planner/executor machinery (each mutant
is its own campaign block, keyed by site id — module digests differ
per mutant, so jobs never collide); the outcome is distilled into a
**versioned detection-rate record** (:data:`SWEEP_SCHEMA`).

Record determinism is inherited, not re-implemented: mutant rows are
derived exclusively from fields that
:meth:`~repro.core.campaign.CampaignReport.canonical_bytes` already
guarantees byte-identical across executors, caches, and resume paths
(status, category, canonicalized engine label, counterexample length).
Wall-clock data lives in the record's ``timing`` section, which
:func:`canonical_record_bytes` strips — so the same spec and config
produce the same :func:`record_digest` whether the campaign ran
serially or over a work-stealing pool.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..chip.defects import DEFECT_CLASSES
from ..formal.engine import FAIL
from ..orchestrate.config import CampaignConfig
from ..rtl.inject import make_verifiable
from .family import FamilySpec, generate_family
from .mutate import (
    EXPECTED_CATEGORY, SIM_VISIBLE, apply_defect, sites_for_family,
)
from .triage import replay_violation, sim_screen

#: record format version; bump on any incompatible layout change
SWEEP_SCHEMA = "scenario-sweep/v1"


def run_sweep(spec: FamilySpec,
              config: Optional[CampaignConfig] = None,
              classes: Optional[Sequence[str]] = None,
              sites_per_module: Optional[int] = None,
              triage: bool = False,
              sim_cycles: int = 256,
              warm_golden: bool = False,
              progress: Optional[Callable[[str], None]] = None
              ) -> Tuple[Dict[str, object], object]:
    """Run one mutation campaign; returns ``(record, campaign report)``.

    The record is also stamped into ``report.stats["scenario_sweep"]``
    (``stats`` is excluded from report canonicalization, so stamping
    never perturbs the campaign's own byte-identity guarantee).  With
    ``triage=True`` the sim-then-formal mode runs: random simulation
    screens every mutant first, the record gains a ``triage`` section
    with the directional cross-check (sim FAIL must imply formal FAIL)
    and a formal replay of each sim counterexample.

    ``warm_golden=True`` pre-runs the *golden* (unmutated) modules the
    sampled sites live in as their own campaign against the same
    ``config`` — hence the same result cache / verdict database — so
    that with ``[coi] fingerprints = "cone"`` every mutant job whose
    cone the defect does not touch is a cache hit by construction and
    the mutant campaign executes only the cone-intersecting subset.
    This is deliberately runtime wiring, not a config knob: the sweep
    record embeds ``config_digest``, and the warm and cold runs of one
    config must keep identical :func:`record_digest`\\ s (warming
    changes cost, never outcome — the ``timing`` section, which
    canonicalization strips, is where the job counts land).
    """
    from ..orchestrate import CampaignOrchestrator

    config = CampaignConfig() if config is None else config
    selected = sites_for_family(
        generate_family(spec), classes=classes,
        sites_per_module=sites_per_module, seed=spec.seed,
    )
    mutants = [
        (family_block, site, make_verifiable(apply_defect(module, site)))
        for family_block, module, site in selected
    ]
    mutants.sort(key=lambda item: item[1].site_id)
    campaign_blocks = [(site.site_id, [verifiable])
                       for _, site, verifiable in mutants]

    golden_timing = None
    if warm_golden:
        seen: Dict[Tuple[str, str], None] = {}
        golden_blocks: Dict[str, List] = {}
        for family_block, module, _ in selected:
            if (family_block, module.name) in seen:
                continue
            seen[(family_block, module.name)] = None
            golden_blocks.setdefault(family_block, []).append(
                make_verifiable(module))
        golden_report = CampaignOrchestrator(
            sorted(golden_blocks.items()), config=config,
        ).run(progress)
        golden_timing = {
            "jobs": golden_report.stats["jobs"],
            "jobs_executed":
                golden_report.stats["coi"]["jobs_executed"],
            "cone_hits": golden_report.stats["coi"]["cone_hits"],
            "seconds": golden_report.seconds,
        }

    sim_results = None
    if triage:
        sim_results = sim_screen(
            [(site.site_id, verifiable)
             for _, site, verifiable in mutants],
            cycles=sim_cycles, seed=spec.seed,
        )

    report = CampaignOrchestrator(campaign_blocks, config=config) \
        .run(progress)

    by_site: Dict[str, List] = {}
    for result in report.results:
        by_site.setdefault(result.block, []).append(result)

    rows: List[Dict[str, object]] = []
    survivors: List[str] = []
    engine_timing: Dict[str, Dict[str, object]] = {}
    for family_block, site, _ in mutants:
        site_results = by_site.get(site.site_id, [])
        fails = [r for r in site_results if r.result.status == FAIL]
        row: Dict[str, object] = {
            "site": site.site_id,
            "class": site.defect_class,
            "module": site.module_name,
            "family_block": family_block,
            "expected_category": EXPECTED_CATEGORY[site.defect_class],
            "sim_visible": SIM_VISIBLE[site.defect_class],
            "detected": bool(fails),
            "failing_categories": sorted({r.category for r in fails}),
        }
        if fails:
            first = fails[0]      # plan order — executor-invariant
            engine = first.result.engine
            if engine.startswith("portfolio:"):
                engine = "portfolio"
            row["first_fail"] = {
                "property": f"{first.vunit_name}.{first.assert_name}",
                "category": first.category,
                "engine": engine,
                "cex_frames": None if first.result.trace is None
                else first.result.trace.length,
            }
        else:
            survivors.append(site.site_id)
        rows.append(row)
        for result in fails:
            for attempt in (result.result.stats.get("portfolio") or []):
                if attempt.get("status") != FAIL:
                    continue
                bucket = engine_timing.setdefault(
                    str(attempt.get("engine")),
                    {"fails": 0, "seconds": 0.0},
                )
                bucket["fails"] += 1
                bucket["seconds"] += float(attempt.get("seconds", 0.0))

    triage_section = None
    if triage:
        screened = sorted(site_id for site_id, result
                          in sim_results.items() if result.found_bug)
        detected_sites = {row["site"] for row in rows if row["detected"]}
        disagreements = sorted(site_id for site_id in screened
                               if site_id not in detected_sites)
        verifiable_by_site = {site.site_id: verifiable
                              for _, site, verifiable in mutants}
        replays = {
            site_id: replay_violation(
                verifiable_by_site[site_id],
                sim_results[site_id].violations[0],
                sim_results[site_id].stimulus,
            )
            for site_id in screened
        }
        triage_section = {
            "sim_cycles": sim_cycles,
            "sim_seed": spec.seed,
            "screened": screened,
            "formal_confirms_sim": not disagreements,
            "disagreements": disagreements,
            "replayed": replays,
        }

    total = len(rows)
    detected_count = sum(1 for row in rows if row["detected"])
    record: Dict[str, object] = {
        "schema": SWEEP_SCHEMA,
        "family": spec.to_dict(),
        "family_digest": spec.digest(),
        "config_digest": config.digest(),
        "defect_classes": list(DEFECT_CLASSES) if classes is None
        else list(classes),
        "sites_per_module": sites_per_module,
        "mutants": rows,
        "detection": {
            "total": total,
            "detected": detected_count,
            "rate": (detected_count / total) if total else 1.0,
            "survivors": survivors,
        },
        "triage": triage_section,
        # wall-clock and workload data only — canonical_record_bytes
        # strips this section, so warm/cold and cone/module runs of one
        # config keep identical record digests
        "timing": {
            "campaign_seconds": report.seconds,
            "jobs": report.stats["jobs"],
            "jobs_executed": report.stats["coi"]["jobs_executed"],
            "cone_hits": report.stats["coi"]["cone_hits"],
            "golden": golden_timing,
            "engines": engine_timing,
        },
    }
    report.stats["scenario_sweep"] = record
    return record, report


def sweep_from_config(config: CampaignConfig,
                      progress: Optional[Callable[[str], None]] = None,
                      warm_golden: bool = False
                      ) -> Tuple[Dict[str, object], object]:
    """Run the sweep a config's ``[scenario]`` section describes.

    Absent scenario fields fall back to the :class:`FamilySpec`
    defaults (and all-four defect classes, no site cap, triage off,
    256 sim cycles) — so a plain campaign TOML is also a valid, if
    small, sweep configuration.  ``warm_golden`` is the CLI's
    ``--warm-golden`` flag (see :func:`run_sweep` for why it is not a
    config key).
    """
    spec_kwargs: Dict[str, object] = {}
    for field_name in ("seed", "blocks", "modules_per_block",
                       "datapath_width", "pipeline_depth",
                       "error_report_width"):
        value = getattr(config, f"scenario_{field_name}")
        if value is not None:
            spec_kwargs[field_name] = value
    spec = FamilySpec(**spec_kwargs)
    sim_cycles = config.scenario_sim_cycles
    return run_sweep(
        spec,
        config=config,
        classes=config.scenario_classes,
        sites_per_module=config.scenario_sites_per_module,
        triage=bool(config.scenario_triage),
        sim_cycles=256 if sim_cycles is None else sim_cycles,
        warm_golden=warm_golden,
        progress=progress,
    )


def canonical_record_bytes(record: Dict[str, object]) -> bytes:
    """Deterministic serialization of a sweep record's *outcome* — the
    record minus its ``timing`` section, as canonical JSON.  Identical
    spec + config yield identical bytes whatever executor ran the
    campaign."""
    payload = {key: value for key, value in record.items()
               if key != "timing"}
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def record_digest(record: Dict[str, object]) -> str:
    """SHA-256 of :func:`canonical_record_bytes` — the one-line
    identity of a sweep outcome."""
    return hashlib.sha256(canonical_record_bytes(record)).hexdigest()
