"""Defect-seeding mutation transforms.

Each transform clones a *base* (pre-injection) leaf module via
:func:`~repro.rtl.inject.clone_leaf` and patches exactly one register
or output, producing a mutant that some stereotype property must
catch.  Mutants are addressed by stable
:class:`~repro.chip.defects.DefectSite` identifiers, and callers apply
:func:`~repro.rtl.inject.make_verifiable` *after* mutation — so the
error-injection mux wraps the mutated next-state function and the P0
injection path stays intact (a parity defect must not break Check1).

Mutation design notes (why these four shapes):

- the library's data transformations are deliberately parity-neutral
  (rotations permute bits, XOR-merges of odd counts preserve odd
  parity), so a useful mutant must change the *bit multiset* or the
  *parity source*, never just reorder bits;
- ``stuck-parity`` forces the stored parity bit to 1 (see
  :mod:`repro.chip.defects` for why stuck-at-1, not 0);
- ``wrong-rotate`` turns a rotate into a shift: the wrapped bit is
  dropped and a 0 shifted in, while the parity bit travels unchanged;
- ``swapped-operand`` recomputes an output's parity bit over the first
  protected *input's* data word — a state-determined word checked
  against a free input's parity is always formally refutable;
- ``dropped-error-flag`` ties one HE report output to 0 — invisible to
  clean-traffic simulation (no error, no report either way) but caught
  by P0's injection obligation.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..chip.defects import (
    DEFECT_CLASSES, DROPPED_ERROR_FLAG, STUCK_PARITY, SWAPPED_OPERAND,
    WRONG_ROTATE, DefectSite,
)
from ..rtl.inject import clone_leaf
from ..rtl.module import Module, RtlError
from ..rtl.parity import odd_parity_bit
from ..rtl.signals import Const, cat

from .family import Blocks

#: the stereotype property category expected to catch each class
EXPECTED_CATEGORY = {
    STUCK_PARITY: "P1",
    WRONG_ROTATE: "P2",
    SWAPPED_OPERAND: "P2",
    DROPPED_ERROR_FLAG: "P0",
}

#: whether clean-traffic random simulation can in principle observe the
#: defect (``dropped-error-flag`` suppresses the only observable — the
#: report — so only formal's injection obligation sees it)
SIM_VISIBLE = {
    STUCK_PARITY: True,
    WRONG_ROTATE: True,
    SWAPPED_OPERAND: True,
    DROPPED_ERROR_FLAG: False,
}


def _first_full_input(module: Module) -> Optional[str]:
    """The first whole-port protected input group's signal name."""
    for group in module.integrity.protected_inputs:
        if group.lsb == 0 and group.width is None:
            return group.signal
    return None


def enumerate_sites(module: Module) -> List[DefectSite]:
    """All defect sites seedable into one base leaf module.

    Deterministic: follows the integrity spec's declaration order,
    class by class (entities, then output groups twice, then HE
    signals).  Eligibility rules:

    - ``stuck-parity`` — every protected entity;
    - ``wrong-rotate`` — whole-port output groups with >= 2 data bits
      (on a 1-bit word a shift cannot drop anything a rotate keeps);
    - ``swapped-operand`` — whole-port output groups whose width
      matches the first whole-port protected input's (the recomputed
      parity must cover a same-shaped word);
    - ``dropped-error-flag`` — every HE report signal.
    """
    spec = module.integrity
    if spec is None:
        raise RtlError(f"module {module.name!r} has no integrity spec")
    sites: List[DefectSite] = []
    for ent in spec.entities:
        sites.append(DefectSite(STUCK_PARITY, module.name, ent.name))
    full_outputs = [
        group.signal for group in spec.protected_outputs
        if group.lsb == 0 and group.width is None
    ]
    for signal in full_outputs:
        if module.outputs[signal].width >= 3:
            sites.append(DefectSite(WRONG_ROTATE, module.name, signal))
    swap_source = _first_full_input(module)
    if swap_source is not None:
        source_width = module.inputs[swap_source].width
        for signal in full_outputs:
            if module.outputs[signal].width == source_width:
                sites.append(
                    DefectSite(SWAPPED_OPERAND, module.name, signal))
    for he in spec.he_signals:
        sites.append(DefectSite(DROPPED_ERROR_FLAG, module.name, he))
    return sites


def sites_for_family(blocks: Blocks,
                     classes: Optional[Sequence[str]] = None,
                     sites_per_module: Optional[int] = None,
                     seed: int = 0
                     ) -> List[Tuple[str, Module, DefectSite]]:
    """Enumerate (and optionally subsample) the sweep's defect sites.

    Returns ``(block, base module, site)`` triples in deterministic
    order.  ``classes`` filters by defect class (default: all four);
    ``sites_per_module`` caps the per-module site count with a seeded
    sample keyed by ``(seed, module name)`` — so adding a module to the
    family never changes which sites its siblings contribute.
    """
    wanted = DEFECT_CLASSES if classes is None else tuple(classes)
    for cls in wanted:
        if cls not in DEFECT_CLASSES:
            raise ValueError(
                f"unknown defect class {cls!r}; "
                f"expected one of {DEFECT_CLASSES}"
            )
    selected: List[Tuple[str, Module, DefectSite]] = []
    for block, modules in blocks:
        for module in modules:
            eligible = [site for site in enumerate_sites(module)
                        if site.defect_class in wanted]
            if sites_per_module is not None \
                    and len(eligible) > sites_per_module:
                rng = random.Random(f"{seed}:{module.name}")
                keep = sorted(rng.sample(range(len(eligible)),
                                         sites_per_module))
                eligible = [eligible[i] for i in keep]
            selected.extend((block, module, site) for site in eligible)
    return selected


# ----------------------------------------------------------------------
# the transforms
# ----------------------------------------------------------------------

def _patch_stuck_parity(clone: Module, site: DefectSite) -> None:
    ent = clone.integrity.entity(site.location)
    for reg in clone.regs:
        if reg.name == ent.reg_name:
            break
    else:
        raise RtlError(f"module {clone.name!r}: entity {site.location!r} "
                       f"references missing register {ent.reg_name!r}")
    width = reg.width
    reg.next = cat(Const(1, 1), reg.next[0:width - 1])


def _patch_wrong_rotate(clone: Module, site: DefectSite) -> None:
    clone.integrity.output_group(site.location)
    word = clone.outputs[site.location]
    data_width = word.width - 1
    if data_width < 2:
        raise RtlError(
            f"wrong-rotate needs >= 2 data bits on {site.location!r}, "
            f"got {data_width}"
        )
    clone.outputs[site.location] = cat(
        word[data_width], word[0:data_width - 1], Const(0, 1)
    )


def _patch_swapped_operand(clone: Module, site: DefectSite) -> None:
    clone.integrity.output_group(site.location)
    word = clone.outputs[site.location]
    source = _first_full_input(clone)
    if source is None:
        raise RtlError(
            f"swapped-operand on {clone.name!r} needs a whole-port "
            f"protected input to swap in"
        )
    port = clone.inputs[source]
    if port.width != word.width:
        raise RtlError(
            f"swapped-operand on {site.location!r}: input {source!r} is "
            f"{port.width} bits, output is {word.width}"
        )
    data_width = word.width - 1
    clone.outputs[site.location] = cat(
        odd_parity_bit(port[0:data_width]), word[0:data_width]
    )


def _patch_dropped_error_flag(clone: Module, site: DefectSite) -> None:
    if site.location not in clone.integrity.he_signals:
        raise RtlError(f"module {clone.name!r} has no HE signal "
                       f"{site.location!r}")
    clone.outputs[site.location] = Const(0, 1)


_PATCHES = {
    STUCK_PARITY: _patch_stuck_parity,
    WRONG_ROTATE: _patch_wrong_rotate,
    SWAPPED_OPERAND: _patch_swapped_operand,
    DROPPED_ERROR_FLAG: _patch_dropped_error_flag,
}


def apply_defect(module: Module, site: DefectSite) -> Module:
    """Seed one defect into a base leaf module.

    Returns a patched clone (the input module is never mutated) with
    the site id recorded in ``attrs["defect_site"]``.  The caller runs
    :func:`~repro.rtl.inject.make_verifiable` on the result, exactly as
    for the defect-free design.
    """
    if module.integrity is None:
        raise RtlError(f"module {module.name!r} has no integrity spec")
    if site.module_name != module.name:
        raise RtlError(
            f"site {site.site_id!r} does not address module "
            f"{module.name!r}"
        )
    clone, _ = clone_leaf(module)
    _PATCHES[site.defect_class](clone, site)
    clone.attrs["defect_site"] = site.site_id
    return clone
