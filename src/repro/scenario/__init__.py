"""Scenario layer: chip-family generation and defect-seeding sweeps.

The paper's tables are measured on one fixed chip; this layer turns the
methodology itself into the thing under test.  It sits *above* the
chip, sim, and orchestrate layers (like the CLI) and provides:

- :mod:`repro.scenario.family` — a parameterized, seeded, content-
  digested chip-family generator over the library stereotypes
  (:class:`FamilySpec` scales block count, datapath width, pipeline
  depth, and error-report width);
- :mod:`repro.scenario.mutate` — defect-seeding transforms for the
  four defect classes of :data:`repro.chip.defects.DEFECT_CLASSES`,
  addressed by stable :class:`~repro.chip.defects.DefectSite`
  identifiers;
- :mod:`repro.scenario.sweep` — the mutation campaign: every sampled
  site becomes a mutant variant, the existing planner/executors run a
  formal campaign over all mutants at once, and the outcome is a
  versioned detection-rate record (byte-identical across executors);
- :mod:`repro.scenario.triage` — the sim-then-formal mode: cheap
  random simulation screens mutants first, formal confirms, and every
  sim counterexample is replayed against the compiled assertion.
"""

from .family import FamilySpec, generate_family, verifiable_family
from .mutate import apply_defect, enumerate_sites, sites_for_family
from .sweep import (
    SWEEP_SCHEMA, canonical_record_bytes, record_digest, run_sweep,
    sweep_from_config,
)
from .triage import replay_violation, sim_screen

__all__ = [
    "FamilySpec", "generate_family", "verifiable_family",
    "apply_defect", "enumerate_sites", "sites_for_family",
    "SWEEP_SCHEMA", "canonical_record_bytes", "record_digest",
    "run_sweep", "sweep_from_config",
    "replay_violation", "sim_screen",
]
