"""Divide-and-conquer property partitioning (paper section 4.2, Fig. 7).

When model checking a property exhausts the engine's resources, the
verification engineer manually divides it at internal parity
checkpoints.  For an output-integrity property over a wide merge
datapath D = f(A, B, C):

1. prove, for each internal checkpoint word (A', B', C'), that its
   integrity follows from the integrity of the primary inputs;
2. prove the output's integrity on an *abstracted* design where each
   internal checkpoint register is cut — replaced by a free primary
   input — and assumed to carry odd parity.

Soundness: step 1 discharges exactly the assumptions introduced in
step 2, and cutting a register only ever *adds* behaviours, so the
composition over-approximates the original design.  Each piece's cone
of influence is a fraction of the original, which is what turns the
timeout into a set of quick checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..formal.problems import note_elaboration
from ..formal.transition import TransitionSystem
from ..psl.ast import Always, Name, PslError, RedXor, VUnit
from ..psl.compile import compile_assertion
from ..rtl.elaborate import FlatDesign, elaborate
from ..rtl.module import Module
from ..rtl.signals import Expr, Input, Reg, substitute

CUT_SUFFIX = "__cut"


@dataclass
class SubProblem:
    """One piece of a divided property."""

    name: str
    description: str
    ts: TransitionSystem


@dataclass
class PartitionPlan:
    """The division of one property at internal checkpoints."""

    module_name: str
    assert_name: str
    cut_regs: List[str]
    checkpoint_problems: List[SubProblem] = field(default_factory=list)
    abstract_problem: Optional[SubProblem] = None

    @property
    def pieces(self) -> List[SubProblem]:
        pieces = list(self.checkpoint_problems)
        if self.abstract_problem is not None:
            pieces.append(self.abstract_problem)
        return pieces


def cut_registers(design: FlatDesign,
                  cut_regs: List[str]) -> Tuple[FlatDesign, Dict[str, str]]:
    """Replace each named register with a fresh free primary input.

    Returns the abstracted design plus the register-name -> input-name
    mapping.  Registers feeding only the cut points disappear later via
    cone-of-influence reduction.
    """
    by_name = {reg.name: reg for reg in design.regs}
    missing = [name for name in cut_regs if name not in by_name]
    if missing:
        raise PslError(f"cut points reference unknown registers {missing}")

    abstracted = FlatDesign(f"{design.name}__cut")
    abstracted.inputs = dict(design.inputs)
    mapping: Dict[Expr, Expr] = {}
    cut_names: Dict[str, str] = {}
    for name in cut_regs:
        reg = by_name[name]
        cut_input = Input(name + CUT_SUFFIX, reg.width)
        abstracted.inputs[cut_input.name] = cut_input
        mapping[reg] = cut_input
        cut_names[name] = cut_input.name

    memo: Dict[int, Expr] = {}
    for reg in design.regs:
        if reg.name in cut_names:
            continue
        fresh = Reg(reg.name, reg.width, reg.reset)
        mapping[reg] = fresh
    for reg in design.regs:
        if reg.name in cut_names:
            continue
        fresh = mapping[reg]
        fresh.next = substitute(reg.next, mapping, memo)
        abstracted.add_reg(fresh)
    abstracted.outputs = {
        name: substitute(expr, mapping, memo)
        for name, expr in design.outputs.items()
    }
    return abstracted, cut_names


def partition_property(module: Module, vunit: VUnit, assert_name: str,
                       cut_regs: List[str],
                       store=None,
                       compile_slice: bool = False) -> PartitionPlan:
    """Divide one asserted property of ``vunit`` at ``cut_regs``.

    The returned plan carries one checkpoint sub-problem per cut
    register (its stored word keeps odd parity, under the vunit's
    original assumptions) and the abstracted main problem (the original
    assertion with every cut register freed and assumed parity-clean).

    ``store`` (a :class:`~repro.formal.problems.CompiledProblemStore`)
    compiles the checkpoint sub-problems through the shared
    content-addressed layer: every piece of the division — and any
    other check of the same module in the same worker — reuses one
    elaborated design instead of re-flattening per piece.  The
    abstracted main problem necessarily compiles outside the store
    (its cut design is a derived artifact, not module content) and
    always starts from a private fresh elaboration, so the cut design
    never inherits another problem's monitor registers.

    ``compile_slice`` compiles each checkpoint sub-problem from its
    cone-of-influence slice (:mod:`repro.formal.coi`) — the natural fit
    for the division, whose whole point is that each checkpoint's cone
    is a fraction of the module.  The abstracted main problem always
    compiles whole: it lives on the cut design, which is not module
    content a cone digest could address.
    """
    plan = PartitionPlan(module.name, assert_name, list(cut_regs))

    # --- step 1: integrity of each internal checkpoint from the inputs
    for reg_name in cut_regs:
        sub_unit = VUnit(f"{vunit.name}_cut_{_sanitise(reg_name)}",
                         vunit.module_name,
                         comment=f"checkpoint integrity of {reg_name}")
        sub_unit.category = vunit.category
        _copy_assumes(vunit, sub_unit)
        prop_name = f"pIntegrity_{_sanitise(reg_name)}"
        sub_unit.declare(prop_name, Always(RedXor(Name(reg_name))),
                         comment=f"{reg_name} should keep odd parity")
        sub_unit.assert_(prop_name)
        if compile_slice:
            if store is not None:
                ts = store.sliced_problem(module, sub_unit, prop_name)
            else:
                from ..psl.compile import compile_sliced_assertion
                ts = compile_sliced_assertion(module, sub_unit, prop_name)
        elif store is not None:
            ts = store.problem(module, sub_unit, prop_name)
        else:
            ts = compile_assertion(module, sub_unit, prop_name)
        plan.checkpoint_problems.append(SubProblem(
            name=f"{assert_name}/{reg_name}",
            description=f"integrity of {reg_name} holds as long as the "
                        f"integrity of the primary inputs holds",
            ts=ts,
        ))

    # --- step 2: the original property on the cut design
    note_elaboration()
    design = elaborate(module)
    abstracted, cut_names = cut_registers(design, cut_regs)
    main_unit = VUnit(f"{vunit.name}_divided", vunit.module_name,
                      comment="main property over cut points")
    main_unit.category = vunit.category
    _copy_assumes(vunit, main_unit)
    for reg_name, input_name in cut_names.items():
        assume_name = f"pIntegrity_{_sanitise(reg_name)}_cut"
        main_unit.declare(assume_name, Always(RedXor(Name(input_name))),
                          comment=f"discharged by the {reg_name} piece")
        main_unit.assume(assume_name)
    prop = vunit.property_named(assert_name)
    if prop is None:
        raise PslError(f"vunit {vunit.name!r} has no property "
                       f"{assert_name!r}")
    main_unit.declare(assert_name, prop)
    main_unit.assert_(assert_name)
    ts = compile_assertion(module, main_unit, assert_name,
                           design=abstracted)
    plan.abstract_problem = SubProblem(
        name=f"{assert_name}/divided",
        description="original assertion with internal checkpoints cut "
                    "and assumed clean",
        ts=ts,
    )
    return plan


def _copy_assumes(source: VUnit, target: VUnit) -> None:
    for name, prop in source.assumed():
        if target.property_named(name) is None:
            target.declare(name, prop)
        target.assume(name)


def _sanitise(name: str) -> str:
    return name.replace(".", "_")
