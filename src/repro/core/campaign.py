"""The formal verification campaign (paper section 4, Figure 5).

The campaign reproduces the flow the paper's single verification
engineer ran — lint the Verifiable RTL, generate the stereotype vunits
(P0/P1/P2) plus the designer's P3 properties, model check every
``assert``, and aggregate Tables 2/3 — but it is now architected as a
**job graph** rather than a serial loop:

- a *planner* walks the blocks once and emits one ``CheckJob`` per
  asserted property (:mod:`repro.orchestrate.planner`);
- an *executor* runs the jobs — serially by default, or fanned out over
  worker processes — and streams results back in plan order
  (:mod:`repro.orchestrate.executor`);
- an optional *result cache* keyed by a content fingerprint of
  (module RTL, vunit source, engine config) replays verdicts for
  unchanged properties, making ECO reruns incremental
  (:mod:`repro.orchestrate.cache`);
- the *orchestrator* aggregates the stream into this module's
  :class:`CampaignReport` (:mod:`repro.orchestrate.orchestrator`).

:class:`FormalCampaign` is the compatibility façade over that
machinery: same constructor, same ``run(progress)``, same report — now
parameterised by one declarative
:class:`~repro.orchestrate.config.CampaignConfig` (``config=``), with
the paper-era kwargs accepted, mapped onto the config, and
soft-deprecated, and the component objects (``executor=``, ``cache=``,
``checkpoint=``, ``engines=``) kept as programmatic overrides.  The
report dataclasses (:class:`PropertyResult`, :class:`BlockSummary`,
:class:`CampaignReport`) remain the public result model that report
rendering (:mod:`repro.core.report`) and the benchmarks consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..formal.budget import ResourceBudget
from ..formal.engine import CheckResult, FAIL, PASS
from ..rtl.lint import LintIssue
from ..rtl.module import Module
from .stereotypes import P0, P1, P2, P3


@dataclass
class PropertyResult:
    """One checked assertion.

    ``cached`` marks verdicts replayed from the orchestrator's result
    cache rather than computed by an engine in this run.
    """

    block: str
    module_name: str
    vunit_name: str
    assert_name: str
    category: str
    result: CheckResult
    cached: bool = False

    @property
    def qualified_name(self) -> str:
        return f"{self.vunit_name}.{self.assert_name}"


#: categories a :class:`BlockSummary` keeps a counter for
_CATEGORIES = (P0, P1, P2, P3)


@dataclass
class BlockSummary:
    """One row of Table 2."""

    block: str
    submodules: int = 0
    bugs: int = 0
    p0: int = 0
    p1: int = 0
    p2: int = 0
    p3: int = 0

    @property
    def total(self) -> int:
        return self.p0 + self.p1 + self.p2 + self.p3

    def add(self, category: str, count: int = 1) -> None:
        if category not in _CATEGORIES:
            raise ValueError(
                f"unknown property category {category!r}; "
                f"expected one of {_CATEGORIES}"
            )
        attr = category.lower()
        setattr(self, attr, getattr(self, attr) + count)


@dataclass
class CampaignReport:
    """Aggregate of a formal campaign.

    ``stats`` carries the orchestration counters of the producing run:
    executor name, engine portfolio, job count, cache hits/misses, and
    which modules were actually checked vs replayed from cache.
    """

    results: List[PropertyResult] = field(default_factory=list)
    blocks: Dict[str, BlockSummary] = field(default_factory=dict)
    lint_issues: List[LintIssue] = field(default_factory=list)
    seconds: float = 0.0
    stats: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def total_properties(self) -> int:
        return len(self.results)

    def by_status(self, status: str) -> List[PropertyResult]:
        return [r for r in self.results if r.result.status == status]

    @property
    def all_passed(self) -> bool:
        return all(r.result.status == PASS for r in self.results)

    def failures_by_module(self) -> Dict[str, List[PropertyResult]]:
        failures: Dict[str, List[PropertyResult]] = {}
        for result in self.by_status(FAIL):
            failures.setdefault(result.module_name, []).append(result)
        return failures

    def counts_by_category(self) -> Dict[str, int]:
        counts = {P0: 0, P1: 0, P2: 0, P3: 0}
        for result in self.results:
            counts[result.category] += 1
        counts["total"] = len(self.results)
        return counts

    def distinct_bug_modules(self) -> List[str]:
        """Modules whose failures correspond to logic bugs (distinct
        defective modules, the paper's bug-counting unit)."""
        return sorted(self.failures_by_module())

    def canonical_bytes(self) -> bytes:
        """Deterministic serialization of the campaign *outcome*.

        Covers every property verdict (identity, category, status,
        engine, depth, counterexample input frames), every
        block-summary row, and the lint findings — everything a
        downstream consumer acts on — while excluding wall-clock timing
        and run provenance (``seconds``, ``stats``, per-result engine
        timings, the ``cached`` flag).  Two runs of the same campaign
        are byte-identical here whatever executor, cache state, or
        checkpoint-resume path produced them; the orchestrator's tests
        enforce exactly that.

        For a multi-stage engine portfolio, *which* stage happened to
        settle the check is provenance too: every stage is sound (the
        verdict is stage-order-invariant, and counterexamples are
        concretised by the same deterministic BMC run), but the winner
        — and its engine-specific proof bound — varies with the attempt
        order a portfolio policy picks.  Portfolio results are
        therefore canonicalised to engine ``"portfolio"`` with no proof
        depth (counterexample frames, which carry the real outcome,
        stay); the winning stage remains visible in
        ``result.stats["portfolio"]``.
        """
        results = []
        for record in self.results:
            trace = record.result.trace
            frames = None if trace is None else trace.canonical_frames()
            engine = record.result.engine
            depth = record.result.depth
            if engine.startswith("portfolio:"):
                engine, depth = "portfolio", None
            results.append([
                record.block, record.module_name, record.vunit_name,
                record.assert_name, record.category,
                record.result.status, engine, depth, frames,
            ])
        blocks = [
            [name, block.submodules, block.bugs,
             block.p0, block.p1, block.p2, block.p3]
            for name, block in sorted(self.blocks.items())
        ]
        lint = [repr(issue) for issue in self.lint_issues]
        payload = {"results": results, "blocks": blocks, "lint": lint}
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")


class FormalCampaign:
    """Runs the formal flow over a chip's blocks.

    ``blocks`` is a sequence of (block name, leaf modules).  Each module
    must carry Verifiable RTL and an integrity spec; modules that the
    scoping rule excludes are skipped (and recorded).

    The campaign is parameterised by one declarative
    :class:`~repro.orchestrate.config.CampaignConfig` — the
    serializable object that also drives the ``python -m repro`` CLI
    and is stamped (as a digest) into ``report.stats``::

        config = CampaignConfig(executor="workstealing:4",
                                engines="portfolio:kind,bdd-combined")
        FormalCampaign(chip.blocks, config=config).run()

    Everything else on the constructor is the **legacy kwarg layer**,
    accepted for compatibility and mapped onto the config
    (see ``docs/configuration.md`` for the migration table):

    - ``method`` / ``max_k`` / ``budget_factory`` — the paper-era
      single-engine knobs; mapped to the config's ``engines`` spec and
      budget fields.  Only the factory's *limits* matter — the
      orchestrator rebuilds an equivalent budget per job so checks
      never share spent counters, even across processes.  These three
      are soft-deprecated: passing them emits a
      :class:`DeprecationWarning` (existing call sites keep working).
    - ``executor`` / ``cache`` / ``checkpoint`` / ``engines`` —
      component-object overrides; an explicit object wins over the
      config's corresponding spec.

    Note the default-flip that came with the config API: campaigns now
    run with shared per-module BDD workspaces (``share_bdd = true``)
    unless configured otherwise — outcome-invariant under the default
    non-binding budgets, measurably cheaper, with
    ``CampaignConfig(share_bdd=False)`` as the escape hatch.
    """

    def __init__(self, blocks: Sequence[Tuple[str, Sequence[Module]]],
                 method: Optional[str] = None,
                 max_k: Optional[int] = None,
                 budget_factory: Optional[Callable[[], ResourceBudget]] = None,
                 lint: Optional[bool] = None,
                 executor=None, cache=None,
                 checkpoint=None, engines=None,
                 config=None) -> None:
        self.blocks = [(name, list(mods)) for name, mods in blocks]
        if config is None:
            from ..orchestrate.config import CampaignConfig
            config = CampaignConfig()
        config = self._map_legacy(config, method, max_k, budget_factory)
        self.config = config
        self.lint = lint
        self.executor = executor
        self.cache = cache
        self.checkpoint = checkpoint
        self.engines = tuple(engines) if engines else None

    @staticmethod
    def _map_legacy(config, method, max_k, budget_factory):
        """Fold the paper-era kwargs into the config (with a soft
        deprecation nudge) so the run is still described — and
        digested — by one config object."""
        import warnings
        from dataclasses import replace
        legacy = {}
        if method is not None:
            legacy["engines"] = method
        if max_k is not None:
            legacy["max_k"] = max_k
        if budget_factory is not None:
            budget = budget_factory()
            legacy["sat_conflicts"] = budget.sat_conflicts
            legacy["bdd_nodes"] = budget.bdd_nodes
        if legacy:
            warnings.warn(
                "FormalCampaign(method=/max_k=/budget_factory=) is "
                "deprecated; pass config=CampaignConfig("
                f"{', '.join(sorted(legacy))}, ...) instead",
                DeprecationWarning, stacklevel=3,
            )
            config = replace(config, **legacy)
        return config

    # ------------------------------------------------------------------
    def run(self, progress: Optional[Callable[[str], None]] = None,
            resume: bool = False) -> CampaignReport:
        from ..orchestrate import CampaignOrchestrator

        orchestrator = CampaignOrchestrator(
            self.blocks,
            engines=self.engines,
            executor=self.executor,
            cache=self.cache,
            checkpoint=self.checkpoint,
            lint=self.lint,
            config=self.config,
        )
        return orchestrator.run(progress, resume=resume)
