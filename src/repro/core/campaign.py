"""The formal verification campaign (paper section 4, Figure 5).

Drives the full flow the paper's single verification engineer ran:

1. take every in-scope leaf module (with its released Verifiable RTL
   and integrity specification),
2. lint the Verifiable-RTL requirements,
3. generate the stereotype vunits (P0/P1/P2) plus the designer's P3
   properties,
4. compile every ``assert`` into a safety problem and model check it,
5. aggregate results by block and property type (Table 2) and map
   failures back to logic bugs for designer feedback (Table 3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..formal.budget import ResourceBudget
from ..formal.engine import CheckResult, FAIL, ModelChecker, PASS, TIMEOUT
from ..psl.ast import VUnit
from ..psl.compile import compile_assertion
from ..rtl.elaborate import elaborate
from ..rtl.lint import LintIssue, lint_verifiable
from ..rtl.module import Module
from .leaf import classify
from .stereotypes import P0, P1, P2, P3, stereotype_vunits


@dataclass
class PropertyResult:
    """One checked assertion."""

    block: str
    module_name: str
    vunit_name: str
    assert_name: str
    category: str
    result: CheckResult

    @property
    def qualified_name(self) -> str:
        return f"{self.vunit_name}.{self.assert_name}"


@dataclass
class BlockSummary:
    """One row of Table 2."""

    block: str
    submodules: int = 0
    bugs: int = 0
    p0: int = 0
    p1: int = 0
    p2: int = 0
    p3: int = 0

    @property
    def total(self) -> int:
        return self.p0 + self.p1 + self.p2 + self.p3

    def add(self, category: str, count: int = 1) -> None:
        attr = category.lower()
        setattr(self, attr, getattr(self, attr) + count)


@dataclass
class CampaignReport:
    """Aggregate of a formal campaign."""

    results: List[PropertyResult] = field(default_factory=list)
    blocks: Dict[str, BlockSummary] = field(default_factory=dict)
    lint_issues: List[LintIssue] = field(default_factory=list)
    seconds: float = 0.0

    # ------------------------------------------------------------------
    @property
    def total_properties(self) -> int:
        return len(self.results)

    def by_status(self, status: str) -> List[PropertyResult]:
        return [r for r in self.results if r.result.status == status]

    @property
    def all_passed(self) -> bool:
        return all(r.result.status == PASS for r in self.results)

    def failures_by_module(self) -> Dict[str, List[PropertyResult]]:
        failures: Dict[str, List[PropertyResult]] = {}
        for result in self.by_status(FAIL):
            failures.setdefault(result.module_name, []).append(result)
        return failures

    def counts_by_category(self) -> Dict[str, int]:
        counts = {P0: 0, P1: 0, P2: 0, P3: 0}
        for result in self.results:
            counts[result.category] += 1
        counts["total"] = len(self.results)
        return counts

    def distinct_bug_modules(self) -> List[str]:
        """Modules whose failures correspond to logic bugs (distinct
        defective modules, the paper's bug-counting unit)."""
        return sorted(self.failures_by_module())


class FormalCampaign:
    """Runs the formal flow over a chip's blocks.

    ``blocks`` is a sequence of (block name, leaf modules).  Each module
    must carry Verifiable RTL and an integrity spec; modules that the
    scoping rule excludes are skipped (and recorded).

    ``budget_factory`` builds a fresh resource budget per property; the
    default is generous enough for every leaf problem and trips only on
    genuinely oversized cones (the Figure 7 scenario).
    """

    def __init__(self, blocks: Sequence[Tuple[str, Sequence[Module]]],
                 method: str = "auto", max_k: int = 40,
                 budget_factory: Optional[Callable[[], ResourceBudget]] = None,
                 lint: bool = True) -> None:
        self.blocks = [(name, list(mods)) for name, mods in blocks]
        self.method = method
        self.max_k = max_k
        self.budget_factory = budget_factory or (
            lambda: ResourceBudget(sat_conflicts=200_000, bdd_nodes=2_000_000)
        )
        self.lint = lint

    # ------------------------------------------------------------------
    def run(self, progress: Optional[Callable[[str], None]] = None
            ) -> CampaignReport:
        report = CampaignReport()
        started = time.perf_counter()
        for block_name, modules in self.blocks:
            summary = report.blocks.setdefault(
                block_name, BlockSummary(block_name)
            )
            for module in modules:
                entry = classify(module)
                if not entry.in_scope:
                    continue
                summary.submodules += 1
                if self.lint:
                    report.lint_issues.extend(lint_verifiable(module))
                self._check_module(block_name, module, summary, report,
                                   progress)
            summary.bugs = len({
                r.module_name for r in report.results
                if r.block == block_name and r.result.status == FAIL
            })
        report.seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def _check_module(self, block_name: str, module: Module,
                      summary: BlockSummary, report: CampaignReport,
                      progress: Optional[Callable[[str], None]]) -> None:
        design = elaborate(module)
        for vunit in stereotype_vunits(module):
            for assert_name, _ in vunit.asserted():
                ts = compile_assertion(module, vunit, assert_name,
                                       design=design)
                checker = ModelChecker(ts, budget=self.budget_factory())
                result = checker.check(method=self.method,
                                       max_k=self.max_k)
                record = PropertyResult(
                    block=block_name,
                    module_name=module.name,
                    vunit_name=vunit.name,
                    assert_name=assert_name,
                    category=vunit.category,
                    result=result,
                )
                report.results.append(record)
                summary.add(vunit.category)
                if progress is not None:
                    progress(f"{record.qualified_name}: "
                             f"{result.status.upper()}")
