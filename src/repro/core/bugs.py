"""Logic-bug records and the formal-vs-simulation classification.

Table 3 of the paper classifies the seven logic bugs found by formal
verification by (a) the stereotype property type that caught them and
(b) whether conventional logic simulation could have found them easily.
This module defines the defect metadata type and derives the Table 3
rows from campaign outcomes instead of hard-coding them: a defect's
"found by simulation" column comes from actually running the budgeted
random-simulation campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Defect:
    """Metadata of one seeded logic bug."""

    defect_id: str            # 'B0' .. 'B6'
    block: str                # chip block the defective module lives in
    module_name: str          # leaf module carrying the bug
    property_type: str        # 'P0' | 'P1' | 'P2' — the type that catches it
    sim_easy: bool            # paper's "can be found by logic simulation easily?"
    description: str

    @property
    def paper_row(self) -> Dict[str, str]:
        from .stereotypes import CATEGORY_TITLES
        return {
            "Defect ID": self.defect_id,
            "Type of Property": CATEGORY_TITLES[self.property_type],
            "Can be found by logic simulation easily?":
                "Yes" if self.sim_easy else "No",
        }


@dataclass
class BugFinding:
    """How one defect fared in the two campaigns."""

    defect: Defect
    found_by_formal: bool
    formal_property: Optional[str] = None
    formal_depth: Optional[int] = None
    found_by_simulation: bool = False
    simulation_cycle: Optional[int] = None

    @property
    def matches_paper(self) -> bool:
        """The reproduction target: formal always finds the bug, and
        simulation finds it within budget exactly when the paper says
        it is easy."""
        return (self.found_by_formal
                and self.found_by_simulation == self.defect.sim_easy)


def classify_findings(defects: List[Defect],
                      formal_failures: Dict[str, List],
                      sim_violations: Dict[str, int]) -> List[BugFinding]:
    """Join campaign outcomes into Table 3 rows.

    ``formal_failures`` maps module name to the list of failed property
    results; ``sim_violations`` maps module name to the first violating
    cycle of the simulation campaign.
    """
    findings: List[BugFinding] = []
    for defect in defects:
        failures = formal_failures.get(defect.module_name, [])
        first = failures[0] if failures else None
        sim_cycle = sim_violations.get(defect.module_name)
        findings.append(BugFinding(
            defect=defect,
            found_by_formal=bool(failures),
            formal_property=getattr(first, "qualified_name", None),
            formal_depth=(first.result.depth if first is not None else None),
            found_by_simulation=sim_cycle is not None,
            simulation_cycle=sim_cycle,
        ))
    return findings
