"""Integrity-checkpoint enumeration.

A *checkpoint* is one place where the chip checks data integrity: each
parity-protected internal entity (FSM, counter, datapath register) and
each parity-protected primary-input group.  The chip specification put
the count above 1300 — the number that made exhaustive simulation
unrealistic and motivated the formal scope (paper section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..rtl.integrity import IntegritySpec
from ..rtl.module import Module

ENTITY = "entity"
INPUT = "input"
OUTPUT = "output"


@dataclass(frozen=True)
class Checkpoint:
    """One data-integrity check point."""

    module_name: str
    name: str
    kind: str          # 'entity' | 'input' | 'output'
    detail: str = ""


def enumerate_checkpoints(module: Module) -> List[Checkpoint]:
    """All checkpoints of one leaf module, detection points first."""
    spec = module.integrity
    if spec is None:
        return []
    points: List[Checkpoint] = []
    for ent in spec.entities:
        points.append(Checkpoint(module.name, ent.name, ENTITY, ent.kind))
    for group in spec.protected_inputs:
        points.append(Checkpoint(module.name, group.describe(), INPUT))
    for group in spec.protected_outputs:
        points.append(Checkpoint(module.name, group.describe(), OUTPUT))
    return points


def detection_checkpoints(modules: Iterable[Module]) -> List[Checkpoint]:
    """Checkpoints with error-*detection* duty (entities and inputs) —
    the population behind the paper's ">1300 checkpoints" figure and the
    P0 property count."""
    points: List[Checkpoint] = []
    for module in modules:
        points.extend(
            p for p in enumerate_checkpoints(module)
            if p.kind in (ENTITY, INPUT)
        )
    return points


def count_checkpoints(modules: Iterable[Module]) -> int:
    return len(detection_checkpoints(modules))
