"""Leaf-module discovery and formal-verification scoping.

The methodology applies the stereotype properties to every *leaf*
(non-structured) module.  A leaf is excluded only when it has no
internal state and no parity-protected data path (paper section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..rtl.integrity import IntegritySpec
from ..rtl.module import Module, iter_modules


@dataclass
class ScopeEntry:
    """Scoping decision for one leaf module."""

    module: Module
    in_scope: bool
    reason: str

    @property
    def spec(self) -> Optional[IntegritySpec]:
        return self.module.integrity


def discover_leaves(top: Module) -> List[Module]:
    """All distinct leaf modules under (and including) ``top``."""
    return [m for m in iter_modules(top) if m.is_leaf()]


def classify(module: Module) -> ScopeEntry:
    """Decide whether a leaf module is in the formal scope."""
    if not module.is_leaf():
        return ScopeEntry(module, False, "structured (non-leaf) module")
    spec = module.integrity
    if spec is None:
        return ScopeEntry(
            module, False,
            "no integrity specification released — nothing to verify"
        )
    if not spec.has_checkpoints():
        return ScopeEntry(
            module, False,
            "no internal state and no parity-protected paths"
        )
    return ScopeEntry(module, True, "leaf with integrity checkpoints")


def formal_scope(modules: List[Module]) -> List[ScopeEntry]:
    """Scope every module; in-scope entries first, stable order."""
    entries = [classify(m) for m in modules]
    return sorted(entries, key=lambda e: not e.in_scope)
