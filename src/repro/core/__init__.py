"""Methodology core: stereotype property generation, scoping,
divide-and-conquer partitioning, the formal campaign and reporting."""

from .stereotypes import (
    CATEGORY_TITLES, P0, P1, P2, P3, count_by_category, edetect_vunit,
    extra_vunit, integrity_vunit, soundness_vunit, stereotype_vunits,
)
from .leaf import ScopeEntry, classify, discover_leaves, formal_scope
from .checkpoints import (
    Checkpoint, count_checkpoints, detection_checkpoints,
    enumerate_checkpoints,
)
from .partition import (
    CUT_SUFFIX, PartitionPlan, SubProblem, cut_registers,
    partition_property,
)
from .bugs import BugFinding, Defect, classify_findings
from .campaign import (
    BlockSummary, CampaignReport, FormalCampaign, PropertyResult,
)
from .report import (
    format_status_summary, format_table2, format_table3, render_table,
)

__all__ = [
    "CATEGORY_TITLES", "P0", "P1", "P2", "P3", "count_by_category",
    "edetect_vunit", "extra_vunit", "integrity_vunit", "soundness_vunit",
    "stereotype_vunits",
    "ScopeEntry", "classify", "discover_leaves", "formal_scope",
    "Checkpoint", "count_checkpoints", "detection_checkpoints",
    "enumerate_checkpoints",
    "CUT_SUFFIX", "PartitionPlan", "SubProblem", "cut_registers",
    "partition_property",
    "BugFinding", "Defect", "classify_findings",
    "BlockSummary", "CampaignReport", "FormalCampaign", "PropertyResult",
    "format_status_summary", "format_table2", "format_table3",
    "render_table",
]
