"""The three stereotype property generators — the paper's contribution.

Section 3 of the paper breaks the system-level RAS requirements down to
three *stereotype* properties that every leaf module must satisfy, so
that each logic designer — not a formal-verification expert — can
release them mechanically from the module's integrity specification:

- **P0 — ability of error detection** (:func:`edetect_vunit`,
  Figure 2): every illegal value at every integrity checkpoint is
  detected and reported.  One ``Check1`` per protected entity (driven
  through the error-injection ports) and one ``Check2`` per protected
  primary-input group.
- **P1 — soundness of internal states** (:func:`soundness_vunit`,
  Figure 3): with clean inputs and injection disabled, the hardware
  error report never fires.  One assertion per HE report signal.
- **P2 — output data integrity** (:func:`integrity_vunit`, Figure 4):
  with clean inputs and injection disabled, every protected output
  group always carries odd parity.  One assertion per output group.
- **P3 — other properties** (:func:`extra_vunit`): module-specific
  designer-written properties, verified under the same environment.

Each generated vunit renders to paper-style PSL text via ``emit()`` and
is compiled for the engines by :mod:`repro.psl.compile`.
"""

from __future__ import annotations

from typing import List, Optional

from ..psl.ast import (
    Always, AndB, BoolExpr, Implication, Name, Never, Next, NotB, OrB,
    Property, PslError, RedXor, VUnit,
)
from ..psl.parser import parse_property
from ..rtl.integrity import IntegritySpec, ParityGroup
from ..rtl.module import Module

P0 = "P0"
P1 = "P1"
P2 = "P2"
P3 = "P3"

CATEGORY_TITLES = {
    P0: "Ability of Error Detection",
    P1: "Soundness of Internal States",
    P2: "Output Data Integrity",
    P3: "Other Properties",
}


def _spec_of(module: Module, spec: Optional[IntegritySpec]) -> IntegritySpec:
    spec = spec if spec is not None else module.integrity
    if spec is None:
        raise PslError(f"module {module.name!r} has no integrity spec")
    return spec


def _group_check(group: ParityGroup, module: Module) -> BoolExpr:
    """``^SIG`` (or ``^SIG[hi:lo]``) — the parity-ok predicate."""
    if group.width is None and group.lsb == 0:
        return RedXor(Name(group.signal))
    width = group.width
    if width is None:
        width = module.signal(group.signal).width - group.lsb
    return RedXor(Name(group.signal, group.lsb + width - 1, group.lsb))


def _he_fires(spec: IntegritySpec) -> BoolExpr:
    """Any hardware-error report asserted."""
    if not spec.he_signals:
        raise PslError("integrity spec has no HE report signals")
    fired: BoolExpr = Name(spec.he_signals[0])
    for signal in spec.he_signals[1:]:
        fired = OrB(fired, Name(signal))
    return fired


# ----------------------------------------------------------------------
# P0 — ability of error detection (Figure 2)
# ----------------------------------------------------------------------

def edetect_vunit(module: Module,
                  spec: Optional[IntegritySpec] = None) -> VUnit:
    """Generate the error-detection vunit (``M_edetect``).

    Check1, per entity ``i``: driving ``EC[i]`` with an even-parity
    value on the entity's ED slice must raise HE in the next cycle.
    Check2, per protected input group: an even-parity input word must
    raise HE in the next cycle.
    """
    spec = _spec_of(module, spec)
    unit = VUnit(f"{module.name}_edetect", module.name,
                 comment="check error detection ability")
    unit.category = P0
    he = _he_fires(spec)

    if spec.entities and (spec.ec_port is None or spec.ed_port is None):
        raise PslError(
            f"module {module.name!r}: entities without EC/ED ports — "
            f"release Verifiable RTL first (make_verifiable)"
        )
    ec_width = module.inputs[spec.ec_port].width if spec.entities else 0
    for ent in spec.entities:
        reg = next(r for r in module.regs if r.name == ent.reg_name)
        ec_bit = (Name(spec.ec_port, ent.ec_index) if ec_width > 1
                  else Name(spec.ec_port))
        ed_slice = Name(spec.ed_port, reg.width - 1, 0)
        antecedent = AndB(ec_bit, NotB(RedXor(ed_slice)))
        prop = Always(Implication(antecedent, Next(he)))
        name = f"pCheck1_{ent.name}"
        unit.declare(name, prop,
                     comment=f"inject even parity into {ent.kind} "
                             f"{ent.name}")
        unit.assert_(name)

    for group in spec.protected_inputs:
        name = f"pCheck2_{group.signal}_{group.lsb}"
        override = spec.p0_overrides.get(group.signal)
        if override is not None:
            prop = parse_property(override)
        else:
            antecedent = NotB(_group_check(group, module))
            prop = Always(Implication(antecedent, Next(he)))
        unit.declare(name, prop,
                     comment=f"{group.describe()} should be odd parity")
        unit.assert_(name)
    return unit


# ----------------------------------------------------------------------
# shared environment for P1/P2/P3 (Figures 3 and 4)
# ----------------------------------------------------------------------

def _assume_environment(unit: VUnit, module: Module,
                        spec: IntegritySpec) -> None:
    """Assume clean inputs and disabled injection."""
    for group in spec.protected_inputs:
        if group.signal in spec.free_inputs:
            continue
        name = f"pIntegrityI_{group.signal}_{group.lsb}"
        unit.declare(name, Always(_group_check(group, module)),
                     comment=f"{group.describe()} should be odd parity")
        unit.assume(name)
    if spec.ec_port is not None:
        unit.declare("pNoErrInjection",
                     Always(NotB(Name(spec.ec_port))),
                     comment="Error injection is disabled")
        unit.assume("pNoErrInjection")
    for name, source in spec.env_assumptions:
        unit.declare(name, parse_property(source),
                     comment="designer-released environment assumption")
        unit.assume(name)


# ----------------------------------------------------------------------
# P1 — soundness of internal states (Figure 3)
# ----------------------------------------------------------------------

def soundness_vunit(module: Module,
                    spec: Optional[IntegritySpec] = None) -> VUnit:
    """Generate the soundness vunit (``M_soundness``): HE never fires
    in normal operation — one assertion per report signal."""
    spec = _spec_of(module, spec)
    unit = VUnit(f"{module.name}_soundness", module.name,
                 comment="soundness check")
    unit.category = P1
    _assume_environment(unit, module, spec)
    for he in spec.he_signals:
        name = f"pNoError_{he}"
        unit.declare(name, Never(Name(he)),
                     comment="then no error is reported")
        unit.assert_(name)
    return unit


# ----------------------------------------------------------------------
# P2 — output data integrity (Figure 4)
# ----------------------------------------------------------------------

def integrity_vunit(module: Module,
                    spec: Optional[IntegritySpec] = None) -> VUnit:
    """Generate the output-integrity vunit (``M_integrity``): every
    protected output group carries odd parity in normal operation."""
    spec = _spec_of(module, spec)
    unit = VUnit(f"{module.name}_integrity", module.name,
                 comment="integrity check")
    unit.category = P2
    _assume_environment(unit, module, spec)
    for group in spec.protected_outputs:
        name = f"pIntegrityO_{group.signal}_{group.lsb}"
        unit.declare(name, Always(_group_check(group, module)),
                     comment=f"then integrity of {group.describe()} holds")
        unit.assert_(name)
    return unit


# ----------------------------------------------------------------------
# P3 — other properties
# ----------------------------------------------------------------------

def extra_vunit(module: Module,
                spec: Optional[IntegritySpec] = None) -> Optional[VUnit]:
    """Generate the module-specific (P3) vunit, or None when the
    designer released no extra properties."""
    spec = _spec_of(module, spec)
    if not spec.extra_properties:
        return None
    unit = VUnit(f"{module.name}_other", module.name,
                 comment="module-specific properties")
    unit.category = P3
    _assume_environment(unit, module, spec)
    for name, source in spec.extra_properties:
        unit.declare(name, parse_property(source))
        unit.assert_(name)
    return unit


# ----------------------------------------------------------------------

def stereotype_vunits(module: Module,
                      spec: Optional[IntegritySpec] = None) -> List[VUnit]:
    """All vunits of one leaf module, in P0..P3 order.

    Vunits with no assertions (e.g. a module without entities has no
    Check1 and possibly no Check2) are omitted.
    """
    spec = _spec_of(module, spec)
    units: List[VUnit] = []
    for unit in (edetect_vunit(module, spec), soundness_vunit(module, spec),
                 integrity_vunit(module, spec), extra_vunit(module, spec)):
        if unit is not None and unit.asserted():
            units.append(unit)
    return units


def count_by_category(units: List[VUnit]) -> dict:
    """Assertion counts per category — one row of Table 2."""
    counts = {P0: 0, P1: 0, P2: 0, P3: 0}
    for unit in units:
        counts[unit.category] += len(unit.asserted())
    counts["total"] = sum(counts.values())
    return counts
