"""Report rendering: the paper's result tables as text.

Formats campaign outcomes in the shape of the paper's Tables 2 and 3 so
the benchmark harness can print paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .bugs import BugFinding
from .campaign import CampaignReport


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Minimal fixed-width ASCII table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialised)
    return "\n".join(lines)


def format_table2(report: CampaignReport) -> str:
    """Table 2: number of verified properties per block and type."""
    headers = ["Module Name", "# of Sub", "# of Bug",
               "P0", "P1", "P2", "P3", "Total"]
    rows: List[List[object]] = []
    totals = [0] * 7
    for name in sorted(report.blocks):
        block = report.blocks[name]
        row = [name, block.submodules, block.bugs,
               block.p0, block.p1, block.p2, block.p3, block.total]
        rows.append(row)
        for index, value in enumerate(row[1:]):
            totals[index] += value
    rows.append(["Total"] + totals)
    legend = ("P0: Ability of Error Detection\n"
              "P1: Soundness of Internal States\n"
              "P2: Output Data Integrity\n"
              "P3: Other Properties")
    return render_table(headers, rows) + "\n" + legend


def format_table3(findings: List[BugFinding]) -> str:
    """Table 3: classification of logic bugs, with measured columns."""
    from .stereotypes import CATEGORY_TITLES
    headers = ["Defect ID", "Type of Property",
               "Sim easy? (paper)", "Found by sim (measured)",
               "Found by formal (measured)"]
    rows = []
    for finding in sorted(findings, key=lambda f: f.defect.defect_id):
        defect = finding.defect
        rows.append([
            defect.defect_id,
            CATEGORY_TITLES[defect.property_type],
            "Yes" if defect.sim_easy else "No",
            "Yes" if finding.found_by_simulation else "No",
            "Yes" if finding.found_by_formal else "No",
        ])
    return render_table(headers, rows)


def format_status_summary(report: CampaignReport) -> str:
    """One-paragraph campaign summary (the §6.1 narrative)."""
    counts = report.counts_by_category()
    passed = len(report.by_status("pass"))
    failed = len(report.by_status("fail"))
    timed_out = len(report.by_status("timeout"))
    return (
        f"{counts['total']} PSL assertions checked in "
        f"{report.seconds:.1f}s: {passed} passed, {failed} failed, "
        f"{timed_out} timed out "
        f"(P0={counts['P0']}, P1={counts['P1']}, P2={counts['P2']}, "
        f"P3={counts['P3']}); "
        f"{len(report.distinct_bug_modules())} defective module(s)"
    )
