"""repro — reproduction of "A Formal Verification Methodology for
Checking Data Integrity" (Umezawa & Shimizu, DATE 2004).

Subpackages
-----------
``repro.rtl``
    RTL substrate: expression IR, module hierarchy, parity protection,
    the Verifiable-RTL error-injection transform, elaboration,
    bit-blasting (AIG) and Verilog emission.
``repro.sim``
    Cycle-accurate logic simulator, testbenches, stimulus and the
    simulation bug-hunt campaign (the paper's baseline).
``repro.formal``
    From-scratch formal engines: CDCL SAT, BMC, k-induction, ROBDDs,
    forward/backward reachability, POBDD partitioned reachability.
``repro.psl``
    PSL subset front-end: AST, parser, Python builder, vunits, and
    compilation of properties into safety monitors.
``repro.core``
    The paper's methodology: stereotype property generation (P0/P1/P2),
    leaf-module scoping, divide-and-conquer property partitioning, and
    the formal verification campaign.
``repro.orchestrate``
    Job-based campaign orchestration: the declarative, serializable
    ``CampaignConfig``, pluggable scheduling/portfolio policies,
    check-job planning, serial and multiprocessing executors, per-job
    engine portfolios, the fingerprint-keyed incremental result cache
    (merge-safe across concurrent campaigns), crash-safe
    checkpoint/resume, and shared per-module BDD workspaces.
``repro.cli``
    The ``python -m repro`` command line: a whole campaign run,
    resumed, or inspected from one TOML config file.
``repro.synth``
    Gate-level lowering, area model and static timing analysis for the
    design-impact study (Table 4).
``repro.chip``
    The synthetic server-platform component chip (blocks A-E) with the
    paper's seven seeded defects.
"""

__version__ = "1.0.0"
