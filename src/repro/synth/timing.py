"""Static timing analysis over the mapped gate netlist.

Longest-path analysis with the library's pin-to-pin delays: paths
launch at primary inputs (arrival 0) or DFF outputs (clk-to-Q) and are
captured at DFF D pins (plus setup) or primary outputs.  Used to
reproduce the paper's selector-delay observation: the injection mux
adds ~200 ps, about 4-5% of the 4 ns cycle at 250 MHz, and causes no
timing-closure issue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..rtl.elaborate import elaborate
from ..rtl.module import Module
from .cells import CLOCK_PERIOD_PS, DFF_CLK_TO_Q, DFF_SETUP, LIBRARY
from .lower import GateNetlist, lower


@dataclass
class TimingReport:
    """Worst-case combinational timing of one design."""

    design_name: str
    critical_path_ps: float        # register-to-register incl. clk->Q+setup
    worst_logic_ps: float          # pure combinational portion
    clock_period_ps: float = CLOCK_PERIOD_PS

    @property
    def slack_ps(self) -> float:
        return self.clock_period_ps - self.critical_path_ps

    @property
    def meets_timing(self) -> bool:
        return self.slack_ps >= 0.0

    @property
    def utilisation_percent(self) -> float:
        return 100.0 * self.critical_path_ps / self.clock_period_ps


def arrival_times(net: GateNetlist) -> List[float]:
    """Arrival time (ps) at every gate output, topological DP.

    Gate ids are created fanin-first by the lowerer, so index order is a
    valid topological order for the combinational graph; DFF outputs are
    launch points regardless of their D cone.
    """
    arrivals: List[float] = [0.0] * len(net.gates)
    for index, gate in enumerate(net.gates):
        if gate.cell in ("PI", "CONST"):
            arrivals[index] = 0.0
        elif gate.cell == "DFF":
            arrivals[index] = DFF_CLK_TO_Q
        else:
            delay = LIBRARY[gate.cell].delay
            worst_input = max(
                (arrivals[f] for f in gate.fanins), default=0.0
            )
            arrivals[index] = worst_input + delay
    return arrivals


def analyse_netlist(name: str, net: GateNetlist) -> TimingReport:
    arrivals = arrival_times(net)
    worst = 0.0
    for q, d in net.dff_d.items():
        worst = max(worst, arrivals[d] + DFF_SETUP)
    for po in net.primary_outputs:
        worst = max(worst, arrivals[po])
    logic_only = max(
        [arrivals[d] - DFF_CLK_TO_Q for d in net.dff_d.values()]
        + [0.0]
    )
    return TimingReport(name, critical_path_ps=worst,
                        worst_logic_ps=max(logic_only, 0.0))


def analyse_module(module: Module) -> TimingReport:
    """STA of one module."""
    return analyse_netlist(module.name, lower(elaborate(module)))


@dataclass
class SelectorImpact:
    """The paper's delay measurement: injection-mux (selector) cost."""

    module_name: str
    base: TimingReport
    verifiable: TimingReport

    @property
    def added_delay_ps(self) -> float:
        return (self.verifiable.critical_path_ps
                - self.base.critical_path_ps)

    @property
    def selector_delay_ps(self) -> float:
        return LIBRARY["MUX2"].delay

    @property
    def selector_percent_of_cycle(self) -> float:
        return 100.0 * self.selector_delay_ps / CLOCK_PERIOD_PS

    @property
    def closes_timing(self) -> bool:
        return self.verifiable.meets_timing


def selector_impact(base: Module, verifiable: Module) -> SelectorImpact:
    """Timing impact of making one module verifiable."""
    return SelectorImpact(
        module_name=base.name,
        base=analyse_module(base),
        verifiable=analyse_module(verifiable),
    )
