"""Synthesis/implementation model: cell library, gate-level lowering,
area accounting and static timing analysis for the Table 4 study."""

from .cells import (
    CLOCK_PERIOD_PS, Cell, DFF_CLK_TO_Q, DFF_SETUP, LIBRARY, cell,
)
from .lower import Gate, GateNetlist, lower
from .area import AreaIncrease, AreaReport, area_increase
from .timing import (
    SelectorImpact, TimingReport, analyse_module, analyse_netlist,
    arrival_times, selector_impact,
)

__all__ = [
    "CLOCK_PERIOD_PS", "Cell", "DFF_CLK_TO_Q", "DFF_SETUP", "LIBRARY",
    "cell",
    "Gate", "GateNetlist", "lower",
    "AreaIncrease", "AreaReport", "area_increase",
    "SelectorImpact", "TimingReport", "analyse_module", "analyse_netlist",
    "arrival_times", "selector_impact",
]
