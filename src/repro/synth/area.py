"""Area accounting — the Table 4 design-impact study.

The paper synthesised several modules with and without the
error-injection feature and found the area increase below 2%.  The
increase comes from the selector (MUX2) inserted in front of every
protected register plus the injection ports' fanout buffering; here it
is measured by lowering both module variants to the cell library and
comparing gate-equivalent totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..rtl.elaborate import elaborate
from ..rtl.module import Module
from .cells import LIBRARY
from .lower import GateNetlist, lower


@dataclass
class AreaReport:
    """Cell counts and gate-equivalent area of one design."""

    design_name: str
    cell_counts: Dict[str, int]
    gate_equivalents: float

    @classmethod
    def of_netlist(cls, name: str, net: GateNetlist) -> "AreaReport":
        counts = {
            cell: count for cell, count in net.counts().items()
            if cell in LIBRARY
        }
        total = sum(LIBRARY[cell].area * count
                    for cell, count in counts.items())
        return cls(name, counts, total)

    @classmethod
    def of_module(cls, module: Module) -> "AreaReport":
        return cls.of_netlist(module.name, lower(elaborate(module)))


@dataclass
class AreaIncrease:
    """Table 4 row: design impact of the error-injection feature."""

    module_name: str
    base: AreaReport
    verifiable: AreaReport

    @property
    def absolute(self) -> float:
        return self.verifiable.gate_equivalents - self.base.gate_equivalents

    @property
    def percent(self) -> float:
        if self.base.gate_equivalents == 0:
            return 0.0
        return 100.0 * self.absolute / self.base.gate_equivalents

    @property
    def added_muxes(self) -> int:
        return (self.verifiable.cell_counts.get("MUX2", 0)
                - self.base.cell_counts.get("MUX2", 0))


def area_increase(base: Module, verifiable: Module) -> AreaIncrease:
    """Measure the injection feature's cost on one module."""
    return AreaIncrease(
        module_name=base.name,
        base=AreaReport.of_module(base),
        verifiable=AreaReport.of_module(verifiable),
    )
