"""Standard-cell library model.

A small cell library representative of the paper's 0.11 µm CMOS ASIC
process.  Areas are in gate equivalents (GE, NAND2 = 1.0) and delays in
picoseconds.  The absolute values are generic textbook numbers for a
~0.11 µm standard-cell library; Table 4 and the selector-delay analysis
only rely on *relative* quantities (percent area increase, mux delay as
a fraction of the 4 ns cycle at 250 MHz), which these values preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Cell:
    """One library cell."""

    name: str
    area: float      # gate equivalents
    delay: float     # pin-to-pin worst-case delay, ps
    inputs: int


#: the library; MUX2's ~200 ps is the "selector" the paper measures
LIBRARY: Dict[str, Cell] = {
    "INV":  Cell("INV",  area=0.5,  delay=45.0,  inputs=1),
    "AND2": Cell("AND2", area=1.25, delay=75.0,  inputs=2),
    "OR2":  Cell("OR2",  area=1.25, delay=75.0,  inputs=2),
    "XOR2": Cell("XOR2", area=2.5,  delay=120.0, inputs=2),
    "MUX2": Cell("MUX2", area=2.75, delay=200.0, inputs=3),
    "DFF":  Cell("DFF",  area=5.5,  delay=180.0, inputs=1),  # clk->Q
}

#: sequencing overheads used by static timing analysis (ps)
DFF_SETUP = 120.0
DFF_CLK_TO_Q = LIBRARY["DFF"].delay

#: the chip's core clock: 250 MHz -> 4 ns cycle (Table 1)
CLOCK_PERIOD_PS = 4000.0


def cell(name: str) -> Cell:
    return LIBRARY[name]
