"""Gate-level lowering of a flat design.

Maps the word-level expression IR onto the cell library: elementwise
logic becomes per-bit gates, arithmetic becomes ripple structures,
reductions become balanced trees, and every register bit becomes a DFF.
The result is a :class:`GateNetlist` suitable for area accounting and
static timing analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rtl.elaborate import FlatDesign
from ..rtl.signals import Const, Expr, Input, Op, Reg

CONST0 = 0
CONST1 = 1


@dataclass
class Gate:
    """One gate instance (or special node: PI / DFF output / constant)."""

    cell: str                 # library cell name, or 'PI' / 'DFF' / 'CONST'
    fanins: Tuple[int, ...]
    name: str = ""


@dataclass
class GateNetlist:
    """Bit-level mapped netlist."""

    gates: List[Gate] = field(default_factory=list)
    dff_d: Dict[int, int] = field(default_factory=dict)   # DFF id -> D id
    primary_outputs: List[int] = field(default_factory=list)

    def add(self, cell: str, *fanins: int, name: str = "") -> int:
        self.gates.append(Gate(cell, tuple(fanins), name))
        return len(self.gates) - 1

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for gate in self.gates:
            tally[gate.cell] = tally.get(gate.cell, 0) + 1
        return tally

    def num_cells(self) -> int:
        return sum(1 for g in self.gates
                   if g.cell not in ("PI", "CONST"))


class _Lowerer:
    def __init__(self, design: FlatDesign) -> None:
        self.design = design
        self.net = GateNetlist()
        self._memo: Dict[int, List[int]] = {}
        self._const0 = self.net.add("CONST", name="const0")
        self._const1 = self.net.add("CONST", name="const1")

    def run(self) -> GateNetlist:
        net = self.net
        dff_bits: Dict[str, List[int]] = {}
        for name, port in self.design.inputs.items():
            self._memo[id(port)] = [
                net.add("PI", name=f"{name}[{i}]") for i in range(port.width)
            ]
        for reg in self.design.regs:
            bits = [net.add("DFF", name=f"{reg.name}[{i}]")
                    for i in range(reg.width)]
            dff_bits[reg.name] = bits
            self._memo[id(reg)] = bits
        for reg in self.design.regs:
            next_bits = self.lower(reg.next)
            for q, d in zip(dff_bits[reg.name], next_bits):
                net.dff_d[q] = d
        for name, expr in self.design.outputs.items():
            net.primary_outputs.extend(self.lower(expr))
        return net

    # ------------------------------------------------------------------
    def lower(self, expr: Expr) -> List[int]:
        stack = [expr]
        memo = self._memo
        while stack:
            node = stack[-1]
            if id(node) in memo:
                stack.pop()
                continue
            if isinstance(node, Const):
                memo[id(node)] = [
                    self._const1 if (node.value >> i) & 1 else self._const0
                    for i in range(node.width)
                ]
                stack.pop()
                continue
            assert isinstance(node, Op), f"unlowerable leaf {node!r}"
            pending = [op for op in node.operands if id(op) not in memo]
            if pending:
                stack.extend(pending)
                continue
            operands = [memo[id(op)] for op in node.operands]
            memo[id(node)] = self._lower_op(node, operands)
            stack.pop()
        return memo[id(expr)]

    def _lower_op(self, node: Op, ops: List[List[int]]) -> List[int]:
        net = self.net
        kind = node.kind
        if kind == "NOT":
            return [net.add("INV", bit) for bit in ops[0]]
        if kind in ("AND", "OR", "XOR"):
            cell = {"AND": "AND2", "OR": "OR2", "XOR": "XOR2"}[kind]
            return [net.add(cell, a, b) for a, b in zip(ops[0], ops[1])]
        if kind == "MUX":
            sel = ops[0][0]
            return [net.add("MUX2", sel, t, f)
                    for t, f in zip(ops[1], ops[2])]
        if kind in ("ADD", "SUB"):
            return self._ripple(ops[0], ops[1], subtract=(kind == "SUB"))
        if kind == "EQ":
            xnors = [net.add("INV", net.add("XOR2", a, b))
                     for a, b in zip(ops[0], ops[1])]
            return [self._tree("AND2", xnors)]
        if kind == "LT":
            return [self._less_than(ops[0], ops[1])]
        if kind == "CONCAT":
            bits: List[int] = []
            for part in reversed(ops):
                bits.extend(part)
            return bits
        if kind == "SLICE":
            lo = node.param
            return ops[0][lo:lo + node.width]
        if kind == "REDXOR":
            return [self._tree("XOR2", ops[0])]
        if kind == "REDOR":
            return [self._tree("OR2", ops[0])]
        if kind == "REDAND":
            return [self._tree("AND2", ops[0])]
        raise AssertionError(f"unhandled op {kind}")

    def _tree(self, cell: str, bits: List[int]) -> int:
        """Balanced reduction tree."""
        net = self.net
        level = list(bits)
        if not level:
            raise ValueError("empty reduction")
        while len(level) > 1:
            paired: List[int] = []
            for index in range(0, len(level) - 1, 2):
                paired.append(net.add(cell, level[index], level[index + 1]))
            if len(level) & 1:
                paired.append(level[-1])
            level = paired
        return level[0]

    def _ripple(self, a: List[int], b: List[int], subtract: bool) -> List[int]:
        net = self.net
        if subtract:
            b = [net.add("INV", bit) for bit in b]
            carry = self._const1
        else:
            carry = self._const0
        out: List[int] = []
        for bit_a, bit_b in zip(a, b):
            axb = net.add("XOR2", bit_a, bit_b)
            out.append(net.add("XOR2", axb, carry))
            carry = net.add(
                "OR2",
                net.add("AND2", bit_a, bit_b),
                net.add("AND2", axb, carry),
            )
        return out

    def _less_than(self, a: List[int], b: List[int]) -> int:
        net = self.net
        lt = self._const0
        for bit_a, bit_b in zip(a, b):
            eq = net.add("INV", net.add("XOR2", bit_a, bit_b))
            here = net.add("AND2", net.add("INV", bit_a), bit_b)
            lt = net.add("OR2", here, net.add("AND2", eq, lt))
        return lt


def lower(design: FlatDesign) -> GateNetlist:
    """Lower a flat design to the cell library."""
    return _Lowerer(design).run()
