"""PSL subset front-end: AST, textual parser, vunits, and compilation of
properties into safety monitors for the formal engines."""

from .ast import (
    ASSERT, ASSUME, Always, AndB, BoolExpr, Implication, Literal, Name,
    Never, Next, NotB, OrB, Property, PropertyDecl, PslError, RedXor, VUnit,
    XorB,
)
from .parser import parse_bool, parse_property, parse_vunit, parse_vunits
from .compile import (
    BAD_OUTPUT, CONSTRAINT_OUTPUT, PropertyCompiler, compile_assertion,
    compile_vunit,
)

__all__ = [
    "ASSERT", "ASSUME", "Always", "AndB", "BoolExpr", "Implication",
    "Literal", "Name", "Never", "Next", "NotB", "OrB", "Property",
    "PropertyDecl", "PslError", "RedXor", "VUnit", "XorB",
    "parse_bool", "parse_property", "parse_vunit", "parse_vunits",
    "BAD_OUTPUT", "CONSTRAINT_OUTPUT", "PropertyCompiler",
    "compile_assertion", "compile_vunit",
]
