"""Recursive-descent parser for the paper's PSL subset.

Grammar (comments ``// ...`` are attached to declarations):

.. code-block:: text

    vunit      := 'vunit' IDENT '(' IDENT ')' '{' item* '}'
    item       := 'property' IDENT '=' property ';'
                | 'assume' IDENT ';'
                | 'assert' IDENT ';'
    property   := 'always' '(' prop_body ')'
                | 'never'  '(' bool_expr ')'
                | prop_body
    prop_body  := bool_expr [ '->' [ 'next' ] bool_expr ]
    bool_expr  := or_expr
    or_expr    := and_expr ( '|' and_expr )*
    and_expr   := xor_expr ( '&' xor_expr )*
    xor_expr   := unary ( '^' unary )*
    unary      := '~' unary | '^' unary | primary
    primary    := '(' bool_expr ')' | NUMBER | IDENT [ '[' n [':' n] ']' ]

Note the PSL pun on ``^``: prefix it is xor-reduction (the parity
check), infix it is binary xor — same as Verilog.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ast import (
    Always, AndB, BoolExpr, Implication, Literal, Name, Never, Next, NotB,
    OrB, Property, PslError, RedXor, VUnit, XorB,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<arrow>->)
  | (?P<num>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9.]*)
  | (?P<sym>[{}()\[\];=~^&|:])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"vunit", "property", "assume", "assert", "always", "never",
             "next"}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int) -> None:
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise PslError(
                f"unexpected character {source[position]!r} at offset "
                f"{position}"
            )
        position = match.end()
        if match.lastgroup in ("ws",):
            continue
        if match.lastgroup == "comment":
            tokens.append(_Token("comment", match.group()[2:].strip(),
                                 match.start()))
            continue
        if match.lastgroup == "arrow":
            tokens.append(_Token("->", "->", match.start()))
        elif match.lastgroup == "num":
            tokens.append(_Token("num", match.group(), match.start()))
        elif match.lastgroup == "ident":
            text = match.group()
            kind = text if text in _KEYWORDS else "ident"
            tokens.append(_Token(kind, text, match.start()))
        else:
            tokens.append(_Token(match.group(), match.group(), match.start()))
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = [t for t in _tokenize(source)]
        self.index = 0

    # ------------------------------------------------------------------
    def peek(self, skip_comments: bool = True) -> Optional[_Token]:
        index = self.index
        while index < len(self.tokens):
            token = self.tokens[index]
            if skip_comments and token.kind == "comment":
                index += 1
                continue
            return token
        return None

    def next(self) -> _Token:
        while self.index < len(self.tokens):
            token = self.tokens[self.index]
            self.index += 1
            if token.kind == "comment":
                continue
            return token
        raise PslError("unexpected end of input")

    def take_comment(self) -> str:
        """Consume an immediately-following comment token, if any."""
        if (self.index < len(self.tokens)
                and self.tokens[self.index].kind == "comment"):
            token = self.tokens[self.index]
            self.index += 1
            return token.text
        return ""

    def expect(self, kind: str) -> _Token:
        token = self.next()
        if token.kind != kind:
            raise PslError(f"expected {kind!r}, found {token.text!r} at "
                           f"offset {token.pos}")
        return token

    def at_end(self) -> bool:
        return self.peek() is None

    # ------------------------------------------------------------------
    def parse_vunit(self) -> VUnit:
        self.expect("vunit")
        name = self.expect("ident").text
        self.expect("(")
        module_name = self.expect("ident").text
        self.expect(")")
        self.expect("{")
        comment = self.take_comment()
        unit = VUnit(name=name, module_name=module_name, comment=comment)
        while True:
            token = self.peek()
            if token is None:
                raise PslError(f"vunit {name!r}: missing closing brace")
            if token.kind == "}":
                self.next()
                break
            self._parse_item(unit)
        return unit

    def _parse_item(self, unit: VUnit) -> None:
        token = self.next()
        if token.kind == "property":
            prop_name = self.expect("ident").text
            self.expect("=")
            prop = self.parse_property()
            self.expect(";")
            comment = self.take_comment()
            unit.declare(prop_name, prop, comment)
        elif token.kind in ("assume", "assert"):
            prop_name = self.expect("ident").text
            self.expect(";")
            self.take_comment()
            if token.kind == "assume":
                unit.assume(prop_name)
            else:
                unit.assert_(prop_name)
        else:
            raise PslError(f"unexpected {token.text!r} in vunit body at "
                           f"offset {token.pos}")

    # ------------------------------------------------------------------
    def parse_property(self) -> Property:
        token = self.peek()
        if token is not None and token.kind == "always":
            self.next()
            self.expect("(")
            body = self._parse_prop_body()
            self.expect(")")
            return Always(body)
        if token is not None and token.kind == "never":
            self.next()
            self.expect("(")
            body = self.parse_bool()
            self.expect(")")
            return Never(body)
        body = self._parse_prop_body()
        if isinstance(body, BoolExpr):
            # bare boolean at the property level is an invariant
            return Always(body)
        return body if isinstance(body, Property) else Always(body)

    def _parse_prop_body(self):
        lhs = self.parse_bool()
        token = self.peek()
        if token is not None and token.kind == "->":
            self.next()
            token = self.peek()
            if token is not None and token.kind == "next":
                self.next()
                rhs = Next(self.parse_bool())
            else:
                rhs = self.parse_bool()
            return Implication(lhs, rhs)
        return lhs

    # ------------------------------------------------------------------
    def parse_bool(self) -> BoolExpr:
        return self._parse_or()

    def _parse_or(self) -> BoolExpr:
        expr = self._parse_and()
        while True:
            token = self.peek()
            if token is None or token.kind != "|":
                return expr
            self.next()
            expr = OrB(expr, self._parse_and())

    def _parse_and(self) -> BoolExpr:
        expr = self._parse_xor()
        while True:
            token = self.peek()
            if token is None or token.kind != "&":
                return expr
            self.next()
            expr = AndB(expr, self._parse_xor())

    def _parse_xor(self) -> BoolExpr:
        expr = self._parse_unary()
        while True:
            token = self.peek()
            if token is None or token.kind != "^":
                return expr
            self.next()
            expr = XorB(expr, self._parse_unary())

    def _parse_unary(self) -> BoolExpr:
        token = self.peek()
        if token is not None and token.kind == "~":
            self.next()
            return NotB(self._parse_unary())
        if token is not None and token.kind == "^":
            self.next()
            return RedXor(self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> BoolExpr:
        token = self.next()
        if token.kind == "(":
            expr = self.parse_bool()
            self.expect(")")
            return expr
        if token.kind == "num":
            return Literal(int(token.text))
        if token.kind == "ident":
            return self._maybe_select(token.text)
        raise PslError(f"unexpected {token.text!r} at offset {token.pos}")

    def _maybe_select(self, ident: str) -> BoolExpr:
        token = self.peek()
        if token is None or token.kind != "[":
            return Name(ident)
        self.next()
        msb = int(self.expect("num").text)
        token = self.peek()
        lsb = None
        if token is not None and token.kind == ":":
            self.next()
            lsb = int(self.expect("num").text)
        self.expect("]")
        return Name(ident, msb, lsb)


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------

def parse_vunit(source: str) -> VUnit:
    """Parse one verification unit."""
    parser = _Parser(source)
    unit = parser.parse_vunit()
    if not parser.at_end():
        leftover = parser.peek()
        raise PslError(f"trailing input at offset {leftover.pos}")
    return unit


def parse_vunits(source: str) -> List[VUnit]:
    """Parse a file containing several verification units."""
    parser = _Parser(source)
    units = []
    while not parser.at_end():
        units.append(parser.parse_vunit())
    return units


def parse_property(source: str) -> Property:
    """Parse a bare property expression."""
    parser = _Parser(source)
    prop = parser.parse_property()
    if not parser.at_end():
        leftover = parser.peek()
        raise PslError(f"trailing input at offset {leftover.pos}")
    return prop


def parse_bool(source: str) -> BoolExpr:
    """Parse a bare boolean-layer expression."""
    parser = _Parser(source)
    expr = parser.parse_bool()
    if not parser.at_end():
        leftover = parser.peek()
        raise PslError(f"trailing input at offset {leftover.pos}")
    return expr
