"""AST for the PSL subset used in the paper.

The paper's properties (Figures 2-4) use a small, regular fragment of
PSL's simple subset:

- boolean layer: signal names, bit/part selects, ``~`` ``&`` ``|``
  ``^`` (binary xor), prefix ``^sig`` (xor reduction — the odd-parity
  integrity check), and parenthesisation;
- temporal layer: ``always``, ``never``, boolean implication ``->`` and
  the one-cycle ``next``;
- verification units binding named properties to a module with
  ``assume`` and ``assert`` directives.

Every node renders back to PSL text via ``emit()``; the textual parser
(:mod:`repro.psl.parser`) and the emitters round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class PslError(ValueError):
    """Raised for malformed PSL constructs."""


# ----------------------------------------------------------------------
# boolean layer
# ----------------------------------------------------------------------

class BoolExpr:
    """Base class of boolean-layer expressions."""

    def emit(self) -> str:
        raise NotImplementedError

    # Python operator sugar for the builder API
    def __invert__(self) -> "BoolExpr":
        return NotB(self)

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return AndB(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return OrB(self, other)

    def __xor__(self, other: "BoolExpr") -> "BoolExpr":
        return XorB(self, other)

    def implies(self, other: "PropertyOrBool") -> "Implication":
        return Implication(self, other)

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, self.emit()))


@dataclass(frozen=True, eq=False)
class Name(BoolExpr):
    """A signal reference, optionally bit- or part-selected.

    ``Name("EC", 0)`` is ``EC[0]``; ``Name("ED", 3, 0)`` is ``ED[3:0]``.
    """

    ident: str
    msb: Optional[int] = None
    lsb: Optional[int] = None

    def emit(self) -> str:
        if self.msb is None:
            return self.ident
        if self.lsb is None or self.lsb == self.msb:
            return f"{self.ident}[{self.msb}]"
        return f"{self.ident}[{self.msb}:{self.lsb}]"


@dataclass(frozen=True, eq=False)
class NotB(BoolExpr):
    operand: BoolExpr

    def emit(self) -> str:
        return f"~{_paren(self.operand)}"


@dataclass(frozen=True, eq=False)
class RedXor(BoolExpr):
    """Prefix ``^sig``: xor-reduction, the odd-parity check."""

    operand: BoolExpr

    def emit(self) -> str:
        return f"^{_paren(self.operand)}"


@dataclass(frozen=True, eq=False)
class AndB(BoolExpr):
    left: BoolExpr
    right: BoolExpr

    def emit(self) -> str:
        return f"{_paren(self.left)} & {_paren(self.right)}"


@dataclass(frozen=True, eq=False)
class OrB(BoolExpr):
    left: BoolExpr
    right: BoolExpr

    def emit(self) -> str:
        return f"{_paren(self.left)} | {_paren(self.right)}"


@dataclass(frozen=True, eq=False)
class XorB(BoolExpr):
    left: BoolExpr
    right: BoolExpr

    def emit(self) -> str:
        return f"{_paren(self.left)} ^ {_paren(self.right)}"


@dataclass(frozen=True, eq=False)
class Literal(BoolExpr):
    """Boolean constant (``1`` / ``0``)."""

    value: int

    def emit(self) -> str:
        return str(self.value & 1)


def _paren(expr: BoolExpr) -> str:
    if isinstance(expr, (Name, Literal)):
        return expr.emit()
    if isinstance(expr, (NotB, RedXor)):
        return expr.emit()
    return f"({expr.emit()})"


# ----------------------------------------------------------------------
# temporal layer
# ----------------------------------------------------------------------

class Property:
    """Base class of temporal-layer property expressions."""

    def emit(self) -> str:
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, self.emit()))


PropertyOrBool = object  # Property | BoolExpr


@dataclass(frozen=True, eq=False)
class Next(Property):
    """``next b`` — b holds one cycle later."""

    operand: BoolExpr

    def emit(self) -> str:
        return f"next {_paren(self.operand)}"


@dataclass(frozen=True, eq=False)
class Implication(Property):
    """``a -> rhs`` where rhs is boolean or ``next`` boolean."""

    antecedent: BoolExpr
    consequent: PropertyOrBool  # BoolExpr | Next

    def emit(self) -> str:
        lhs = _paren(self.antecedent)
        if isinstance(self.consequent, BoolExpr):
            return f"{lhs} -> {_paren(self.consequent)}"
        return f"{lhs} -> {self.consequent.emit()}"


@dataclass(frozen=True, eq=False)
class Always(Property):
    """``always (inner)``."""

    inner: PropertyOrBool  # BoolExpr | Implication

    def emit(self) -> str:
        if isinstance(self.inner, BoolExpr):
            return f"always ( {self.inner.emit()} )"
        return f"always ( {self.inner.emit()} )"


@dataclass(frozen=True, eq=False)
class Never(Property):
    """``never (b)``."""

    inner: BoolExpr

    def emit(self) -> str:
        return f"never ( {self.inner.emit()} )"


# ----------------------------------------------------------------------
# verification units
# ----------------------------------------------------------------------

ASSUME = "assume"
ASSERT = "assert"


@dataclass
class PropertyDecl:
    """``property name = <prop>; // comment``"""

    name: str
    prop: Property
    comment: str = ""


@dataclass
class VUnit:
    """A PSL verification unit bound to one module.

    ``directives`` lists (kind, property-name) pairs in declaration
    order, kind being ``assume`` or ``assert``.
    """

    name: str
    module_name: str
    declarations: List[PropertyDecl] = field(default_factory=list)
    directives: List[Tuple[str, str]] = field(default_factory=list)
    comment: str = ""
    #: methodology classification: 'P0' | 'P1' | 'P2' | 'P3' (or '')
    category: str = ""

    # ------------------------------------------------------------------
    def declare(self, name: str, prop: Property,
                comment: str = "") -> PropertyDecl:
        if any(d.name == name for d in self.declarations):
            raise PslError(f"vunit {self.name!r}: duplicate property "
                           f"{name!r}")
        decl = PropertyDecl(name, prop, comment)
        self.declarations.append(decl)
        return decl

    def assume(self, prop_name: str) -> None:
        self._direct(ASSUME, prop_name)

    def assert_(self, prop_name: str) -> None:
        self._direct(ASSERT, prop_name)

    def _direct(self, kind: str, prop_name: str) -> None:
        if self.property_named(prop_name) is None:
            raise PslError(f"vunit {self.name!r}: directive references "
                           f"unknown property {prop_name!r}")
        self.directives.append((kind, prop_name))

    # ------------------------------------------------------------------
    def property_named(self, name: str) -> Optional[Property]:
        for decl in self.declarations:
            if decl.name == name:
                return decl.prop
        return None

    def assumed(self) -> List[Tuple[str, Property]]:
        return [(name, self.property_named(name))
                for kind, name in self.directives if kind == ASSUME]

    def asserted(self) -> List[Tuple[str, Property]]:
        return [(name, self.property_named(name))
                for kind, name in self.directives if kind == ASSERT]

    # ------------------------------------------------------------------
    def emit(self) -> str:
        """Render paper-style PSL text (compare Figures 2-4)."""
        header = f"vunit {self.name} ({self.module_name}) {{"
        if self.comment:
            header += f" // {self.comment}"
        lines = [header]
        emitted = set()
        for kind, prop_name in self.directives:
            decl = next(d for d in self.declarations if d.name == prop_name)
            if prop_name not in emitted:
                decl_line = (f"    property {decl.name:<16} = "
                             f"{decl.prop.emit()};")
                if decl.comment:
                    decl_line += f"  // {decl.comment}"
                lines.append(decl_line)
                emitted.add(prop_name)
            lines.append(f"    {kind:<8} {prop_name};")
        lines.append("}")
        return "\n".join(lines)
