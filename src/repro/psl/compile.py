"""Compilation of PSL vunits into safety-checking problems.

Every supported property becomes a *monitor*: extra combinational logic
(plus at most one pipeline register for ``next``) over the design's
signals, producing

- a 1-bit ``bad`` flag for the asserted property (1 = violated now), and
- a 1-bit ``constraint`` flag conjoining all assumed properties (a
  counterexample must keep it 1 on every cycle).

The monitored design is bit-blasted and handed to the engines as a
:class:`~repro.formal.transition.TransitionSystem`.  One vunit with
several ``assert`` directives yields one problem per assert — matching
the paper's property counting, where each assertion is verified (and
counted) individually.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..formal.problems import note_compilation, note_elaboration
from ..formal.transition import ClusterSystem, TransitionSystem
from ..rtl.elaborate import FlatDesign, elaborate
from ..rtl.module import Module
from ..rtl.netlist import bitblast
from ..rtl.signals import Const, Expr, Reg
from .ast import (
    Always, AndB, BoolExpr, Implication, Literal, Name, Never, Next, NotB,
    OrB, Property, PslError, RedXor, VUnit, XorB,
)

BAD_OUTPUT = "__bad__"
CONSTRAINT_OUTPUT = "__constraint__"


#: process-wide counter so monitor registers never collide, even when
#: several compilers touch the same design
_MONITOR_IDS = itertools.count()


class PropertyCompiler:
    """Compiles properties of one vunit against one design."""

    def __init__(self, design: FlatDesign) -> None:
        self.design = design
        self._monitor_count = _MONITOR_IDS

    # ------------------------------------------------------------------
    # boolean layer
    # ------------------------------------------------------------------
    def bool_expr(self, expr: BoolExpr) -> Expr:
        """Lower a boolean-layer expression to a 1-bit RTL expression."""
        if isinstance(expr, Name):
            return self._name(expr)
        if isinstance(expr, Literal):
            return Const(expr.value & 1, 1)
        if isinstance(expr, NotB):
            return ~self.bool_expr(expr.operand)
        if isinstance(expr, RedXor):
            return self._operand_word(expr.operand).reduce_xor()
        if isinstance(expr, AndB):
            return self.bool_expr(expr.left) & self.bool_expr(expr.right)
        if isinstance(expr, OrB):
            return self.bool_expr(expr.left) | self.bool_expr(expr.right)
        if isinstance(expr, XorB):
            return self.bool_expr(expr.left) ^ self.bool_expr(expr.right)
        raise PslError(f"unsupported boolean expression {expr!r}")

    def _name(self, name: Name) -> Expr:
        word = self._resolve(name)
        if word.width == 1:
            return word
        # multi-bit signal in boolean context: PSL treats any nonzero
        # value as true
        return word.reduce_or()

    def _operand_word(self, expr: BoolExpr) -> Expr:
        """Resolve the operand of a reduction without booleanising it."""
        if isinstance(expr, Name):
            return self._resolve(expr)
        return self.bool_expr(expr)

    def _resolve(self, name: Name) -> Expr:
        try:
            word = self.design.signal(name.ident)
        except KeyError:
            raise PslError(
                f"property references unknown signal {name.ident!r} in "
                f"design {self.design.name!r}"
            ) from None
        if name.msb is None:
            return word
        lsb = name.lsb if name.lsb is not None else name.msb
        if not 0 <= lsb <= name.msb < word.width:
            raise PslError(
                f"select {name.emit()} out of range for {word.width}-bit "
                f"signal"
            )
        return word[lsb:name.msb + 1]

    # ------------------------------------------------------------------
    # temporal layer
    # ------------------------------------------------------------------
    def violation(self, prop: Property) -> Expr:
        """1-bit flag that is 1 exactly when the property is violated in
        the current cycle (given the monitor state)."""
        return ~self.holds(prop)

    def holds(self, prop: Property) -> Expr:
        """1-bit flag: the property's per-cycle obligation holds now."""
        if isinstance(prop, Always):
            inner = prop.inner
            if isinstance(inner, BoolExpr):
                return self.bool_expr(inner)
            if isinstance(inner, Implication):
                return self._implication(inner)
            raise PslError(f"unsupported body under always: {inner!r}")
        if isinstance(prop, Never):
            return ~self.bool_expr(prop.inner)
        if isinstance(prop, Implication):
            return self._implication(prop)
        raise PslError(f"unsupported property {prop!r}")

    def _implication(self, imp: Implication) -> Expr:
        antecedent = self.bool_expr(imp.antecedent)
        if isinstance(imp.consequent, Next):
            delayed = self._delay(antecedent)
            consequent = self.bool_expr(imp.consequent.operand)
            return ~(delayed & ~consequent)
        if isinstance(imp.consequent, BoolExpr):
            consequent = self.bool_expr(imp.consequent)
            return ~(antecedent & ~consequent)
        raise PslError(f"unsupported consequent {imp.consequent!r}")

    def _delay(self, expr: Expr) -> Expr:
        """One-cycle pipeline register (initially 0) — the monitor state
        for ``next``."""
        index = next(self._monitor_count)
        monitor = Reg(f"__psl_delay_{index}", 1, reset=0)
        monitor.next = expr
        self.design.add_reg(monitor)
        return monitor


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------

def compile_assertion(module: Module, vunit: VUnit, assert_name: str,
                      design: Optional[FlatDesign] = None) -> TransitionSystem:
    """Build the safety problem for one ``assert`` of a vunit.

    All ``assume`` directives of the vunit constrain the problem.  The
    returned transition system is cone-of-influence reduced.

    ``design`` lets callers check against a transformed design (e.g. a
    cut-point abstraction); monitor registers for ``next`` operators are
    appended to it (they are globally uniquely named, so passing the
    same design to several compilations is safe — unused monitors are
    stripped by cone-of-influence reduction).
    """
    if design is None:
        note_elaboration()
        design = elaborate(module)
    note_compilation()
    compiler = PropertyCompiler(design)

    prop = vunit.property_named(assert_name)
    if prop is None:
        raise PslError(f"vunit {vunit.name!r} has no property "
                       f"{assert_name!r}")
    if (("assert", assert_name)) not in vunit.directives:
        raise PslError(f"property {assert_name!r} is not asserted in "
                       f"vunit {vunit.name!r}")

    bad = compiler.violation(prop)
    constraint: Expr = Const(1, 1)
    for _, assumed in vunit.assumed():
        constraint = constraint & compiler.holds(assumed)

    design.outputs[BAD_OUTPUT] = bad
    design.outputs[CONSTRAINT_OUTPUT] = constraint
    blaster = bitblast(design)
    name = f"{vunit.name}.{assert_name}"
    ts = TransitionSystem.from_blaster(
        blaster, BAD_OUTPUT, CONSTRAINT_OUTPUT, name=name
    )
    # leave the design reusable for the next assertion
    del design.outputs[BAD_OUTPUT]
    del design.outputs[CONSTRAINT_OUTPUT]
    return ts


def compile_sliced_assertion(module: Module, vunit: VUnit,
                             assert_name: str) -> TransitionSystem:
    """Build the safety problem for one ``assert`` from its COI slice.

    Elaborates the module fresh, computes the assertion's structural
    cone (:mod:`repro.formal.coi`), and compiles against the sliced
    design — only the cone's registers, the full input signature (so
    input literal numbering matches a full compile and cached
    counterexample frames replay either way), and the
    property-referenced outputs.  Store-backed callers should prefer
    :meth:`repro.formal.problems.CompiledProblemStore.sliced_problem`,
    which shares cone indexes and slices across jobs.
    """
    # deferred import: formal.coi sits above this front-end layer
    from ..formal.coi import ConeIndex

    note_elaboration()
    index = ConeIndex(elaborate(module))
    info = index.info(vunit, assert_name)
    return compile_assertion(module, vunit, assert_name,
                             design=index.slice(info))


def compile_cluster(module: Module, vunit: VUnit,
                    assert_names: Optional[List[str]] = None,
                    design: Optional[FlatDesign] = None) -> ClusterSystem:
    """Compile several assertions of one vunit into a single shared-AIG
    multi-bad problem (the paper's property clustering).

    All named assertions (default: every asserted property, in directive
    order) get their own 1-bit ``bad`` output; the vunit's assumptions
    conjoin into one shared constraint; one bit-blast produces one AIG
    serving every member.  The returned
    :class:`~repro.formal.transition.ClusterSystem` exposes a union-cone
    *spine* for shared unrolling plus per-assertion COI-reduced views
    that match each member's solo compilation up to AIG literal
    numbering.
    """
    if design is None:
        note_elaboration()
        design = elaborate(module)
    note_compilation()
    compiler = PropertyCompiler(design)

    if assert_names is None:
        assert_names = [name for name, _ in vunit.asserted()]
    bad_outputs: Dict[str, str] = {}
    for index, assert_name in enumerate(assert_names):
        prop = vunit.property_named(assert_name)
        if prop is None:
            raise PslError(f"vunit {vunit.name!r} has no property "
                           f"{assert_name!r}")
        if (("assert", assert_name)) not in vunit.directives:
            raise PslError(f"property {assert_name!r} is not asserted in "
                           f"vunit {vunit.name!r}")
        output = f"{BAD_OUTPUT}{index}"
        design.outputs[output] = compiler.violation(prop)
        bad_outputs[assert_name] = output

    constraint: Expr = Const(1, 1)
    for _, assumed in vunit.assumed():
        constraint = constraint & compiler.holds(assumed)
    design.outputs[CONSTRAINT_OUTPUT] = constraint

    blaster = bitblast(design)
    cluster = ClusterSystem.from_blaster(
        blaster, bad_outputs, CONSTRAINT_OUTPUT,
        name=f"{vunit.name}[{len(assert_names)}]",
    )
    # leave the design reusable for the next compilation
    for output in bad_outputs.values():
        del design.outputs[output]
    del design.outputs[CONSTRAINT_OUTPUT]
    return cluster


def compile_vunit(module: Module, vunit: VUnit,
                  store=None) -> List[TransitionSystem]:
    """One safety problem per asserted property, in directive order.

    ``store`` (a :class:`~repro.formal.problems.CompiledProblemStore`,
    duck-typed to keep this front-end layer free of upward imports)
    routes every compilation through the shared content-addressed
    layer: the vunit's assertions — and every other compilation of the
    same module content anywhere in the process — share one elaborated
    design, and re-compiling an unchanged assertion returns the
    retained transition system outright.  Without a store each
    assertion elaborates and compiles cold, as before.
    """
    problems = []
    for assert_name, _ in vunit.asserted():
        if store is not None:
            problems.append(store.problem(module, vunit, assert_name))
        else:
            problems.append(compile_assertion(module, vunit, assert_name))
    return problems
