"""Block assembly: base modules per block, made verifiable for the
campaign.

Each ``build_block_*`` returns the block's leaf modules in Verifiable
RTL form (error-injection ports inserted per the integrity spec).  Pass
the defect ids to seed (``{'B1', 'B5'}`` etc., or
:data:`~repro.chip.defects.ALL_DEFECT_IDS`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..rtl.inject import make_verifiable
from ..rtl.module import Module
from .library import LeafConfig, generic_leaf
from .specials import (
    B5_CASE, B5_DATA, B6_CASE, B6_DATA, address_decoder, fsm_controller,
    macro_interface, pipeline_stage, register_file, wrap_counter,
)
from .spec import (
    BLOCK_D_SHAPES, block_a_generics, block_b_configs, block_c_generics,
    block_e_generics,
)


def _verifiable(module: Module) -> Module:
    """Insert error injection, preserving defect/sim-view attributes."""
    verifiable = make_verifiable(module)
    sim_base = module.attrs.get("sim_view_base")
    if sim_base is not None:
        verifiable.attrs["sim_view"] = make_verifiable(sim_base)
        del verifiable.attrs["sim_view_base"]
    return verifiable


def build_block_a(defects: Set[str] = frozenset()) -> List[Module]:
    """Block A: control/CSR cluster — 19 leafs, hosts B0, B1, B3."""
    modules = [
        wrap_counter("A00_wrapcnt", buggy="B0" in defects),
        register_file("A01_regfile", buggy="B1" in defects),
        macro_interface("A02_macro", buggy="B3" in defects),
    ]
    modules.extend(generic_leaf(cfg) for cfg in block_a_generics())
    return [_verifiable(m) for m in modules]


def build_block_b(defects: Set[str] = frozenset()) -> List[Module]:
    """Block B: crossbar datapaths — 2 wide leafs, no bugs."""
    return [_verifiable(generic_leaf(cfg)) for cfg in block_b_configs()]


def build_block_c(defects: Set[str] = frozenset()) -> List[Module]:
    """Block C: request handling — 13 leafs, hosts B2."""
    modules = [fsm_controller("C00_fsmctl", buggy="B2" in defects)]
    modules.extend(generic_leaf(cfg) for cfg in block_c_generics())
    return [_verifiable(m) for m in modules]


def build_block_d(defects: Set[str] = frozenset()) -> List[Module]:
    """Block D: wide merge datapaths — 3 leafs, hosts B4."""
    modules = []
    for name, (dp, cnt, inputs, he, outs, onehot) in BLOCK_D_SHAPES:
        modules.append(pipeline_stage(
            name, datapaths=dp, counters=cnt, input_groups=inputs,
            he=he, output_groups=outs, onehot=onehot,
            buggy=(name == "D01_merge" and "B4" in defects),
        ))
    return [_verifiable(m) for m in modules]


def build_block_e(defects: Set[str] = frozenset()) -> List[Module]:
    """Block E: link/port array — 58 leafs, hosts B5 and B6."""
    modules = [
        address_decoder("E00_dec", B5_CASE, B5_DATA, "B5",
                        buggy="B5" in defects),
        address_decoder("E01_dec", B6_CASE, B6_DATA, "B6",
                        buggy="B6" in defects),
    ]
    modules.extend(generic_leaf(cfg) for cfg in block_e_generics())
    return [_verifiable(m) for m in modules]


BLOCK_BUILDERS = {
    "A": build_block_a,
    "B": build_block_b,
    "C": build_block_c,
    "D": build_block_d,
    "E": build_block_e,
}


def build_blocks(defects: Iterable[str] = (),
                 only: Optional[Iterable[str]] = None
                 ) -> List["tuple[str, List[Module]]"]:
    """Build (block name, modules) pairs, optionally a subset."""
    wanted = set(defects)
    names = list(only) if only is not None else list(BLOCK_BUILDERS)
    return [(name, BLOCK_BUILDERS[name](wanted)) for name in names]
