"""Leaf-module library of the synthetic component chip.

Every generator returns a *base* (pre-injection) leaf module carrying a
complete :class:`~repro.rtl.integrity.IntegritySpec`; callers apply
:func:`~repro.rtl.inject.make_verifiable` to obtain the Verifiable RTL
the formal campaign consumes (``blocks.py`` does this for the chip).

The module styles mirror the target chip's RAS implementation rules
(paper section 2):

- every FSM, counter and datapath register stores odd parity with its
  data;
- control structures (FSMs, counters) recompute parity from the next
  value; datapath registers let parity travel with the word;
- integrity violations on stored words are reported combinationally,
  violations on input words through a one-cycle error-log flag — both
  reach the hardware error report one cycle after the violating value
  appears (the ``-> next HE`` stereotype timing);
- data transformations are parity-neutral: bit rotations preserve the
  population count, and XOR-merges of an odd number of odd-parity words
  are odd-parity again.

The seven defect hooks (B0..B6) reproduce the root causes described in
paper section 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..rtl.builder import (
    ProtectedState, he_report, is_any_of, latched_flag, parity_counter,
    parity_fsm,
)
from ..rtl.integrity import (
    COUNTER, DATAPATH, FSM, IntegritySpec, ParityGroup, ProtectedEntity,
)
from ..rtl.module import Module
from ..rtl.parity import encode_value, odd_parity_bit, parity_ok, protect
from ..rtl.signals import Const, Expr, cat, const, mux

#: standard protected word: 8 data bits + 1 parity bit
WORD = 9
DATA = 8
#: control entities: 3 data bits + 1 parity bit
CTRL = 3


def rot1(data: Expr) -> Expr:
    """Rotate a data word left by one bit (population count preserved,
    so the matching parity bit stays valid)."""
    width = data.width
    return cat(data[0:width - 1], data[width - 1])


def rotate_data(data: Expr, amount: int) -> Expr:
    for _ in range(amount % data.width):
        data = rot1(data)
    return data


def rotate_word(word: Expr, amount: int) -> Expr:
    """Rotate the data bits of a protected word, keeping its parity bit."""
    data_width = word.width - 1
    return cat(word[data_width], rotate_data(word[0:data_width], amount))


def merge_words(words: Sequence[Expr]) -> Expr:
    """XOR-merge an odd number of protected words (odd parity in, odd
    parity out: the XOR of an odd count of odd-parity words carries an
    odd number of ones)."""
    if len(words) % 2 != 1:
        raise ValueError("merge an odd number of protected words")
    merged = words[0]
    for word in words[1:]:
        merged = merged ^ word
    return merged


# ----------------------------------------------------------------------
# generic configurable leaf
# ----------------------------------------------------------------------

@dataclass
class LeafConfig:
    """Shape of one generic leaf module.

    The stereotype-property arithmetic (Table 2) follows directly:
    P0 = fsm + counter + datapath + onehot + input_groups,
    P1 = he, P2 = output_groups, P3 = onehot (one legality property per
    one-hot machine).
    """

    name: str
    fsm: int = 0
    counter: int = 0
    datapath: int = 0
    onehot: int = 0          # one-hot FSMs carrying a P3 legality property
    input_groups: int = 1
    he: int = 1
    output_groups: int = 1

    @property
    def entities(self) -> int:
        return self.fsm + self.counter + self.datapath + self.onehot

    @property
    def p0(self) -> int:
        return self.entities + self.input_groups

    @property
    def p1(self) -> int:
        return self.he

    @property
    def p2(self) -> int:
        return self.output_groups

    @property
    def p3(self) -> int:
        return self.onehot

    def validate(self) -> None:
        flags = self.entities + self.input_groups
        if not 1 <= self.he <= flags:
            raise ValueError(
                f"{self.name}: {self.he} HE signals need at least as many "
                f"failure flags (have {flags})"
            )
        if self.input_groups < 1:
            raise ValueError(f"{self.name}: at least one input group")
        if self.entities < 1:
            raise ValueError(f"{self.name}: at least one protected entity")


ONE_HOT_CODES = (0b0001, 0b0010, 0b0100, 0b1000)


def generic_leaf(cfg: LeafConfig) -> Module:
    """Build a generic leaf module from its configuration."""
    cfg.validate()
    m = Module(cfg.name)
    inputs = [m.input(f"IN{g}", WORD) for g in range(cfg.input_groups)]
    in_data = [port[0:DATA] for port in inputs]

    def steer(index: int) -> Expr:
        """A control bit derived from the input groups."""
        port = in_data[index % cfg.input_groups]
        return port[index % DATA]

    fail_flags: List[Expr] = []
    entities: List[ProtectedEntity] = []
    ec_index = 0

    for k in range(cfg.fsm):
        fsm = parity_fsm(m, f"FSM{k}", CTRL, reset_state=0)
        step = steer(k)
        fsm.drive(mux(step, fsm.data + 1, fsm.data ^ const(k % 8, CTRL)))
        fail_flags.append(fsm.check_fail())
        entities.append(ProtectedEntity(f"fsm{k}", fsm.reg.name, FSM,
                                        ec_index))
        ec_index += 1

    for k in range(cfg.counter):
        counter = parity_counter(m, f"CNT{k}", CTRL, enable=steer(k + 1))
        fail_flags.append(counter.check_fail())
        entities.append(ProtectedEntity(f"cnt{k}", counter.reg.name,
                                        COUNTER, ec_index))
        ec_index += 1

    datapaths: List[ProtectedState] = []
    for k in range(cfg.datapath):
        dp = ProtectedState(m, f"DP{k}", DATA)
        if k < cfg.input_groups:
            dp.drive_word(inputs[k])
        else:
            dp.drive_word(rotate_word(datapaths[k - 1].word, 1))
        datapaths.append(dp)
        fail_flags.append(dp.check_fail())
        entities.append(ProtectedEntity(f"dp{k}", dp.reg.name, DATAPATH,
                                        ec_index))
        ec_index += 1

    legal_outputs: List[str] = []
    for k in range(cfg.onehot):
        machine = ProtectedState(m, f"OH{k}", 4,
                                 reset_data=ONE_HOT_CODES[0])
        machine.drive(mux(steer(k + 2), rot1(machine.data), machine.data))
        fail_flags.append(machine.check_fail())
        entities.append(ProtectedEntity(f"oh{k}", machine.reg.name, FSM,
                                        ec_index))
        ec_index += 1
        legal_name = f"LEGAL{k}"
        m.output(legal_name, is_any_of(machine.data, ONE_HOT_CODES))
        legal_outputs.append(legal_name)

    for g, port in enumerate(inputs):
        fail_flags.append(latched_flag(m, f"IERR{g}", ~parity_ok(port)))

    he_names = _report_errors(m, fail_flags, cfg.he)
    output_groups = _drive_outputs(m, cfg.output_groups, datapaths, in_data)

    m.integrity = IntegritySpec(
        protected_inputs=[ParityGroup(f"IN{g}")
                          for g in range(cfg.input_groups)],
        protected_outputs=output_groups,
        entities=entities,
        he_signals=he_names,
        extra_properties=[
            (f"pLegal{k}", f"always ( LEGAL{k} )")
            for k in range(cfg.onehot)
        ],
    )
    return m


def _report_errors(m: Module, fail_flags: List[Expr], he_count: int
                   ) -> List[str]:
    """Distribute failure flags round-robin over the HE report outputs."""
    buckets: List[List[Expr]] = [[] for _ in range(he_count)]
    for index, flag in enumerate(fail_flags):
        buckets[index % he_count].append(flag)
    names: List[str] = []
    for index, bucket in enumerate(buckets):
        name = "HE" if he_count == 1 else f"HE{index}"
        he_report(m, name, bucket)
        names.append(name)
    return names


def _drive_outputs(m: Module, count: int,
                   datapaths: List[ProtectedState],
                   in_data: List[Expr]) -> List[ParityGroup]:
    """Drive ``count`` protected output words.

    Outputs cycle through the datapath registers with increasing
    rotation (pass-through style: the stored parity travels); modules
    without datapath state re-protect a combinational function of the
    inputs (recomputed-parity style).
    """
    groups: List[ParityGroup] = []
    for j in range(count):
        name = f"OUT{j}"
        if datapaths:
            source = datapaths[j % len(datapaths)]
            word = rotate_word(source.word, j // len(datapaths))
        else:
            data = in_data[j % len(in_data)]
            word = protect(rotate_data(data, j) ^ const(j % 251, DATA))
        m.output(name, word)
        groups.append(ParityGroup(name))
    return groups


# ----------------------------------------------------------------------
# Figure 1 — the canonical leaf module used throughout the paper
# ----------------------------------------------------------------------

def canonical_leaf(name: str = "M") -> Module:
    """The typical leaf module of Figure 1: one parity-protected FSM
    (state A), one protected datapath register (state B), two integrity
    check points feeding the HE report, primary input I and output O."""
    m = Module(name)
    i = m.input("I", WORD)
    fsm = parity_fsm(m, "A", CTRL, reset_state=0)
    fsm.drive(mux(i[0], fsm.data + 1, fsm.data))
    b = ProtectedState(m, "B", DATA)
    b.drive_word(i)
    input_flag = latched_flag(m, "IERR", ~parity_ok(i))
    he_report(m, "HE", [fsm.check_fail(), b.check_fail(), input_flag])
    m.output("O", rotate_word(b.word, 1))
    m.integrity = IntegritySpec(
        protected_inputs=[ParityGroup("I")],
        protected_outputs=[ParityGroup("O")],
        entities=[
            ProtectedEntity("stateA", "A", FSM, 0),
            ProtectedEntity("dataB", "B", DATAPATH, 1),
        ],
        he_signals=["HE"],
    )
    return m


# ----------------------------------------------------------------------
# Figure 7 — the divide-and-conquer workload
# ----------------------------------------------------------------------

def fig7_module(name: str = "D_wide", data_width: int = 16,
                depth: int = 5) -> Module:
    """The wide merge datapath of Figure 7.

    Three parallel pipelines (Data A, B, C) of ``depth`` stages of
    ``data_width + 1``-bit protected words feed check point D: a merge
    register capturing the XOR of the three chain ends.  The output
    integrity property of ``OUT_D`` has the whole module in its cone —
    the shape whose monolithic model check times out in the paper — and
    divides naturally at the chain-end checkpoints A', B', C'
    (:func:`fig7_cut_registers`).
    """
    m = Module(name)
    width = data_width + 1
    chains = {}
    entities: List[ProtectedEntity] = []
    fail_flags: List[Expr] = []
    ec_index = 0
    inputs = {}
    for channel in ("A", "B", "C"):
        port = m.input(f"IN_{channel}", width)
        inputs[channel] = port
        stages: List[ProtectedState] = []
        for k in range(depth):
            stage = ProtectedState(m, f"{channel}{k}", data_width)
            if k == 0:
                stage.drive_word(port)
            else:
                stage.drive_word(rotate_word(stages[k - 1].word, 1))
            stages.append(stage)
            fail_flags.append(stage.check_fail())
            entities.append(ProtectedEntity(
                f"{channel.lower()}{k}", stage.reg.name, DATAPATH, ec_index
            ))
            ec_index += 1
        chains[channel] = stages

    merge = ProtectedState(m, "D", data_width)
    merge.drive_word(merge_words([chains[c][-1].word for c in "ABC"]))
    fail_flags.append(merge.check_fail())
    entities.append(ProtectedEntity("d", "D", DATAPATH, ec_index))
    ec_index += 1

    for channel in ("A", "B", "C"):
        fail_flags.append(
            latched_flag(m, f"IERR_{channel}",
                         ~parity_ok(inputs[channel]))
        )
    he_report(m, "HE", fail_flags)
    m.output("OUT_D", merge.word)

    m.integrity = IntegritySpec(
        protected_inputs=[ParityGroup(f"IN_{c}") for c in "ABC"],
        protected_outputs=[ParityGroup("OUT_D")],
        entities=entities,
        he_signals=["HE"],
    )
    return m


def fig7_cut_registers(module: Module) -> List[str]:
    """The chain-end checkpoint registers (A', B', C' of Figure 7)."""
    depth = max(
        int(ent.reg_name[1:]) for ent in module.integrity.entities
        if ent.reg_name[0] in "ABC"
    )
    return [f"{channel}{depth}" for channel in "ABC"]
