"""The seven seeded logic bugs (paper Table 3).

``DEFECTS`` is the ground-truth catalogue; the benches derive the
measured Table 3 from campaign runs and compare against it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from ..core.bugs import Defect

ALL_DEFECT_IDS: FrozenSet[str] = frozenset(
    {"B0", "B1", "B2", "B3", "B4", "B5", "B6"}
)

DEFECTS: List[Defect] = [
    Defect(
        defect_id="B0",
        block="A",
        module_name="A00_wrapcnt",
        property_type="P1",
        sim_easy=True,
        description="counter parity bit not maintained on wrap; fires "
                    "in normal operation within a few dozen cycles",
    ),
    Defect(
        defect_id="B1",
        block="A",
        module_name="A01_regfile",
        property_type="P1",
        sim_easy=False,
        description="non-zero write into a reserved register field "
                    "stores inconsistent parity, but only after an "
                    "arming write sequence — the triggering scenario is "
                    "too complicated for random simulation",
    ),
    Defect(
        defect_id="B2",
        block="C",
        module_name="C00_fsmctl",
        property_type="P1",
        sim_easy=True,
        description="FSM parity recomputed from the current state on "
                    "the grant transition; the first granted request "
                    "corrupts the stored word",
    ),
    Defect(
        defect_id="B3",
        block="A",
        module_name="A02_macro",
        property_type="P0",
        sim_easy=False,
        description="interface trusts a hard-macro signal before it is "
                    "guaranteed after reset; the macro's wrong "
                    "behavioural model makes the hole invisible to "
                    "simulation",
    ),
    Defect(
        defect_id="B4",
        block="D",
        module_name="D01_merge",
        property_type="P2",
        sim_easy=True,
        description="pipeline output parity recomputed over a wrong "
                    "slice whenever a common select bit is high",
    ),
    Defect(
        defect_id="B5",
        block="E",
        module_name="E00_dec",
        property_type="P2",
        sim_easy=False,
        description="address decoder (91 valid cases of an 8-bit "
                    "space): output parity wrong for case 37, and only "
                    "for one data byte pattern",
    ),
    Defect(
        defect_id="B6",
        block="E",
        module_name="E01_dec",
        property_type="P2",
        sim_easy=False,
        description="address decoder: output parity wrong for case 73, "
                    "and only for one data byte pattern",
    ),
]

DEFECTS_BY_ID: Dict[str, Defect] = {d.defect_id: d for d in DEFECTS}


def defects_in_blocks() -> Dict[str, int]:
    """Bug count per block — the '# of Bug' column of Table 2."""
    counts: Dict[str, int] = {}
    for defect in DEFECTS:
        counts[defect.block] = counts.get(defect.block, 0) + 1
    return counts
