"""The seven seeded logic bugs (paper Table 3) and the defect-site
identifier scheme of the scenario sweeps.

``DEFECTS`` is the ground-truth catalogue; the benches derive the
measured Table 3 from campaign runs and compare against it.

:class:`DefectSite` is the *stable identifier* of one seedable defect:
a defect class plus a location (entity, output, or report-signal name)
inside a named module.  Sweep records key their per-mutant rows by
``site_id`` strings (``class@module:location``) rather than positional
indices, so detection-rate records stay comparable across family sizes
— adding a module or an entity never renumbers everyone else's rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional

from ..core.bugs import Defect

#: The defect classes the scenario mutation engine can seed
#: (:mod:`repro.scenario.mutate` owns the transforms; the names live
#: here so identifier parsing needs no upward import).  Each class maps
#: to the stereotype property that catches it:
#:
#: - ``stuck-parity`` — the stored parity bit of a protected entity is
#:   stuck at 1 on every update (a stuck-at on the parity flop's data
#:   input; stuck-at-1 is the variant that is wrong for *every* entity
#:   style — a one-hot machine's data always has odd population count,
#:   so its correct parity bit is constantly 0 and a stuck-at-0 there
#:   would be an equivalent mutant); caught by P1 (HE fires under
#:   clean traffic);
#: - ``wrong-rotate`` — an output word's data rotation is implemented
#:   as a shift (the wrapped-around bit is dropped, a 0 shifted in), so
#:   the bit multiset changes while the stored parity travels along;
#:   caught by P2;
#: - ``swapped-operand`` — an output's parity bit is recomputed over
#:   the wrong operand (the first protected input's data word instead
#:   of the output's own data); caught by P2;
#: - ``dropped-error-flag`` — one hardware-error report output is tied
#:   silent, so injected errors go unreported; caught by P0 and, by
#:   construction, invisible to clean-traffic simulation.
STUCK_PARITY = "stuck-parity"
WRONG_ROTATE = "wrong-rotate"
SWAPPED_OPERAND = "swapped-operand"
DROPPED_ERROR_FLAG = "dropped-error-flag"

DEFECT_CLASSES = (
    STUCK_PARITY, WRONG_ROTATE, SWAPPED_OPERAND, DROPPED_ERROR_FLAG,
)


@dataclass(frozen=True)
class DefectSite:
    """Stable identifier of one seedable defect: class + location.

    ``location`` names the structural element the class applies to —
    a protected entity (``stuck-parity``), a protected output group
    (``wrong-rotate`` / ``swapped-operand``), or an HE report signal
    (``dropped-error-flag``).  The rendered ``site_id`` is the key of
    every sweep-record row and of the mutant's campaign block.
    """

    defect_class: str
    module_name: str
    location: str

    def __post_init__(self) -> None:
        if self.defect_class not in DEFECT_CLASSES:
            raise ValueError(
                f"unknown defect class {self.defect_class!r}; "
                f"expected one of {DEFECT_CLASSES}"
            )
        for field_name in ("module_name", "location"):
            value = getattr(self, field_name)
            if not value or any(ch in value for ch in "@:"):
                raise ValueError(
                    f"defect-site {field_name} {value!r} must be "
                    f"non-empty and free of '@' and ':'"
                )

    @property
    def site_id(self) -> str:
        """``class@module:location`` — the stable record key."""
        return f"{self.defect_class}@{self.module_name}:{self.location}"

    @classmethod
    def parse(cls, site_id: str) -> "DefectSite":
        """Inverse of :attr:`site_id` (raises ``ValueError`` on
        malformed text, so records can be validated on the way in)."""
        defect_class, sep, rest = site_id.partition("@")
        module_name, sep2, location = rest.partition(":")
        if not sep or not sep2:
            raise ValueError(
                f"malformed site id {site_id!r}; "
                f"expected class@module:location"
            )
        return cls(defect_class, module_name, location)


ALL_DEFECT_IDS: FrozenSet[str] = frozenset(
    {"B0", "B1", "B2", "B3", "B4", "B5", "B6"}
)

DEFECTS: List[Defect] = [
    Defect(
        defect_id="B0",
        block="A",
        module_name="A00_wrapcnt",
        property_type="P1",
        sim_easy=True,
        description="counter parity bit not maintained on wrap; fires "
                    "in normal operation within a few dozen cycles",
    ),
    Defect(
        defect_id="B1",
        block="A",
        module_name="A01_regfile",
        property_type="P1",
        sim_easy=False,
        description="non-zero write into a reserved register field "
                    "stores inconsistent parity, but only after an "
                    "arming write sequence — the triggering scenario is "
                    "too complicated for random simulation",
    ),
    Defect(
        defect_id="B2",
        block="C",
        module_name="C00_fsmctl",
        property_type="P1",
        sim_easy=True,
        description="FSM parity recomputed from the current state on "
                    "the grant transition; the first granted request "
                    "corrupts the stored word",
    ),
    Defect(
        defect_id="B3",
        block="A",
        module_name="A02_macro",
        property_type="P0",
        sim_easy=False,
        description="interface trusts a hard-macro signal before it is "
                    "guaranteed after reset; the macro's wrong "
                    "behavioural model makes the hole invisible to "
                    "simulation",
    ),
    Defect(
        defect_id="B4",
        block="D",
        module_name="D01_merge",
        property_type="P2",
        sim_easy=True,
        description="pipeline output parity recomputed over a wrong "
                    "slice whenever a common select bit is high",
    ),
    Defect(
        defect_id="B5",
        block="E",
        module_name="E00_dec",
        property_type="P2",
        sim_easy=False,
        description="address decoder (91 valid cases of an 8-bit "
                    "space): output parity wrong for case 37, and only "
                    "for one data byte pattern",
    ),
    Defect(
        defect_id="B6",
        block="E",
        module_name="E01_dec",
        property_type="P2",
        sim_easy=False,
        description="address decoder: output parity wrong for case 73, "
                    "and only for one data byte pattern",
    ),
]

DEFECTS_BY_ID: Dict[str, Defect] = {d.defect_id: d for d in DEFECTS}


def defects_in_blocks(defects: Optional[Iterable[Defect]] = None
                      ) -> Dict[str, int]:
    """Bug count per block — the '# of Bug' column of Table 2.

    ``defects`` defaults to the paper's fixed catalogue; sweeps over
    generated families pass their own seeded list, so the per-block
    accounting works off defect records instead of positions in a
    hard-coded table.
    """
    counts: Dict[str, int] = {}
    for defect in (DEFECTS if defects is None else defects):
        counts[defect.block] = counts.get(defect.block, 0) + 1
    return counts
