"""Specialised leaf modules hosting the seven seeded defects.

Each builder reproduces the root cause of one bug from paper section
6.2.  Passing ``buggy=False`` yields the corrected design (every
property passes); ``buggy=True`` seeds the defect and tags the module
with ``attrs['defect']``.

========  =====  ======================================================
Defect    Type   Root cause (paper section 6.2)
========  =====  ======================================================
B0        P1     counter parity not maintained on a common transition
B1        P1     write to a register's reserved field breaks the
                 stored parity — only under a complicated arm/strike
                 write sequence
B2        P1     FSM parity recomputed from the *current* state instead
                 of the next state on one transition
B3        P0     logic trusts a hard-macro signal right after reset;
                 the macro's (wrong) behavioural model hides it from
                 simulation
B4        P2     pipeline output parity recomputed from the wrong slice
                 for a common select value
B5, B6    P2     address decoder with 91 valid cases of an 8-bit space:
                 data-path parity wrong for exactly one case each,
                 and only for specific data patterns
========  =====  ======================================================
"""

from __future__ import annotations

from typing import List, Optional

from ..rtl.builder import (
    ProtectedState, he_report, is_any_of, latched_flag, parity_counter,
    parity_fsm,
)
from ..rtl.integrity import (
    COUNTER, DATAPATH, FSM, IntegritySpec, ParityGroup, ProtectedEntity,
)
from ..rtl.module import Module
from ..rtl.parity import encode_value, odd_parity_bit, parity_ok, protect
from ..rtl.signals import Const, Expr, cat, const, mux
from .library import CTRL, DATA, WORD, rot1, rotate_data, rotate_word

#: number of valid cases the address decoder recognises (paper: 91)
DECODER_VALID_CASES = 91
#: the two miscoded cases (B5 and B6)
B5_CASE = 37
B6_CASE = 73
#: data patterns under which the miscoded parity shows
B5_DATA = 0x5A
B6_DATA = 0xB3

#: register-file geometry for B1
REGFILE_ADDRESSES = (0x10, 0x42, 0xA5, 0xE7)
RESERVED_REGISTER = 2          # the register at 0xA5 has a reserved field
RESERVED_MASK = 0xF0           # bits [7:4] are reserved
ARM_ADDRESS = 0x3C
ARM_DATA_NIBBLE = 0xA


def wrap_counter(name: str, buggy: bool = False) -> Module:
    """B0 host: an event counter whose parity is recomputed every cycle.

    The defect stores a constant-zero parity bit when the counter wraps,
    so the first wrap with the enable high corrupts the stored word and
    the error report fires in normal operation — easy prey for random
    simulation (the counter wraps every 8 enabled cycles).
    """
    m = Module(name)
    i = m.input("IN0", WORD)
    enable = i[0]
    counter = ProtectedState(m, "CNT0", CTRL)
    incremented = counter.data + const(1, CTRL)
    next_data = mux(enable, incremented, counter.data)
    if buggy:
        wrapping = enable & counter.data.eq(const((1 << CTRL) - 1, CTRL))
        good_word = protect(next_data)
        bad_word = cat(Const(0, 1), next_data)   # parity bit stuck at 0
        counter.drive_word(mux(wrapping, bad_word, good_word))
    else:
        counter.drive(next_data)
    input_flag = latched_flag(m, "IERR0", ~parity_ok(i))
    he_report(m, "HE", [counter.check_fail(), input_flag])
    m.output("OUT0", _count_status(counter, i))
    m.integrity = IntegritySpec(
        protected_inputs=[ParityGroup("IN0")],
        protected_outputs=[ParityGroup("OUT0")],
        entities=[ProtectedEntity("cnt0", "CNT0", COUNTER, 0)],
        he_signals=["HE"],
    )
    if buggy:
        m.attrs["defect"] = "B0"
    return m


def _count_status(counter: ProtectedState, i: Expr) -> Expr:
    from ..rtl.signals import zext
    status = zext(counter.data, DATA) ^ i[0:DATA]
    return protect(status)


def register_file(name: str, buggy: bool = False) -> Module:
    """B1 host: a config-register file with a reserved field.

    Registers are selected by a full 8-bit decoded address.  The
    register at ``0xA5`` masks its reserved bits ``[7:4]`` on writes.
    The defect computes the stored parity over the *unmasked* write
    data, so a non-zero value written into the reserved field leaves
    the register with inconsistent parity — but only after an arming
    write (``0x3C`` with data nibble ``0xA``), which is why the
    triggering scenario is too complicated for random simulation.
    """
    m = Module(name)
    waddr = m.input("WADDR", WORD)
    wdata = m.input("WDATA", WORD)
    wen = m.input("WEN", 1)
    addr = waddr[0:DATA]
    data = wdata[0:DATA]

    mode = parity_fsm(m, "MODE", 2, reset_state=0)  # 0=idle, 1=armed
    arm = wen & addr.eq(const(ARM_ADDRESS, DATA)) \
        & data[0:4].eq(const(ARM_DATA_NIBBLE, 4))
    mode.drive(mux(arm, const(1, 2),
                   mux(wen, const(0, 2), mode.data)))
    armed = mode.data.eq(const(1, 2))

    fail_flags: List[Expr] = [mode.check_fail()]
    entities = [ProtectedEntity("mode", "MODE", FSM, 0)]
    outputs: List[ParityGroup] = []
    for index, address in enumerate(REGFILE_ADDRESSES):
        reg = ProtectedState(m, f"R{index}", DATA)
        selected = wen & addr.eq(const(address, DATA))
        if index == RESERVED_REGISTER:
            masked = data & const(0xFF ^ RESERVED_MASK, DATA)
            good_word = protect(masked)
            if buggy:
                # parity taken from the unmasked data: inconsistent
                # whenever the reserved nibble has odd population
                bad_word = cat(odd_parity_bit(data), masked)
                written = mux(armed, bad_word, good_word)
            else:
                written = good_word
        else:
            written = protect(data)
        reg.drive_word(mux(selected, written, reg.word))
        fail_flags.append(reg.check_fail())
        entities.append(ProtectedEntity(f"r{index}", reg.reg.name,
                                        DATAPATH, index + 1))
        out_name = f"RDATA{index}"
        m.output(out_name, reg.word)
        outputs.append(ParityGroup(out_name))

    fail_flags.append(latched_flag(m, "IERR_A", ~parity_ok(waddr)))
    fail_flags.append(latched_flag(m, "IERR_D", ~parity_ok(wdata)))
    he_report(m, "HE", fail_flags)
    m.integrity = IntegritySpec(
        protected_inputs=[ParityGroup("WADDR"), ParityGroup("WDATA")],
        protected_outputs=outputs,
        entities=entities,
        he_signals=["HE"],
    )
    if buggy:
        m.attrs["defect"] = "B1"
    return m


def fsm_controller(name: str, buggy: bool = False) -> Module:
    """B2 host: a request-handler FSM pair with a shared cycle counter.

    The defect recomputes the stored parity of FSM0 from the *current*
    state on the grant transition, so the first granted request in
    normal operation corrupts the stored word — found quickly by any
    random test."""
    m = Module(name)
    i = m.input("IN0", WORD)
    request = i[0]
    cancel = i[1]

    fsm0 = ProtectedState(m, "FSM0", CTRL)
    grant = request & fsm0.data.eq(const(0, CTRL))
    next0 = mux(grant, const(1, CTRL),
                mux(cancel, const(0, CTRL), fsm0.data))
    if buggy:
        good = protect(next0)
        # parity of the *current* state pasted onto the next state
        stale = cat(odd_parity_bit(fsm0.data), next0)
        fsm0.drive_word(mux(grant, stale, good))
    else:
        fsm0.drive(next0)

    fsm1 = parity_fsm(m, "FSM1", CTRL, reset_state=0)
    fsm1.drive(mux(i[2], fsm1.data + 1, fsm1.data))
    counter = parity_counter(m, "CNT0", CTRL, enable=request)

    input_flag = latched_flag(m, "IERR0", ~parity_ok(i))
    he_report(m, "HE0", [fsm0.check_fail(), counter.check_fail()])
    he_report(m, "HE1", [fsm1.check_fail(), input_flag])
    from ..rtl.signals import zext
    m.output("OUT0", protect(zext(fsm0.data, DATA) ^ i[0:DATA]))
    m.output("OUT1", protect(zext(fsm1.data ^ counter.data, DATA)))
    m.integrity = IntegritySpec(
        protected_inputs=[ParityGroup("IN0")],
        protected_outputs=[ParityGroup("OUT0"), ParityGroup("OUT1")],
        entities=[
            ProtectedEntity("fsm0", "FSM0", FSM, 0),
            ProtectedEntity("fsm1", "FSM1", FSM, 1),
            ProtectedEntity("cnt0", "CNT0", COUNTER, 2),
        ],
        he_signals=["HE0", "HE1"],
    )
    if buggy:
        m.attrs["defect"] = "B2"
    return m


def macro_interface(name: str, buggy: bool = False) -> Module:
    """B3 host: interface to a hard macro whose output is not guaranteed
    immediately after reset.

    A ready counter spaces out the settling window (4 cycles).  The
    interface *accepts* macro data into the chip (re-protecting it with
    freshly computed parity) and *checks* its parity into the error log.
    The defect opens the accept window two cycles before the checker is
    enabled, so corrupted macro data can enter the chip undetected — an
    error-detection (P0) hole.

    The companion simulation view (``attrs['sim_view']``) replaces the
    macro input with the testbench's behavioural macro model, which
    (wrongly) drives valid-parity data from cycle zero — reproducing why
    this bug was impossible to find by logic simulation.
    """
    module = _macro_interface_impl(name, buggy, with_macro_input=True)
    sim_view = _macro_interface_impl(f"{name}__simview", buggy,
                                     with_macro_input=False)
    from ..rtl.inject import make_verifiable
    module.attrs["sim_view_base"] = sim_view
    if buggy:
        module.attrs["defect"] = "B3"
    return module


def _macro_interface_impl(name: str, buggy: bool,
                          with_macro_input: bool) -> Module:
    m = Module(name)
    ctl = m.input("IN0", WORD)          # protected control word
    if with_macro_input:
        macro_data = m.input("M_DATA", WORD)
    else:
        # behavioural macro model: a rotating pattern, always odd parity
        model = ProtectedState(m, "MACRO_MODEL", DATA, reset_data=0x2D)
        model.drive_word(rotate_word(model.word, 1))
        macro_data = model.word

    ready_cnt = ProtectedState(m, "RDYCNT", CTRL)
    at_max = ready_cnt.data.eq(const(4, CTRL))
    ready_cnt.drive(mux(at_max, ready_cnt.data,
                        ready_cnt.data + const(1, CTRL)))
    ready = at_max
    early = ~ready_cnt.data.lt(const(2, CTRL))   # count >= 2

    accept = (early if buggy else ready) & ctl[0]
    check_enable = ready

    capture = ProtectedState(m, "CAPT", DATA)
    capture.drive_word(mux(accept, protect(macro_data[0:DATA]),
                           capture.word))

    macro_flag = latched_flag(m, "MERR",
                              check_enable & ~parity_ok(macro_data))
    ctl_flag = latched_flag(m, "IERR0", ~parity_ok(ctl))
    he_report(m, "HE", [ready_cnt.check_fail(), capture.check_fail(),
                        macro_flag, ctl_flag])
    m.output("RDY", ready)
    m.output("ACC", accept)
    m.output("OUT0", capture.word)

    spec = IntegritySpec(
        protected_inputs=[ParityGroup("IN0")],
        protected_outputs=[ParityGroup("OUT0")],
        entities=[
            ProtectedEntity("rdycnt", "RDYCNT", COUNTER, 0),
            ProtectedEntity("capture", "CAPT", DATAPATH, 1),
        ],
        he_signals=["HE"],
    )
    if with_macro_input:
        spec.protected_inputs.append(ParityGroup("M_DATA"))
        # the macro's datasheet: data carries parity only once ready
        spec.free_inputs.append("M_DATA")
        spec.env_assumptions.append(
            ("pMacroStable", "always ( RDY -> ^M_DATA )")
        )
        # detection duty is qualified by the accept window
        spec.p0_overrides["M_DATA"] = \
            "always ((ACC & ~(^M_DATA)) -> next HE)"
    m.integrity = spec
    return m


def pipeline_stage(name: str, datapaths: int, counters: int,
                   input_groups: int, he: int, output_groups: int,
                   onehot: int, buggy: bool = False) -> Module:
    """Block D workhorse: a wide merge datapath (the Figure 7 shape).

    ``datapaths`` protected words flow in chains from the input groups;
    outputs are rotations and 3-way XOR merges of the stored words.  The
    B4 defect recomputes one output's parity from a stale slice whenever
    a common select bit is high — caught by the output-integrity (P2)
    stereotype and by any random test within a few cycles.
    """
    from .library import ONE_HOT_CODES, merge_words
    m = Module(name)
    inputs = [m.input(f"IN{g}", WORD) for g in range(input_groups)]

    fail_flags: List[Expr] = []
    entities: List[ProtectedEntity] = []
    ec_index = 0

    stages: List[ProtectedState] = []
    for k in range(datapaths):
        dp = ProtectedState(m, f"DP{k}", DATA)
        if k < input_groups:
            dp.drive_word(inputs[k])
        else:
            dp.drive_word(rotate_word(stages[k - 1].word, 1))
        stages.append(dp)
        fail_flags.append(dp.check_fail())
        entities.append(ProtectedEntity(f"dp{k}", dp.reg.name, DATAPATH,
                                        ec_index))
        ec_index += 1

    for k in range(counters):
        counter = parity_counter(m, f"CNT{k}", CTRL,
                                 enable=inputs[k % input_groups][k % DATA])
        fail_flags.append(counter.check_fail())
        entities.append(ProtectedEntity(f"cnt{k}", counter.reg.name,
                                        COUNTER, ec_index))
        ec_index += 1

    extra_properties = []
    for k in range(onehot):
        machine = ProtectedState(m, f"OH{k}", 4, reset_data=ONE_HOT_CODES[0])
        machine.drive(mux(inputs[k % input_groups][(k + 3) % DATA],
                          rot1(machine.data), machine.data))
        fail_flags.append(machine.check_fail())
        entities.append(ProtectedEntity(f"oh{k}", machine.reg.name, FSM,
                                        ec_index))
        ec_index += 1
        m.output(f"LEGAL{k}", is_any_of(machine.data, ONE_HOT_CODES))
        extra_properties.append((f"pLegal{k}", f"always ( LEGAL{k} )"))

    for g, port in enumerate(inputs):
        fail_flags.append(latched_flag(m, f"IERR{g}", ~parity_ok(port)))

    from .library import _report_errors
    he_names = _report_errors(m, fail_flags, he)

    outputs: List[ParityGroup] = []
    select = inputs[0][1]
    for j in range(output_groups):
        out_name = f"OUT{j}"
        if j % 5 == 4 and datapaths >= 3:
            # 3-way merge outputs — the Figure 7 check point D shape
            trio = [stages[(j + offset) % datapaths].word
                    for offset in range(3)]
            word = merge_words(trio)
        else:
            source = stages[j % datapaths]
            word = rotate_word(source.word, j // datapaths)
        if buggy and j == 2:
            # parity recomputed over a wrong slice when select is high;
            # the three-bit discrepancy mask flips the stored parity
            data = word[0:DATA]
            wrong = cat(odd_parity_bit(data ^ const(0x07, DATA)), data)
            word = mux(select, wrong, word)
        m.output(out_name, word)
        outputs.append(ParityGroup(out_name))

    m.integrity = IntegritySpec(
        protected_inputs=[ParityGroup(f"IN{g}")
                          for g in range(input_groups)],
        protected_outputs=outputs,
        entities=entities,
        he_signals=he_names,
        extra_properties=extra_properties,
    )
    if buggy:
        m.attrs["defect"] = "B4"
    return m


def address_decoder(name: str, miscoded_case: int, miscoded_data: int,
                    defect_id: str, buggy: bool = False) -> Module:
    """B5/B6 host: an address decoder with 91 valid cases.

    Decodes an 8-bit address space; the 91 valid cases transform the
    data word with a case-dependent rotation and re-protect it.  The
    defect inverts the computed parity for exactly one valid case, and
    only when the incoming data byte matches ``miscoded_data`` — the
    "depends on the data pattern" condition that defeats anything short
    of exhaustive simulation.
    """
    m = Module(name)
    addr_in = m.input("ADDR", WORD)
    data_in = m.input("DIN", WORD)

    addr_reg = ProtectedState(m, "ADDR_R", DATA)
    addr_reg.drive_word(addr_in)
    data_reg = ProtectedState(m, "DATA_R", DATA)
    data_reg.drive_word(data_in)

    addr = addr_reg.data
    data = data_reg.data
    valid = addr.lt(const(DECODER_VALID_CASES, DATA))

    # case-dependent transformation: rotation amount = addr[2:0]
    rotated = data
    result = data
    for amount in range(8):
        match = addr[0:3].eq(const(amount, 3))
        result = mux(match, rotate_data(data, amount), result)
    out_word = protect(result ^ addr)

    if buggy:
        hit = valid & addr.eq(const(miscoded_case, DATA)) \
            & data.eq(const(miscoded_data, DATA))
        out_word = mux(hit, out_word ^ const(1 << DATA, WORD), out_word)

    idle = protect(const(0, DATA))
    m.output("DOUT", mux(valid, out_word, idle))
    m.output("VLD", valid)

    addr_flag = latched_flag(m, "AERR", ~parity_ok(addr_in))
    data_flag = latched_flag(m, "DERR", ~parity_ok(data_in))
    he_report(m, "HE", [addr_reg.check_fail(), data_reg.check_fail(),
                        addr_flag, data_flag])
    from ..rtl.signals import zext
    m.output("STAT", protect(zext(addr[0:4], DATA) ^ data))

    m.integrity = IntegritySpec(
        protected_inputs=[ParityGroup("ADDR"), ParityGroup("DIN")],
        protected_outputs=[ParityGroup("DOUT"), ParityGroup("STAT")],
        entities=[
            ProtectedEntity("addr_r", "ADDR_R", DATAPATH, 0),
            ProtectedEntity("data_r", "DATA_R", DATAPATH, 1),
        ],
        he_signals=["HE"],
    )
    if buggy:
        m.attrs["defect"] = defect_id
    return m
