"""Implementation-scale synthesis views (the Table 4 study).

The leaf modules used by the formal campaign are deliberately tiny —
the methodology *wants* leaf modules small enough for model checking.
The paper's physical modules, however, carry far more combinational
logic per protected register (hundreds of thousands of gates), which is
why the per-register injection selector costs less than 2% of area.

A *synthesis view* restores that logic-to-state ratio: the module keeps
exactly the same protected entities (hence the same number of injection
selectors after ``make_verifiable``), while every protected output is
additionally processed by ``lanes`` parallel four-stage XOR/AND/rotate
transform lanes, folded back in parity-neutral pairs.  The lanes are
plain feed-forward logic: they deepen the module by a few gate levels
only (no long carry chains), so the 250 MHz cycle still closes.

Lane counts per block are calibrated so the module areas have the same
order of magnitude relationship as the paper's modules; the <2% ceiling
and the A > B > D overhead ordering are then *measured*, not asserted.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..rtl.inject import _clone_leaf
from ..rtl.module import Module
from ..rtl.parity import protect
from ..rtl.signals import Expr, const, mask
from .library import rot1


def _transform_stage(lane: Expr, data: Expr, salt: int) -> Expr:
    """One lane stage: cheap, shallow, parity-irrelevant logic."""
    width = lane.width
    mixed = rot1(lane ^ const(salt & mask(width), width))
    return mixed ^ (data & const((salt * 73 + 41) & mask(width), width))


def _lane(data: Expr, lane_index: int, depth: int) -> Expr:
    lane = data
    for stage in range(depth):
        lane = _transform_stage(lane, data, lane_index * 131 + stage * 17 + 3)
    return lane


def synthesis_view(module: Module, lanes: int, depth: int = 4) -> Module:
    """Clone ``module`` with ``lanes`` processing lanes per protected
    output (``lanes`` must be even so the XOR fold stays odd-parity)."""
    if lanes % 2 != 0:
        raise ValueError("lane count must be even to preserve parity")
    clone, _ = _clone_leaf(module)
    spec = clone.integrity
    for group in spec.protected_outputs:
        word = clone.outputs[group.signal]
        data_width = word.width - 1
        data = word[0:data_width]
        folded = word
        for index in range(lanes):
            folded = folded ^ protect(_lane(data, index, depth))
        clone.outputs[group.signal] = folded
    clone.attrs = dict(module.attrs)
    clone.attrs["synthesis_view"] = True
    return clone


#: calibrated lane counts per representative block module
TABLE4_LANES: Dict[str, int] = {"A": 6, "B": 4, "D": 16}

#: the paper's Table 4 rows for side-by-side reporting
TABLE4_PAPER: Dict[str, float] = {"A": 1.4, "B": 0.4, "D": 0.2}


def table4_modules() -> Dict[str, Tuple[Module, Module]]:
    """(base, verifiable) synthesis views of representative modules of
    blocks A, B and D — the three modules the paper reports."""
    from ..rtl.inject import make_verifiable
    from .library import generic_leaf
    from .spec import block_a_generics, block_b_configs
    from .specials import pipeline_stage

    representatives = {
        "A": generic_leaf(block_a_generics()[0]),
        "B": generic_leaf(block_b_configs()[0]),
        "D": pipeline_stage("D00_merge", datapaths=18, counters=2,
                            input_groups=3, he=15, output_groups=46,
                            onehot=2),
    }
    views = {}
    for block, base in representatives.items():
        view = synthesis_view(base, TABLE4_LANES[block])
        views[block] = (view, make_verifiable(view))
    return views
