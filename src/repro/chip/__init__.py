"""The synthetic server-platform component chip: leaf-module library,
blocks A-E engineered to the paper's Table 2 statistics, and the seven
seeded defects of Table 3."""

from .library import (
    CTRL, DATA, WORD, LeafConfig, canonical_leaf, generic_leaf,
    merge_words, rot1, rotate_data, rotate_word,
)
from .specials import (
    ARM_ADDRESS, ARM_DATA_NIBBLE, B5_CASE, B5_DATA, B6_CASE, B6_DATA,
    DECODER_VALID_CASES, REGFILE_ADDRESSES, RESERVED_MASK,
    RESERVED_REGISTER, address_decoder, fsm_controller, macro_interface,
    pipeline_stage, register_file, wrap_counter,
)
from .spec import (
    BLOCK_D_SHAPES, TABLE2_BUGS, TABLE2_TARGETS, TOTAL_CHECKPOINTS,
    TOTAL_PROPERTIES, TOTAL_SUBMODULES, block_a_generics, block_b_configs,
    block_c_generics, block_e_generics, config_counts,
)
from .defects import (
    ALL_DEFECT_IDS, DEFECT_CLASSES, DEFECTS, DEFECTS_BY_ID, DefectSite,
    defects_in_blocks,
)
from .blocks import (
    BLOCK_BUILDERS, build_block_a, build_block_b, build_block_c,
    build_block_d, build_block_e, build_blocks,
)
from .chip import ChipStats, ComponentChip
from .impl_view import (
    TABLE4_LANES, TABLE4_PAPER, synthesis_view, table4_modules,
)

__all__ = [
    "CTRL", "DATA", "WORD", "LeafConfig", "canonical_leaf", "generic_leaf",
    "merge_words", "rot1", "rotate_data", "rotate_word",
    "ARM_ADDRESS", "ARM_DATA_NIBBLE", "B5_CASE", "B5_DATA", "B6_CASE",
    "B6_DATA", "DECODER_VALID_CASES", "REGFILE_ADDRESSES", "RESERVED_MASK",
    "RESERVED_REGISTER", "address_decoder", "fsm_controller",
    "macro_interface", "pipeline_stage", "register_file", "wrap_counter",
    "BLOCK_D_SHAPES", "TABLE2_BUGS", "TABLE2_TARGETS", "TOTAL_CHECKPOINTS",
    "TOTAL_PROPERTIES", "TOTAL_SUBMODULES", "block_a_generics",
    "block_b_configs", "block_c_generics", "block_e_generics",
    "config_counts",
    "ALL_DEFECT_IDS", "DEFECT_CLASSES", "DEFECTS", "DEFECTS_BY_ID",
    "DefectSite", "defects_in_blocks",
    "BLOCK_BUILDERS", "build_block_a", "build_block_b", "build_block_c",
    "build_block_d", "build_block_e", "build_blocks",
    "ChipStats", "ComponentChip",
    "TABLE4_LANES", "TABLE4_PAPER", "synthesis_view", "table4_modules",
]
