"""Chip specification: block structure and property budget.

The synthetic chip is engineered to the *published statistics* of the
paper's component chip (Table 2): 95 leaf modules in five blocks with
exactly

======  =====  ====  ====  ====  ====  =====
Block   #Sub   P0    P1    P2    P3    Total
======  =====  ====  ====  ====  ====  =====
A       19     204   23    113   15    355
B       2      25    23    82    0     130
C       13     43    20    38    0     101
D       3      70    46    137   6     259
E       58     964   88    150   0     1202
Total   95     1306  200   520   21    2047
======  =====  ====  ====  ====  ====  =====

The per-module shapes below were chosen so every column sums exactly;
``tests/test_chip_spec.py`` asserts the arithmetic and the generated
modules' real property counts against this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .library import LeafConfig

#: Table 2 targets: block -> (subs, P0, P1, P2, P3)
TABLE2_TARGETS: Dict[str, Tuple[int, int, int, int, int]] = {
    "A": (19, 204, 23, 113, 15),
    "B": (2, 25, 23, 82, 0),
    "C": (13, 43, 20, 38, 0),
    "D": (3, 70, 46, 137, 6),
    "E": (58, 964, 88, 150, 0),
}

#: paper-reported bug counts per block
TABLE2_BUGS: Dict[str, int] = {"A": 3, "B": 0, "C": 1, "D": 1, "E": 2}

TOTAL_PROPERTIES = 2047
TOTAL_SUBMODULES = 95
TOTAL_CHECKPOINTS = 1306      # "more than 1300 checkpoints" (section 2)


def block_a_generics() -> List[LeafConfig]:
    """16 generic leafs of block A (3 specials host B0/B1/B3).

    The specials contribute P0 = 7 (regfile) + 4 (macro, which has two
    protected input groups) + 2 (wrap counter) = 13, so the generics
    must sum to 191: fifteen leafs at P0 = 12 (2 inputs + 10 entities)
    and one at P0 = 11.  The first 15 carry a one-hot machine (one P3
    property each -> 15).  P1: four leafs report on two HE signals,
    twelve on one (3 + 20 = 23 with the specials).  P2: eleven leafs
    drive 7 output groups, five drive 6 (6 + 107 = 113 with the
    specials).
    """
    configs: List[LeafConfig] = []
    for k in range(16):
        onehot = 1 if k < 15 else 0
        configs.append(LeafConfig(
            name=f"A{k + 3:02d}_ctl",
            fsm=3, counter=3, datapath=3, onehot=onehot,
            input_groups=2,
            he=2 if k < 4 else 1,
            output_groups=7 if k < 11 else 6,
        ))
    return configs


def block_b_configs() -> List[LeafConfig]:
    """Block B: two wide crossbar datapaths.

    P0 = 12 + 13 = 25, P1 = 11 + 12 = 23, P2 = 41 + 41 = 82.
    """
    return [
        LeafConfig(name="B00_xbar", fsm=0, counter=0, datapath=10,
                   input_groups=2, he=11, output_groups=41),
        LeafConfig(name="B01_xbar", fsm=0, counter=0, datapath=11,
                   input_groups=2, he=12, output_groups=41),
    ]


def block_c_generics() -> List[LeafConfig]:
    """12 generic leafs of block C (one special hosts B2).

    P0: three leafs at 4 (2 inputs + 2 entities), nine at 3
    (4 + 12 + 27 = 43 with the special).  P1: six leafs on two HE
    signals, six on one (2 + 18 = 20).  P2: three output groups each
    (2 + 36 = 38).
    """
    configs: List[LeafConfig] = []
    for k in range(12):
        two_inputs = k < 3
        configs.append(LeafConfig(
            name=f"C{k + 1:02d}_ctl",
            fsm=1, counter=1, datapath=0,
            input_groups=2 if two_inputs else 1,
            he=2 if k < 6 else 1,
            output_groups=3,
        ))
    return configs


#: Block D pipeline shapes: (datapaths, counters, inputs, he, outputs,
#: onehot) — P0 per module = dp + cnt + onehot + inputs.
BLOCK_D_SHAPES: List[Tuple[str, Tuple[int, int, int, int, int, int]]] = [
    ("D00_merge", (18, 2, 3, 15, 46, 2)),   # P0 25, P1 15, P2 46, P3 2
    ("D01_merge", (16, 2, 3, 15, 46, 2)),   # P0 23 (hosts B4)
    ("D02_merge", (15, 2, 3, 16, 45, 2)),   # P0 22
]


def block_e_generics() -> List[LeafConfig]:
    """56 generic port handlers of block E (two decoders host B5/B6).

    P0: four leafs at 18 (2 inputs + 16 entities), fifty-two at 17
    (8 + 72 + 884 = 964 with the decoders).  P1: thirty leafs on two HE
    signals, twenty-six on one (2 + 86 = 88).  P2: thirty-four leafs
    with 3 output groups, twenty-two with 2 (4 + 146 = 150).
    """
    configs: List[LeafConfig] = []
    for k in range(56):
        big = k < 4
        configs.append(LeafConfig(
            name=f"E{k + 2:02d}_port",
            fsm=6, counter=6 if big else 5, datapath=4,
            input_groups=2,
            he=2 if k < 30 else 1,
            output_groups=3 if k < 34 else 2,
        ))
    return configs


def config_counts(configs: List[LeafConfig]) -> Tuple[int, int, int, int]:
    """(P0, P1, P2, P3) sums of a config list."""
    return (
        sum(c.p0 for c in configs),
        sum(c.p1 for c in configs),
        sum(c.p2 for c in configs),
        sum(c.p3 for c in configs),
    )
