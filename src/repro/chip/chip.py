"""The component chip: top-level assembly and statistics.

:class:`ComponentChip` bundles the five blocks, exposes the campaign
interface (block/leaf listing), the silicon hierarchy (wrappers tying
the injection ports to zero, per Figure 6), and implementation
statistics in the shape of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.checkpoints import count_checkpoints
from ..rtl.inject import make_wrapper
from ..rtl.module import Module
from .blocks import build_blocks
from .defects import ALL_DEFECT_IDS


@dataclass
class ChipStats:
    """Implementation overview (our Table 1 analogue)."""

    leaf_modules: int
    state_bits: int
    gate_equivalents: float
    detection_checkpoints: int
    core_frequency_mhz: float = 250.0

    def rows(self) -> List[Tuple[str, str]]:
        return [
            ("Leaf modules", str(self.leaf_modules)),
            ("State bits", str(self.state_bits)),
            ("Logic size", f"{self.gate_equivalents / 1000.0:.1f} kGE"),
            ("Integrity checkpoints", str(self.detection_checkpoints)),
            ("Core frequency", f"{self.core_frequency_mhz:.0f} MHz"),
        ]


class ComponentChip:
    """The synthetic server-platform component chip."""

    def __init__(self, defects: Iterable[str] = (),
                 only_blocks: Optional[Iterable[str]] = None) -> None:
        self.defects: Set[str] = set(defects)
        unknown = self.defects - ALL_DEFECT_IDS
        if unknown:
            raise ValueError(f"unknown defect ids: {sorted(unknown)}")
        self.blocks: List[Tuple[str, List[Module]]] = build_blocks(
            self.defects, only=only_blocks
        )

    # ------------------------------------------------------------------
    @classmethod
    def golden(cls) -> "ComponentChip":
        """The corrected (bug-free) chip."""
        return cls()

    @classmethod
    def with_all_defects(cls) -> "ComponentChip":
        """The pre-fix chip carrying all seven logic bugs."""
        return cls(defects=ALL_DEFECT_IDS)

    # ------------------------------------------------------------------
    def leaf_modules(self) -> List[Module]:
        return [m for _, mods in self.blocks for m in mods]

    def module_named(self, name: str) -> Module:
        for module in self.leaf_modules():
            if module.name == name:
                return module
        raise KeyError(f"no leaf module named {name!r}")

    def block_of(self, module_name: str) -> str:
        for block, mods in self.blocks:
            if any(m.name == module_name for m in mods):
                return block
        raise KeyError(f"no leaf module named {module_name!r}")

    # ------------------------------------------------------------------
    def silicon_hierarchy(self) -> List[Module]:
        """Wrapper modules (injection ports tied to zero) — what goes to
        the physical flow, per Figure 6."""
        return [make_wrapper(m) for m in self.leaf_modules()]

    def stats(self) -> ChipStats:
        from ..rtl.elaborate import elaborate
        from ..synth.area import AreaReport
        leaves = self.leaf_modules()
        state_bits = 0
        gate_equivalents = 0.0
        for module in leaves:
            design = elaborate(module)
            state_bits += design.state_bits()
            gate_equivalents += AreaReport.of_module(module).gate_equivalents
        return ChipStats(
            leaf_modules=len(leaves),
            state_bits=state_bits,
            gate_equivalents=gate_equivalents,
            detection_checkpoints=count_checkpoints(leaves),
        )
