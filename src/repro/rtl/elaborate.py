"""Elaboration: flatten a module hierarchy into a single-scope design.

Flattening creates one fresh register per (instance path, child register)
pair, rewrites child logic so child inputs become the parent's bound
expressions, and resolves :class:`~repro.rtl.signals.InstPort` reads into
the instantiated child's output logic.  The result is a
:class:`FlatDesign`: primary inputs, registers with next-state functions,
and primary outputs — the form consumed by the simulator, the synthesizer
and the bit-blaster.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .module import Instance, Module, RtlError
from .signals import Expr, Input, InstPort, Reg, substitute


class FlatDesign:
    """A flattened (single-scope) design."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: Dict[str, Input] = {}
        self.outputs: Dict[str, Expr] = {}
        self.regs: List[Reg] = []

    def signal(self, name: str) -> Expr:
        """Resolve a signal by name (input, output, or register path)."""
        if name in self.inputs:
            return self.inputs[name]
        if name in self.outputs:
            return self.outputs[name]
        for r in self.regs:
            if r.name == name:
                return r
        raise KeyError(f"design {self.name!r}: no signal named {name!r}")

    def add_reg(self, reg: Reg) -> Reg:
        self.regs.append(reg)
        return reg

    def state_bits(self) -> int:
        """Total number of state bits (formal problem size metric)."""
        return sum(r.width for r in self.regs)

    def __repr__(self) -> str:
        return (
            f"FlatDesign({self.name!r}, {len(self.inputs)} in, "
            f"{len(self.outputs)} out, {self.state_bits()} state bits)"
        )


def elaborate(top: Module, check: bool = True) -> FlatDesign:
    """Flatten ``top`` and everything below it into a :class:`FlatDesign`.

    Instance paths become dotted register names (``u0.cs``).  Sibling
    instances may feed each other combinationally as long as the
    dependency graph between instance *outputs* is acyclic; a cycle
    raises :class:`RtlError`.
    """
    if check:
        top.validate()
    flat = FlatDesign(top.name)
    flat.inputs = dict(top.inputs)
    top_bindings: Dict[Expr, Expr] = {p: p for p in top.inputs.values()}
    outputs = _flatten_scope(top, "", top_bindings, flat)
    flat.outputs = outputs
    return flat


def _flatten_scope(module: Module, prefix: str,
                   input_bindings: Dict[Expr, Expr],
                   flat: FlatDesign) -> Dict[str, Expr]:
    """Flatten one module scope; returns its resolved output map."""
    mapping: Dict[Expr, Expr] = dict(input_bindings)
    fresh_regs: List[Reg] = []
    for reg in module.regs:
        fresh = Reg(prefix + reg.name, reg.width, reg.reset)
        flat.add_reg(fresh)
        mapping[reg] = fresh
        fresh_regs.append(fresh)

    memo: Dict[int, Expr] = {}
    inst_outputs: Dict[int, Dict[str, Expr]] = {}
    in_progress: set = set()

    def resolve(expr: Expr) -> Expr:
        return substitute(expr, mapping, memo, inst_resolver=resolve_port)

    def resolve_port(port: InstPort) -> Expr:
        inst = port.instance
        assert isinstance(inst, Instance)
        if id(inst) not in inst_outputs:
            if id(inst) in in_progress:
                raise RtlError(
                    f"combinational cycle through instance "
                    f"{prefix}{inst.name!r} during elaboration"
                )
            in_progress.add(id(inst))
            child_bindings = {
                inst.module.inputs[name]: resolve(bound)
                for name, bound in inst.bindings.items()
            }
            inst_outputs[id(inst)] = _flatten_scope(
                inst.module, prefix + inst.name + ".", child_bindings, flat
            )
            in_progress.discard(id(inst))
        return inst_outputs[id(inst)][port.port]

    for original, fresh in zip(module.regs, fresh_regs):
        fresh.next = resolve(original.next)

    resolved_outputs = {
        name: resolve(expr) for name, expr in module.outputs.items()
    }

    # Instances whose outputs are never read still contribute state
    # (e.g. blocks wired only for side effects); flatten them too.
    for inst in module.instances:
        if id(inst) not in inst_outputs:
            resolve_port(inst[next(iter(inst.module.outputs))]) \
                if inst.module.outputs else _flatten_scope(
                    inst.module, prefix + inst.name + ".",
                    {inst.module.inputs[n]: resolve(b)
                     for n, b in inst.bindings.items()},
                    flat)

    return resolved_outputs
