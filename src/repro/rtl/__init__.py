"""RTL substrate: expression IR, modules, parity protection, Verifiable
RTL transforms, elaboration, bit-blasting and Verilog emission."""

from .signals import (
    Const, Expr, Input, Op, Reg, WidthError,
    all_ones, cat, coerce, const, evaluate, mask, mux, substitute, walk, zext,
)
from .module import Instance, Module, RtlError, iter_leaf_modules, iter_modules
from .integrity import (
    COUNTER, DATAPATH, FSM, IntegritySpec, ParityGroup, ProtectedEntity,
)
from .parity import (
    corrupt, data_bits, encode_value, odd_parity_bit, parity_bit, parity_ok,
    protect, value_ok,
)
from .builder import (
    ProtectedState, he_report, is_any_of, latched_flag, one_hot_codes,
    parity_counter, parity_fsm, priority_select,
)
from .inject import EC_PORT, ED_PORT, make_verifiable, make_wrapper
from .elaborate import FlatDesign, elaborate
from .netlist import Aig, BitBlaster, bitblast
from .lint import ERROR, WARNING, LintIssue, lint_verifiable, lint_wrapper
from .verilog import emit_hierarchy, emit_module

__all__ = [
    "Const", "Expr", "Input", "Op", "Reg", "WidthError",
    "all_ones", "cat", "coerce", "const", "evaluate", "mask", "mux",
    "substitute", "walk", "zext",
    "Instance", "Module", "RtlError", "iter_leaf_modules", "iter_modules",
    "COUNTER", "DATAPATH", "FSM", "IntegritySpec", "ParityGroup",
    "ProtectedEntity",
    "corrupt", "data_bits", "encode_value", "odd_parity_bit", "parity_bit",
    "parity_ok", "protect", "value_ok",
    "ProtectedState", "he_report", "is_any_of", "latched_flag",
    "one_hot_codes", "parity_counter", "parity_fsm", "priority_select",
    "EC_PORT", "ED_PORT", "make_verifiable", "make_wrapper",
    "FlatDesign", "elaborate",
    "Aig", "BitBlaster", "bitblast",
    "ERROR", "WARNING", "LintIssue", "lint_verifiable", "lint_wrapper",
    "emit_hierarchy", "emit_module",
]
