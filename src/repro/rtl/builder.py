"""Builder helpers for parity-protected state machines and counters.

These helpers capture the implementation idioms of the target chip
(paper section 2): every FSM and counter register stores its state
together with an odd-parity bit, and the integrity of the stored word
is checked combinationally every cycle to drive the hardware error
report (HE).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .module import Module
from .parity import encode_value, odd_parity_bit, parity_ok, protect
from .signals import Const, Expr, Reg, cat, mux


class ProtectedState:
    """A parity-protected register: ``width`` data bits plus one parity
    MSB.

    The register is driven through :meth:`drive`, which recomputes the
    parity bit from the next data value (control-structure style), or
    :meth:`drive_word`, which forwards an already-protected word
    (datapath style, parity travels with the data).
    """

    def __init__(self, module: Module, name: str, data_width: int,
                 reset_data: int = 0) -> None:
        self.module = module
        self.data_width = data_width
        self.reg = module.reg(name, data_width + 1,
                              reset=encode_value(reset_data, data_width))

    @property
    def word(self) -> Reg:
        """The full protected word (data plus parity MSB)."""
        return self.reg

    @property
    def data(self) -> Expr:
        """The data bits of the stored word."""
        return self.reg[0:self.data_width]

    @property
    def parity(self) -> Expr:
        """The stored parity bit (MSB)."""
        return self.reg[self.data_width]

    def drive(self, next_data: Expr) -> None:
        """Drive with fresh data; the parity bit is recomputed."""
        if next_data.width != self.data_width:
            raise ValueError(
                f"{self.reg.name}: next data is {next_data.width} bits, "
                f"expected {self.data_width}"
            )
        self.reg.next = protect(next_data)

    def drive_word(self, next_word: Expr) -> None:
        """Drive with a full protected word (parity propagates)."""
        self.reg.next = next_word

    def check_ok(self) -> Expr:
        """1-bit integrity check of the stored word (odd parity)."""
        return parity_ok(self.reg)

    def check_fail(self) -> Expr:
        """1-bit integrity *violation* flag — a HE contribution."""
        return ~self.check_ok()


def parity_counter(module: Module, name: str, data_width: int,
                   enable: Expr, clear: Optional[Expr] = None,
                   reset_value: int = 0) -> ProtectedState:
    """Build a parity-protected up-counter.

    Counts modulo ``2 ** data_width`` while ``enable`` is high; ``clear``
    (optional) synchronously resets the count.  Parity is recomputed
    every cycle from the next count value.
    """
    state = ProtectedState(module, name, data_width, reset_data=reset_value)
    incremented = state.data + Const(1, data_width)
    next_data = mux(enable, incremented, state.data)
    if clear is not None:
        next_data = mux(clear, Const(0, data_width), next_data)
    state.drive(next_data)
    return state


def one_hot_codes(n_states: int, data_width: Optional[int] = None) -> List[int]:
    """One-hot state encodings (a common chip FSM style)."""
    width = data_width if data_width is not None else n_states
    if n_states > width:
        raise ValueError("more states than data bits for one-hot coding")
    return [1 << i for i in range(n_states)]


def is_any_of(value: Expr, codes: Sequence[int]) -> Expr:
    """1-bit check that ``value`` equals one of ``codes`` — the legal-
    state predicate used for illegal state detection."""
    if not codes:
        raise ValueError("empty code list")
    check = value.eq(Const(codes[0], value.width))
    for code in codes[1:]:
        check = check | value.eq(Const(code, value.width))
    return check


def priority_select(conditions: Sequence[Expr], values: Sequence[Expr],
                    default: Expr) -> Expr:
    """Priority-encoded selection: the first true condition wins."""
    if len(conditions) != len(values):
        raise ValueError("conditions and values differ in length")
    selected = default
    for cond, value in zip(reversed(conditions), reversed(values)):
        selected = mux(cond, value, selected)
    return selected


def parity_fsm(module: Module, name: str, data_width: int,
               reset_state: int) -> ProtectedState:
    """Declare a parity-protected FSM state register.

    The caller computes the next-state data expression and finishes with
    ``fsm.drive(next_state)``.
    """
    return ProtectedState(module, name, data_width, reset_data=reset_state)


def latched_flag(module: Module, name: str, condition: Expr) -> Reg:
    """Error-log register: latches a 1-bit condition for reporting in
    the following cycle.

    The chip's RAS style logs input-side integrity violations in a flop
    before reporting, so the hardware error report fires exactly one
    cycle after the violating word was presented (the ``-> next HE``
    timing of the stereotype properties) — independent of anything else
    happening in that cycle, error injection included.
    """
    if condition.width != 1:
        raise ValueError(f"flag {name!r}: condition must be 1 bit")
    flag = module.reg(name, 1, reset=0)
    flag.next = condition
    return flag


def he_report(module: Module, name: str,
              fail_flags: Iterable[Expr]) -> Expr:
    """Build a registered hardware-error report output.

    The OR of all integrity-violation flags is latched so the report
    fires the cycle *after* the violating value is stored — matching the
    paper's ``-> next HE`` stereotype timing.

    Returns the HE output expression.
    """
    flags = list(fail_flags)
    if not flags:
        raise ValueError("he_report needs at least one failure flag")
    combined = flags[0]
    for flag in flags[1:]:
        combined = combined | flag
    return module.output(name, combined)
