"""Hierarchical RTL module model.

A :class:`Module` owns input ports, registers, named output expressions
and child :class:`Instance` objects.  Hierarchy is purely structural:
an instance binds parent-scope expressions to the child's input ports and
exposes the child's outputs back to the parent as :class:`InstPort`
expression nodes.  Flattening lives in :mod:`repro.rtl.elaborate`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .signals import Expr, ExprLike, Input, InstPort, Reg, coerce


class RtlError(ValueError):
    """Raised for structural RTL construction errors."""


class Module:
    """A hardware module: ports, state, logic, and child instances.

    Use the builder-style methods::

        m = Module("leaf")
        data = m.input("I_DATA", 8)
        state = m.reg("cs", 4, reset=0b1000)
        state.next = ...
        m.output("O_DATA", data ^ 1)

    ``integrity`` optionally carries the module's data-integrity
    specification (see :mod:`repro.rtl.integrity`); the methodology's
    stereotype property generators read it.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: Dict[str, Input] = {}
        self.outputs: Dict[str, Expr] = {}
        self.regs: List[Reg] = []
        self.instances: List["Instance"] = []
        self.integrity = None  # Optional[IntegritySpec]
        self.attrs: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def input(self, name: str, width: int = 1) -> Input:
        """Declare an input port and return its expression."""
        if name in self.inputs:
            raise RtlError(f"module {self.name!r}: duplicate input {name!r}")
        if name in self.outputs:
            raise RtlError(f"module {self.name!r}: {name!r} is already an output")
        port = Input(name, width)
        self.inputs[name] = port
        return port

    def output(self, name: str, expr: ExprLike, width: Optional[int] = None) -> Expr:
        """Declare an output port driven by ``expr``."""
        if name in self.outputs:
            raise RtlError(f"module {self.name!r}: duplicate output {name!r}")
        if name in self.inputs:
            raise RtlError(f"module {self.name!r}: {name!r} is already an input")
        if not isinstance(expr, Expr):
            if width is None:
                raise RtlError(f"output {name!r}: constant value needs explicit width")
            expr = coerce(expr, width)
        self.outputs[name] = expr
        return expr

    def reg(self, name: str, width: int = 1, reset: int = 0) -> Reg:
        """Declare a register (DFF bank) with a reset value."""
        if any(r.name == name for r in self.regs):
            raise RtlError(f"module {self.name!r}: duplicate register {name!r}")
        r = Reg(name, width, reset)
        self.regs.append(r)
        return r

    def instantiate(self, child: "Module", inst_name: str,
                    **bindings: ExprLike) -> "Instance":
        """Instantiate ``child``, binding its inputs to parent expressions.

        Every child input must be bound.  Returns the :class:`Instance`,
        whose outputs are read with ``inst["PORT_NAME"]``.
        """
        inst = Instance(self, child, inst_name, bindings)
        self.instances.append(inst)
        return inst

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def signal(self, name: str) -> Expr:
        """Resolve a signal by name: input, output, or register.

        This is the namespace PSL properties are bound against.
        """
        if name in self.inputs:
            return self.inputs[name]
        if name in self.outputs:
            return self.outputs[name]
        for r in self.regs:
            if r.name == name:
                return r
        raise KeyError(f"module {self.name!r}: no signal named {name!r}")

    def signal_names(self) -> List[str]:
        """All resolvable signal names (inputs, outputs, registers)."""
        names = list(self.inputs)
        names.extend(self.outputs)
        names.extend(r.name for r in self.regs)
        return names

    def is_leaf(self) -> bool:
        """A leaf module instantiates no children (paper section 3)."""
        return not self.instances

    def port_order(self) -> List[str]:
        """Deterministic port listing used by the Verilog emitter."""
        return list(self.inputs) + list(self.outputs)

    def validate(self) -> None:
        """Check structural completeness (all registers driven, all
        instance inputs bound)."""
        for r in self.regs:
            if not r.has_next:
                raise RtlError(
                    f"module {self.name!r}: register {r.name!r} has no "
                    f"next-state function"
                )
        for inst in self.instances:
            inst.validate()
            inst.module.validate()

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, {len(self.inputs)} in, "
            f"{len(self.outputs)} out, {len(self.regs)} regs, "
            f"{len(self.instances)} insts)"
        )


class Instance:
    """A child module instantiation inside a parent module."""

    def __init__(self, parent: Module, module: Module, name: str,
                 bindings: Dict[str, ExprLike]) -> None:
        self.parent = parent
        self.module = module
        self.name = name
        self.bindings: Dict[str, Expr] = {}
        for port, value in bindings.items():
            self.bind(port, value)
        self._outputs: Dict[str, InstPort] = {}

    def bind(self, port: str, value: ExprLike) -> None:
        """Bind a child input port to a parent-scope expression."""
        if port not in self.module.inputs:
            raise RtlError(
                f"instance {self.name!r}: module {self.module.name!r} has no "
                f"input {port!r}"
            )
        expected = self.module.inputs[port].width
        expr = coerce(value, expected)
        if expr.width != expected:
            raise RtlError(
                f"instance {self.name!r}: binding for {port!r} is "
                f"{expr.width} bits, expected {expected}"
            )
        self.bindings[port] = expr

    def __getitem__(self, port: str) -> InstPort:
        """Read a child output port in the parent scope."""
        if port not in self.module.outputs:
            raise RtlError(
                f"instance {self.name!r}: module {self.module.name!r} has no "
                f"output {port!r}"
            )
        if port not in self._outputs:
            width = self.module.outputs[port].width
            self._outputs[port] = InstPort(self, port, width)
        return self._outputs[port]

    def validate(self) -> None:
        missing = [p for p in self.module.inputs if p not in self.bindings]
        if missing:
            raise RtlError(
                f"instance {self.name!r} of {self.module.name!r}: unbound "
                f"inputs {missing}"
            )

    def __repr__(self) -> str:
        return f"Instance({self.name!r} of {self.module.name!r})"


def iter_modules(top: Module) -> Iterable[Module]:
    """Yield ``top`` and every module instantiated (transitively) below
    it, each distinct module object exactly once, leaves first."""
    seen: Dict[int, Module] = {}

    def visit(mod: Module):
        if id(mod) in seen:
            return
        seen[id(mod)] = mod
        for inst in mod.instances:
            visit(inst.module)
        yield_order.append(mod)

    yield_order: List[Module] = []
    visit(top)
    return yield_order


def iter_leaf_modules(top: Module) -> List[Module]:
    """All distinct leaf modules under (and including) ``top``."""
    return [m for m in iter_modules(top) if m.is_leaf()]
