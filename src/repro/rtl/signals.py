"""Word-level bit-vector expression IR.

This is the foundation of the RTL substrate: immutable, width-checked
expression nodes with Python operator overloading, plus a generic
substitution engine used by elaboration and the Verifiable-RTL transform.

Values are plain Python ints masked to the expression width.  All
operations are unsigned and modular.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Tuple


def mask(width: int) -> int:
    """All-ones mask for ``width`` bits."""
    return (1 << width) - 1


class WidthError(ValueError):
    """Raised when expression operand widths are inconsistent."""


class Expr:
    """Base class for all word-level expressions.

    Every expression has a fixed bit ``width``.  Subclasses are immutable
    value objects except :class:`Reg`, whose ``next`` function is assigned
    after construction (sequential feedback requires it).
    """

    __slots__ = ("width",)

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise WidthError(f"expression width must be positive, got {width}")
        self.width = width

    # ------------------------------------------------------------------
    # operator overloading
    # ------------------------------------------------------------------
    def __invert__(self) -> "Expr":
        return Op("NOT", (self,), self.width)

    def __and__(self, other: "ExprLike") -> "Expr":
        return _binop("AND", self, other)

    def __rand__(self, other: "ExprLike") -> "Expr":
        return _binop("AND", coerce(other, self.width), self)

    def __or__(self, other: "ExprLike") -> "Expr":
        return _binop("OR", self, other)

    def __ror__(self, other: "ExprLike") -> "Expr":
        return _binop("OR", coerce(other, self.width), self)

    def __xor__(self, other: "ExprLike") -> "Expr":
        return _binop("XOR", self, other)

    def __rxor__(self, other: "ExprLike") -> "Expr":
        return _binop("XOR", coerce(other, self.width), self)

    def __add__(self, other: "ExprLike") -> "Expr":
        return _binop("ADD", self, other)

    def __sub__(self, other: "ExprLike") -> "Expr":
        return _binop("SUB", self, other)

    def eq(self, other: "ExprLike") -> "Expr":
        """1-bit equality comparison."""
        other = coerce(other, self.width)
        if other.width != self.width:
            raise WidthError(f"eq: width {self.width} vs {other.width}")
        return Op("EQ", (self, other), 1)

    def ne(self, other: "ExprLike") -> "Expr":
        """1-bit inequality comparison."""
        return ~self.eq(other)

    def lt(self, other: "ExprLike") -> "Expr":
        """1-bit unsigned less-than."""
        other = coerce(other, self.width)
        if other.width != self.width:
            raise WidthError(f"lt: width {self.width} vs {other.width}")
        return Op("LT", (self, other), 1)

    def ge(self, other: "ExprLike") -> "Expr":
        """1-bit unsigned greater-or-equal."""
        return ~self.lt(other)

    def __getitem__(self, index) -> "Expr":
        if isinstance(index, slice):
            lo, hi = _decode_slice(index, self.width)
            return Op("SLICE", (self,), hi - lo + 1, param=lo)
        if not 0 <= index < self.width:
            raise WidthError(f"bit index {index} out of range for width {self.width}")
        return Op("SLICE", (self,), 1, param=index)

    def reduce_xor(self) -> "Expr":
        """XOR-reduction of all bits (the PSL ``^sig`` operator).

        For odd-parity protected words this is the integrity check: the
        result is 1 exactly when the word carries an odd number of ones.
        """
        return Op("REDXOR", (self,), 1)

    def reduce_or(self) -> "Expr":
        """OR-reduction of all bits."""
        return Op("REDOR", (self,), 1)

    def reduce_and(self) -> "Expr":
        """AND-reduction of all bits."""
        return Op("REDAND", (self,), 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} w{self.width}>"


ExprLike = object  # Expr | int


def _decode_slice(index: slice, width: int) -> Tuple[int, int]:
    """Decode Verilog-style ``sig[hi:lo]`` or Python ``sig[lo:hi+1]``.

    We adopt the Python convention: ``sig[a:b]`` selects bits ``a`` (lsb)
    through ``b - 1`` inclusive.  ``step`` is not supported.
    """
    if index.step is not None:
        raise WidthError("slice step is not supported")
    lo = 0 if index.start is None else index.start
    hi = width - 1 if index.stop is None else index.stop - 1
    if not (0 <= lo <= hi < width):
        raise WidthError(f"slice [{lo}:{hi}] out of range for width {width}")
    return lo, hi


def coerce(value: ExprLike, width: int) -> Expr:
    """Coerce an int to a :class:`Const` of ``width``; pass exprs through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value), width)
    if isinstance(value, int):
        return Const(value, width)
    raise TypeError(f"cannot coerce {value!r} to an expression")


def _binop(kind: str, a: Expr, b: ExprLike) -> Expr:
    b = coerce(b, a.width)
    if a.width != b.width:
        raise WidthError(f"{kind}: width mismatch {a.width} vs {b.width}")
    return Op(kind, (a, b), a.width)


class Const(Expr):
    """Constant bit-vector value."""

    __slots__ = ("value",)

    def __init__(self, value: int, width: int) -> None:
        super().__init__(width)
        if value < 0:
            raise WidthError(f"constant value must be non-negative, got {value}")
        if value > mask(width):
            raise WidthError(f"constant {value} does not fit in {width} bits")
        self.value = value

    def __repr__(self) -> str:
        return f"Const({self.value:#x}, w{self.width})"


class Input(Expr):
    """Primary input port of a module."""

    __slots__ = ("name",)

    _ids = itertools.count()

    def __init__(self, name: str, width: int) -> None:
        super().__init__(width)
        self.name = name

    def __repr__(self) -> str:
        return f"Input({self.name!r}, w{self.width})"


class Reg(Expr):
    """State element (D flip-flop bank) with synchronous reset value.

    Reading a :class:`Reg` as an expression yields its current-state
    value.  The next-state function is assigned once via :attr:`next`.
    """

    __slots__ = ("name", "reset", "_next")

    def __init__(self, name: str, width: int, reset: int = 0) -> None:
        super().__init__(width)
        if reset < 0 or reset > mask(width):
            raise WidthError(f"reset value {reset} does not fit in {width} bits")
        self.name = name
        self.reset = reset
        self._next: Optional[Expr] = None

    @property
    def next(self) -> Expr:
        if self._next is None:
            raise ValueError(f"register {self.name!r} has no next-state function")
        return self._next

    @next.setter
    def next(self, value: ExprLike) -> None:
        expr = coerce(value, self.width)
        if expr.width != self.width:
            raise WidthError(
                f"register {self.name!r}: next width {expr.width} != {self.width}"
            )
        self._next = expr

    @property
    def has_next(self) -> bool:
        return self._next is not None

    def __repr__(self) -> str:
        return f"Reg({self.name!r}, w{self.width})"


class Op(Expr):
    """Combinational operator node.

    ``kind`` is one of: NOT AND OR XOR ADD SUB EQ LT MUX CONCAT SLICE
    REDXOR REDOR REDAND.  ``param`` carries the lsb offset for SLICE.
    """

    __slots__ = ("kind", "operands", "param")

    KINDS = frozenset(
        [
            "NOT", "AND", "OR", "XOR", "ADD", "SUB", "EQ", "LT",
            "MUX", "CONCAT", "SLICE", "REDXOR", "REDOR", "REDAND",
        ]
    )

    def __init__(self, kind: str, operands: Tuple[Expr, ...], width: int,
                 param: Optional[int] = None) -> None:
        super().__init__(width)
        if kind not in self.KINDS:
            raise ValueError(f"unknown operator kind {kind!r}")
        self.kind = kind
        self.operands = tuple(operands)
        self.param = param

    def __repr__(self) -> str:
        return f"Op({self.kind}, w{self.width})"


class InstPort(Expr):
    """Output port of a module instance, read in the parent scope.

    These nodes exist only before elaboration; flattening replaces them
    with the instantiated child's output expression.
    """

    __slots__ = ("instance", "port")

    def __init__(self, instance: object, port: str, width: int) -> None:
        super().__init__(width)
        self.instance = instance
        self.port = port

    def __repr__(self) -> str:
        return f"InstPort({self.port!r}, w{self.width})"


# ----------------------------------------------------------------------
# convenience constructors
# ----------------------------------------------------------------------

def const(value: int, width: int) -> Const:
    """Build a constant bit-vector."""
    return Const(value, width)


def mux(sel: Expr, if_true: ExprLike, if_false: ExprLike) -> Expr:
    """2:1 multiplexer; ``sel`` must be 1 bit wide."""
    if sel.width != 1:
        raise WidthError(f"mux select must be 1 bit, got {sel.width}")
    if isinstance(if_true, Expr):
        width = if_true.width
    elif isinstance(if_false, Expr):
        width = if_false.width
    else:
        raise TypeError("mux needs at least one Expr arm to infer width")
    a = coerce(if_true, width)
    b = coerce(if_false, width)
    if a.width != b.width:
        raise WidthError(f"mux arms differ in width: {a.width} vs {b.width}")
    return Op("MUX", (sel, a, b), width)


def cat(*parts: Expr) -> Expr:
    """Concatenate expressions, first argument becomes the MSBs.

    Mirrors Verilog ``{a, b, c}`` ordering.
    """
    if not parts:
        raise WidthError("cat() needs at least one part")
    if len(parts) == 1:
        return parts[0]
    width = sum(p.width for p in parts)
    return Op("CONCAT", tuple(parts), width)


def zext(expr: Expr, width: int) -> Expr:
    """Zero-extend ``expr`` to ``width`` bits."""
    if width < expr.width:
        raise WidthError(f"cannot zero-extend w{expr.width} down to w{width}")
    if width == expr.width:
        return expr
    return cat(Const(0, width - expr.width), expr)


def all_ones(width: int) -> Const:
    """Constant with every bit set."""
    return Const(mask(width), width)


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------

def evaluate(expr: Expr, env: Dict[Expr, int],
             memo: Optional[Dict[int, int]] = None) -> int:
    """Evaluate ``expr`` given values for every :class:`Input` and
    :class:`Reg` leaf in ``env`` (keyed by the node objects themselves).

    ``memo`` caches results by node identity; pass a fresh dict per cycle.
    Iterative (explicit stack) so deep expression trees do not overflow
    Python's recursion limit.
    """
    if memo is None:
        memo = {}
    stack: List[Expr] = [expr]
    while stack:
        node = stack[-1]
        key = id(node)
        if key in memo:
            stack.pop()
            continue
        if isinstance(node, Const):
            memo[key] = node.value
            stack.pop()
            continue
        if isinstance(node, (Input, Reg)):
            try:
                memo[key] = env[node] & mask(node.width)
            except KeyError:
                raise KeyError(f"no value bound for {node!r}") from None
            stack.pop()
            continue
        if isinstance(node, InstPort):
            raise TypeError("cannot evaluate un-elaborated InstPort; flatten first")
        assert isinstance(node, Op)
        pending = [op for op in node.operands if id(op) not in memo]
        if pending:
            stack.extend(pending)
            continue
        vals = [memo[id(op)] for op in node.operands]
        memo[key] = _eval_op(node, vals)
        stack.pop()
    return memo[id(expr)]


def _eval_op(node: Op, vals: List[int]) -> int:
    m = mask(node.width)
    kind = node.kind
    if kind == "NOT":
        return ~vals[0] & m
    if kind == "AND":
        return vals[0] & vals[1]
    if kind == "OR":
        return vals[0] | vals[1]
    if kind == "XOR":
        return vals[0] ^ vals[1]
    if kind == "ADD":
        return (vals[0] + vals[1]) & m
    if kind == "SUB":
        return (vals[0] - vals[1]) & m
    if kind == "EQ":
        return int(vals[0] == vals[1])
    if kind == "LT":
        return int(vals[0] < vals[1])
    if kind == "MUX":
        return vals[1] if vals[0] else vals[2]
    if kind == "CONCAT":
        acc = 0
        for operand, val in zip(node.operands, vals):
            acc = (acc << operand.width) | val
        return acc
    if kind == "SLICE":
        return (vals[0] >> node.param) & m
    if kind == "REDXOR":
        return bin(vals[0]).count("1") & 1
    if kind == "REDOR":
        return int(vals[0] != 0)
    if kind == "REDAND":
        return int(vals[0] == mask(node.operands[0].width))
    raise AssertionError(f"unhandled op {kind}")


# ----------------------------------------------------------------------
# substitution
# ----------------------------------------------------------------------

def substitute(expr: Expr, mapping: Dict[Expr, Expr],
               memo: Optional[Dict[int, Expr]] = None,
               inst_resolver: Optional[Callable[[InstPort], Expr]] = None) -> Expr:
    """Rewrite ``expr``, replacing leaves per ``mapping`` (identity keys).

    ``inst_resolver``, when given, maps :class:`InstPort` nodes to
    replacement expressions (used by elaboration).  Shared sub-graphs stay
    shared in the output thanks to the identity memo.
    """
    if memo is None:
        memo = {}
    stack: List[Expr] = [expr]
    while stack:
        node = stack[-1]
        key = id(node)
        if key in memo:
            stack.pop()
            continue
        mapped = mapping.get(node)
        if mapped is not None:
            if mapped.width != node.width:
                raise WidthError(
                    f"substitution changes width {node.width} -> {mapped.width}"
                )
            memo[key] = mapped
            stack.pop()
            continue
        if isinstance(node, (Const, Input, Reg)):
            memo[key] = node
            stack.pop()
            continue
        if isinstance(node, InstPort):
            if inst_resolver is None:
                memo[key] = node
                stack.pop()
                continue
            resolved = inst_resolver(node)
            if id(resolved) not in memo and resolved is not node:
                # The resolved expression may itself need rewriting.
                stack.append(resolved)
                continue
            memo[key] = memo.get(id(resolved), resolved)
            stack.pop()
            continue
        assert isinstance(node, Op)
        pending = [op for op in node.operands if id(op) not in memo]
        if pending:
            stack.extend(pending)
            continue
        new_ops = tuple(memo[id(op)] for op in node.operands)
        if all(a is b for a, b in zip(new_ops, node.operands)):
            memo[key] = node
        else:
            memo[key] = Op(node.kind, new_ops, node.width, param=node.param)
        stack.pop()
    return memo[id(expr)]


def walk(roots: Iterable[Expr]) -> Iterable[Expr]:
    """Yield every node reachable from ``roots`` exactly once (post-order
    not guaranteed; use for collection, not evaluation)."""
    seen: Dict[int, Expr] = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen[id(node)] = node
        yield node
        if isinstance(node, Op):
            stack.extend(node.operands)
