"""Data-integrity specification metadata.

The paper's flow has logic designers release, together with the RTL, a
*specification of data integrity*: which inputs/outputs carry parity,
which internal entities (FSMs, counters, data-path registers) are parity
protected, how errors are injected into each entity, and where hardware
errors are reported.  That specification is what the verification
engineer turns into the three stereotype PSL vunits.

This module is the machine-readable form of that specification.  It is
attached to a :class:`~repro.rtl.module.Module` as ``module.integrity``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


#: Entity kinds, mirroring the paper's classification.
FSM = "fsm"
COUNTER = "counter"
DATAPATH = "datapath"

ENTITY_KINDS = (FSM, COUNTER, DATAPATH)


@dataclass(frozen=True)
class ParityGroup:
    """A parity-protected signal group on a port.

    ``signal`` names a module input or output; the bits ``[lsb, lsb +
    width)`` of that port form one odd-parity-protected word (data bits
    plus parity bit together always carry an odd number of ones).
    """

    signal: str
    lsb: int = 0
    width: Optional[int] = None  # None = entire port

    def describe(self) -> str:
        if self.width is None:
            return self.signal
        hi = self.lsb + self.width - 1
        return f"{self.signal}[{hi}:{self.lsb}]"


@dataclass(frozen=True)
class ProtectedEntity:
    """A parity-protected internal state entity (FSM / counter / datapath
    register) with its error-injection hookup.

    ``reg_name`` names the register inside the module.  ``ec_index`` is
    the bit of the module's error-injection control port dedicated to
    this entity (EC is per-entity, per paper section 4.1), and the
    injected value arrives on the shared error-injection data port,
    bits ``[0, reg width)``.
    """

    name: str
    reg_name: str
    kind: str
    ec_index: int

    def __post_init__(self) -> None:
        if self.kind not in ENTITY_KINDS:
            raise ValueError(f"unknown entity kind {self.kind!r}")


@dataclass
class IntegritySpec:
    """Complete data-integrity specification of one leaf module.

    Attributes mirror Figure 1 of the paper:

    - ``protected_inputs`` — parity groups on primary inputs (``I``),
    - ``protected_outputs`` — parity groups on primary outputs (``O``),
    - ``entities`` — internal protected state (``A``/``B``) with their
      EC hookup,
    - ``ec_port`` / ``ed_port`` — error-injection control/data ports,
    - ``he_signals`` — hardware-error report outputs (``HE``); each one
      yields its own soundness (P1) assertion,
    - ``extra_properties`` — named module-specific (P3) PSL property
      sources.

    Environment refinement (all optional, released by the designer as
    part of the data-integrity specification):

    - ``env_assumptions`` — named extra PSL ``assume`` sources for the
      P1/P2/P3 vunits (e.g. "macro data carries parity only after the
      interface is ready");
    - ``free_inputs`` — protected input groups whose *default* integrity
      assumption must be dropped because an ``env_assumptions`` entry
      models them more precisely (a hard macro that is unstable right
      after reset, say);
    - ``p0_overrides`` — replacement Check2 property source per input
      group, for checkpoints whose detection duty is qualified (e.g.
      only while the interface accepts data).
    """

    protected_inputs: List[ParityGroup] = field(default_factory=list)
    protected_outputs: List[ParityGroup] = field(default_factory=list)
    entities: List[ProtectedEntity] = field(default_factory=list)
    ec_port: Optional[str] = None
    ed_port: Optional[str] = None
    he_signals: List[str] = field(default_factory=list)
    extra_properties: List[Tuple[str, str]] = field(default_factory=list)
    env_assumptions: List[Tuple[str, str]] = field(default_factory=list)
    free_inputs: List[str] = field(default_factory=list)
    p0_overrides: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # checkpoint accounting (drives the Table 2 property counts)
    # ------------------------------------------------------------------
    def count_p0(self) -> int:
        """Error-detection (P0) assertions: one Check1 per entity plus
        one Check2 per protected input group."""
        return len(self.entities) + len(self.protected_inputs)

    def count_p1(self) -> int:
        """Soundness (P1) assertions: one ``never HE`` per report bit."""
        return len(self.he_signals)

    def count_p2(self) -> int:
        """Output-integrity (P2) assertions: one per output group."""
        return len(self.protected_outputs)

    def count_p3(self) -> int:
        """Other (P3) assertions supplied by the designer."""
        return len(self.extra_properties)

    def count_total(self) -> int:
        return self.count_p0() + self.count_p1() + self.count_p2() + self.count_p3()

    def has_checkpoints(self) -> bool:
        """Modules with no internal state and no parity-protected paths
        are excluded from the formal scope (paper section 3)."""
        return bool(self.entities or self.protected_inputs
                    or self.protected_outputs)

    def entity(self, name: str) -> ProtectedEntity:
        for ent in self.entities:
            if ent.name == name:
                return ent
        raise KeyError(f"no protected entity named {name!r}")

    def ec_index_of(self, name: str) -> int:
        """The EC bit injecting the named entity.

        This is the *stable-identifier* path into the injection
        plumbing: callers address an entity by name (the same name a
        :class:`~repro.chip.defects.DefectSite` location carries) and
        get its EC hookup, instead of assuming anything about list
        positions — entity order may change as a module generator
        grows, entity names and their EC wiring travel together.
        """
        return self.entity(name).ec_index

    def output_group(self, signal: str) -> ParityGroup:
        """The protected output group on the named port (full-port
        groups; raises ``KeyError`` when the port carries none)."""
        for group in self.protected_outputs:
            if group.signal == signal:
                return group
        raise KeyError(f"no protected output group on {signal!r}")

    def validate_against(self, module) -> List[str]:
        """Return a list of inconsistencies between this spec and the
        module's actual ports/registers (empty list = consistent)."""
        problems: List[str] = []
        reg_names = {r.name: r for r in module.regs}
        for ent in self.entities:
            if ent.reg_name not in reg_names:
                problems.append(
                    f"entity {ent.name!r} references missing register "
                    f"{ent.reg_name!r}"
                )
        if self.entities:
            if self.ec_port is None or self.ec_port not in module.inputs:
                problems.append("EC port missing or not an input")
            if self.ed_port is None or self.ed_port not in module.inputs:
                problems.append("ED port missing or not an input")
            else:
                ed_width = module.inputs[self.ed_port].width
                for ent in self.entities:
                    reg = reg_names.get(ent.reg_name)
                    if reg is not None and reg.width > ed_width:
                        problems.append(
                            f"entity {ent.name!r}: register wider than ED "
                            f"({reg.width} > {ed_width})"
                        )
            if self.ec_port is not None and self.ec_port in module.inputs:
                ec_width = module.inputs[self.ec_port].width
                indices = [e.ec_index for e in self.entities]
                if len(set(indices)) != len(indices):
                    problems.append("EC indices are not per-entity unique")
                for ent in self.entities:
                    if not 0 <= ent.ec_index < ec_width:
                        problems.append(
                            f"entity {ent.name!r}: EC index {ent.ec_index} "
                            f"out of range for {ec_width}-bit EC port"
                        )
        for group in self.protected_inputs:
            if group.signal not in module.inputs:
                problems.append(f"input parity group on missing port "
                                f"{group.signal!r}")
        for group in self.protected_outputs:
            if group.signal not in module.outputs:
                problems.append(f"output parity group on missing port "
                                f"{group.signal!r}")
        for he in self.he_signals:
            if he not in module.outputs:
                problems.append(f"HE signal {he!r} is not an output")
        return problems
