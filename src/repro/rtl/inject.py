"""The Verifiable-RTL error-injection transform (paper section 4.1).

Designers make RTL *verifiable* by adding, per parity-protected entity,
one error-injection control bit (EC) and routing a shared error-injection
data bus (ED) into the entity's register:

.. code-block:: verilog

    always @(posedge CK or posedge RESET)
        if (RESET)               cs <= 4'b1_000;
        else if (I_ERR_INJ_C[0]) cs <= I_ERR_INJ_D;
        else                     cs <= ns;

:func:`make_verifiable` performs exactly this insertion mechanically on a
leaf module whose :class:`~repro.rtl.integrity.IntegritySpec` lists the
protected entities.  :func:`make_wrapper` builds the upper-layer module
that ties the injection ports to zero, as required for real silicon.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from .integrity import IntegritySpec
from .module import Module, RtlError
from .signals import Const, Expr, Input, Reg, mux, substitute

#: Canonical port names from Figure 6 of the paper.
EC_PORT = "I_ERR_INJ_C"
ED_PORT = "I_ERR_INJ_D"


def make_verifiable(module: Module, ec_port: str = EC_PORT,
                    ed_port: str = ED_PORT) -> Module:
    """Return a copy of leaf ``module`` with error injection inserted.

    Requirements implemented (paper section 4.1):

    - a *simple* injection method through primary input ports: one added
      mux in front of each protected entity's register;
    - *independent control per entity*: entity ``i`` is injected by EC
      bit ``ec_index`` alone, all entities share the ED data bus.

    The input module must be a leaf, must carry an
    :class:`IntegritySpec` with at least one entity, and must not already
    have the injection ports.
    """
    spec = module.integrity
    if spec is None or not isinstance(spec, IntegritySpec):
        raise RtlError(f"module {module.name!r} has no integrity spec")
    if not module.is_leaf():
        raise RtlError("error injection is inserted at leaf modules only")
    if not spec.entities:
        raise RtlError(f"module {module.name!r} has no protected entities")
    if ec_port in module.inputs or ed_port in module.inputs:
        raise RtlError(f"module {module.name!r} already has injection ports")

    clone, mapping = clone_leaf(module)

    ec_width = max(ent.ec_index for ent in spec.entities) + 1
    ed_width = max(_reg_by_name(clone, ent.reg_name).width
                   for ent in spec.entities)
    ec = clone.input(ec_port, ec_width)
    ed = clone.input(ed_port, ed_width)

    for ent in spec.entities:
        reg = _reg_by_name(clone, ent.reg_name)
        injected = ed[0:reg.width]
        reg.next = mux(ec[ent.ec_index], injected, reg.next)

    clone.integrity = IntegritySpec(
        protected_inputs=list(spec.protected_inputs),
        protected_outputs=list(spec.protected_outputs),
        entities=list(spec.entities),
        ec_port=ec_port,
        ed_port=ed_port,
        he_signals=list(spec.he_signals),
        extra_properties=list(spec.extra_properties),
        env_assumptions=list(spec.env_assumptions),
        free_inputs=list(spec.free_inputs),
        p0_overrides=dict(spec.p0_overrides),
    )
    clone.attrs = dict(module.attrs)
    clone.attrs["verifiable"] = True
    return clone


def make_wrapper(verifiable: Module, wrapper_name: Optional[str] = None,
                 inst_name: Optional[str] = None) -> Module:
    """Build the upper-layer wrapper that ties EC/ED to zero.

    All non-injection inputs pass through; all outputs are re-exported.
    This is the module shipped to silicon (Figure 6, ``module A``).
    """
    spec = verifiable.integrity
    if spec is None or spec.ec_port is None:
        raise RtlError(f"module {verifiable.name!r} is not verifiable")
    wrapper = Module(wrapper_name or f"{verifiable.name}_wrap")
    bindings: Dict[str, Expr] = {}
    for name, port in verifiable.inputs.items():
        if name in (spec.ec_port, spec.ed_port):
            bindings[name] = Const(0, port.width)
        else:
            bindings[name] = wrapper.input(name, port.width)
    inst = wrapper.instantiate(verifiable, inst_name or verifiable.name.lower(),
                               **bindings)
    for name in verifiable.outputs:
        wrapper.output(name, inst[name])
    return wrapper


def clone_leaf(module: Module) -> "tuple[Module, Dict[Expr, Expr]]":
    """Deep-copy a leaf module (and return the old→new expression
    mapping) so structural transforms never mutate their input.

    Shared by this module's injection transform and the scenario
    layer's defect-seeding transforms (:mod:`repro.scenario.mutate`),
    which clone a base module and then patch one register or output.
    """
    clone = Module(module.name)
    mapping: Dict[Expr, Expr] = {}
    for name, port in module.inputs.items():
        mapping[port] = clone.input(name, port.width)
    for reg in module.regs:
        mapping[reg] = clone.reg(reg.name, reg.width, reg.reset)
    memo: Dict[int, Expr] = {}
    for reg, fresh in zip(module.regs, clone.regs):
        fresh.next = substitute(reg.next, mapping, memo)
    for name, expr in module.outputs.items():
        clone.output(name, substitute(expr, mapping, memo))
    clone.integrity = module.integrity
    clone.attrs = dict(module.attrs)
    return clone, mapping


#: backwards-compatible alias (pre-scenario callers)
_clone_leaf = clone_leaf


def _reg_by_name(module: Module, name: str) -> Reg:
    for reg in module.regs:
        if reg.name == name:
            return reg
    raise RtlError(f"module {module.name!r}: no register named {name!r}")
