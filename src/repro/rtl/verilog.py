"""Verilog emitter.

Renders the module IR as synthesizable Verilog-2001.  Used to reproduce
Figure 6 of the paper (Verifiable RTL with tied-off injection ports in
the wrapper) and to make the synthetic chip inspectable with standard
tooling.  The emitter is one-way; nothing in this repository parses
Verilog back.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .module import Instance, Module, iter_modules
from .signals import Const, Expr, Input, InstPort, Op, Reg


def emit_module(module: Module) -> str:
    """Emit a single module definition."""
    return _ModuleEmitter(module).emit()


def emit_hierarchy(top: Module) -> str:
    """Emit ``top`` and every distinct module below it, leaves first."""
    return "\n\n".join(emit_module(m) for m in iter_modules(top))


class _ModuleEmitter:
    def __init__(self, module: Module) -> None:
        self.module = module
        self._names: Dict[int, str] = {}
        self._wire_decls: List[str] = []
        self._assigns: List[str] = []
        self._tmp_count = 0

    def emit(self) -> str:
        m = self.module
        ports = ["CK", "RESET"] + list(m.inputs) + list(m.outputs)
        lines = [f"module {m.name} ("]
        lines.append("    " + ",\n    ".join(ports))
        lines.append(");")
        lines.append("  input CK;")
        lines.append("  input RESET;")
        for name, port in m.inputs.items():
            lines.append(f"  input {_range(port.width)}{name};")
        for name, expr in m.outputs.items():
            lines.append(f"  output {_range(expr.width)}{name};")
        lines.append("")

        for port in m.inputs.values():
            self._names[id(port)] = port.name
        for reg in m.regs:
            self._names[id(reg)] = reg.name

        inst_lines = self._emit_instances()

        reg_lines: List[str] = []
        for reg in m.regs:
            next_name = self._name_for(reg.next)
            reg_lines.append(f"  reg  {_range(reg.width)}{reg.name};")
            reg_lines.append("  always @(posedge CK or posedge RESET)")
            reg_lines.append(f"    if (RESET) {reg.name} <= "
                             f"{_literal(reg.reset, reg.width)};")
            reg_lines.append(f"    else       {reg.name} <= {next_name};")
            reg_lines.append("")

        out_lines: List[str] = []
        for name, expr in m.outputs.items():
            out_lines.append(f"  assign {name} = {self._name_for(expr)};")

        lines.extend(self._wire_decls)
        if self._wire_decls:
            lines.append("")
        lines.extend(inst_lines)
        lines.extend(self._assigns)
        if self._assigns:
            lines.append("")
        lines.extend(reg_lines)
        lines.extend(out_lines)
        lines.append("endmodule")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _emit_instances(self) -> List[str]:
        lines: List[str] = []
        for inst in self.module.instances:
            for port_name in inst.module.outputs:
                wire = f"{inst.name}__{port_name}"
                width = inst.module.outputs[port_name].width
                self._wire_decls.append(f"  wire {_range(width)}{wire};")
                self._names[id(inst[port_name])] = wire
            conns = [".CK(CK)", ".RESET(RESET)"]
            for port_name in inst.module.inputs:
                bound = inst.bindings[port_name]
                conns.append(f".{port_name}({self._name_for(bound)})")
            for port_name in inst.module.outputs:
                conns.append(f".{port_name}({inst.name}__{port_name})")
            lines.append(f"  {inst.module.name} {inst.name} (")
            lines.append("    " + ",\n    ".join(conns))
            lines.append("  );")
            lines.append("")
        return lines

    # ------------------------------------------------------------------
    def _name_for(self, expr: Expr) -> str:
        """Render an expression, emitting named temporaries for shared
        interior nodes."""
        if id(expr) in self._names:
            return self._names[id(expr)]
        if isinstance(expr, Const):
            return _literal(expr.value, expr.width)
        if isinstance(expr, InstPort):
            raise KeyError(
                f"instance output {expr.port!r} read before its instance "
                f"was emitted"
            )
        assert isinstance(expr, Op)
        rendered = self._render_op(expr)
        self._tmp_count += 1
        wire = f"t{self._tmp_count}"
        self._names[id(expr)] = wire
        self._wire_decls.append(f"  wire {_range(expr.width)}{wire};")
        self._assigns.append(f"  assign {wire} = {rendered};")
        return wire

    def _render_op(self, op: Op) -> str:
        args = [self._name_for(operand) for operand in op.operands]
        kind = op.kind
        if kind == "NOT":
            return f"~{args[0]}"
        if kind == "AND":
            return f"{args[0]} & {args[1]}"
        if kind == "OR":
            return f"{args[0]} | {args[1]}"
        if kind == "XOR":
            return f"{args[0]} ^ {args[1]}"
        if kind == "ADD":
            return f"{args[0]} + {args[1]}"
        if kind == "SUB":
            return f"{args[0]} - {args[1]}"
        if kind == "EQ":
            return f"{args[0]} == {args[1]}"
        if kind == "LT":
            return f"{args[0]} < {args[1]}"
        if kind == "MUX":
            return f"{args[0]} ? {args[1]} : {args[2]}"
        if kind == "CONCAT":
            return "{" + ", ".join(args) + "}"
        if kind == "SLICE":
            lo = op.param
            hi = lo + op.width - 1
            if op.operands[0].width == 1 and lo == 0:
                return args[0]
            if hi == lo:
                return f"{args[0]}[{lo}]"
            return f"{args[0]}[{hi}:{lo}]"
        if kind == "REDXOR":
            return f"^{args[0]}"
        if kind == "REDOR":
            return f"|{args[0]}"
        if kind == "REDAND":
            return f"&{args[0]}"
        raise AssertionError(f"unhandled op kind {kind}")


def _range(width: int) -> str:
    return "" if width == 1 else f"[{width - 1}:0] "


def _literal(value: int, width: int) -> str:
    return f"{width}'b{value:0{width}b}"
