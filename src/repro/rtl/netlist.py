"""Bit-level netlist: an And-Inverter Graph (AIG) with latches.

The AIG is the exchange format between the RTL substrate and the formal
engines: SAT-based model checking Tseitin-encodes it, and the BDD engines
build node functions over it.  Literals follow the AIGER convention:

- literal ``0`` is constant false, ``1`` constant true;
- node ``i`` has positive literal ``2 i`` and negative ``2 i + 1``;
- AND nodes are structurally hashed and constant-propagated on the fly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .elaborate import FlatDesign
from .signals import Const, Expr, Input, Op, Reg, mask

FALSE = 0
TRUE = 1


class Aig:
    """And-Inverter Graph with latches (sequential AIG)."""

    def __init__(self) -> None:
        # _kind[i]: 'const' | 'input' | 'latch' | 'and'
        self._kind: List[str] = ["const"]
        self._fanin: List[Optional[Tuple[int, int]]] = [None]
        self._name: List[Optional[str]] = [None]
        self.inputs: List[int] = []          # positive literals
        self.latches: List[int] = []         # positive literals
        self.latch_next: Dict[int, int] = {}  # latch lit -> next-state lit
        self.latch_init: Dict[int, int] = {}  # latch lit -> 0/1
        self._strash: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> int:
        lit = self._new_node("input", None, name)
        self.inputs.append(lit)
        return lit

    def add_latch(self, name: str, init: int = 0) -> int:
        lit = self._new_node("latch", None, name)
        self.latches.append(lit)
        self.latch_init[lit] = init & 1
        return lit

    def set_latch_next(self, latch_lit: int, next_lit: int) -> None:
        if latch_lit not in self.latch_init:
            raise ValueError(f"literal {latch_lit} is not a latch")
        self.latch_next[latch_lit] = next_lit

    def _new_node(self, kind: str, fanin, name: Optional[str]) -> int:
        index = len(self._kind)
        self._kind.append(kind)
        self._fanin.append(fanin)
        self._name.append(name)
        return index << 1

    # ------------------------------------------------------------------
    # logic operators (literal level)
    # ------------------------------------------------------------------
    @staticmethod
    def neg(lit: int) -> int:
        return lit ^ 1

    def and2(self, a: int, b: int) -> int:
        if a == FALSE or b == FALSE or a == self.neg(b):
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE or a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        found = self._strash.get(key)
        if found is not None:
            return found
        lit = self._new_node("and", key, None)
        self._strash[key] = lit
        return lit

    def or2(self, a: int, b: int) -> int:
        return self.neg(self.and2(self.neg(a), self.neg(b)))

    def xor2(self, a: int, b: int) -> int:
        return self.or2(self.and2(a, self.neg(b)), self.and2(self.neg(a), b))

    def xnor2(self, a: int, b: int) -> int:
        return self.neg(self.xor2(a, b))

    def mux(self, sel: int, if_true: int, if_false: int) -> int:
        return self.or2(self.and2(sel, if_true),
                        self.and2(self.neg(sel), if_false))

    def and_many(self, lits: Iterable[int]) -> int:
        acc = TRUE
        for lit in lits:
            acc = self.and2(acc, lit)
        return acc

    def or_many(self, lits: Iterable[int]) -> int:
        acc = FALSE
        for lit in lits:
            acc = self.or2(acc, lit)
        return acc

    def xor_many(self, lits: Iterable[int]) -> int:
        acc = FALSE
        for lit in lits:
            acc = self.xor2(acc, lit)
        return acc

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def kind(self, lit: int) -> str:
        return self._kind[lit >> 1]

    def fanin(self, lit: int) -> Tuple[int, int]:
        pair = self._fanin[lit >> 1]
        if pair is None:
            raise ValueError(f"literal {lit} has no fanin")
        return pair

    def name_of(self, lit: int) -> Optional[str]:
        return self._name[lit >> 1]

    def num_nodes(self) -> int:
        return len(self._kind)

    def num_ands(self) -> int:
        return sum(1 for k in self._kind if k == "and")

    def cone_nodes(self, roots: Sequence[int]) -> List[int]:
        """Indices of all nodes in the transitive fanin of ``roots``,
        in topological (fanin-first) order."""
        seen = set()
        order: List[int] = []
        stack = [(lit >> 1, False) for lit in roots]
        while stack:
            index, expanded = stack.pop()
            if expanded:
                order.append(index)
                continue
            if index in seen:
                continue
            seen.add(index)
            stack.append((index, True))
            if self._kind[index] == "and":
                a, b = self._fanin[index]
                stack.append((a >> 1, False))
                stack.append((b >> 1, False))
        return order

    def support(self, roots: Sequence[int]) -> Tuple[List[int], List[int]]:
        """(input literals, latch literals) in the combinational cone of
        ``roots`` — cone-of-influence at the combinational level."""
        ins: List[int] = []
        lats: List[int] = []
        for index in self.cone_nodes(roots):
            kind = self._kind[index]
            if kind == "input":
                ins.append(index << 1)
            elif kind == "latch":
                lats.append(index << 1)
        return ins, lats

    # ------------------------------------------------------------------
    # evaluation (used for simulator cross-checks and trace replay)
    # ------------------------------------------------------------------
    def evaluate(self, roots: Sequence[int], values: Dict[int, int]) -> List[int]:
        """Evaluate root literals given input/latch values keyed by
        positive literal."""
        val: Dict[int, int] = {0: 0}
        for lit, v in values.items():
            val[lit >> 1] = v & 1
        for index in self.cone_nodes(roots):
            if index in val:
                continue
            kind = self._kind[index]
            if kind == "and":
                a, b = self._fanin[index]
                va = val[a >> 1] ^ (a & 1)
                vb = val[b >> 1] ^ (b & 1)
                val[index] = va & vb
            elif kind in ("input", "latch"):
                raise KeyError(
                    f"no value for {kind} literal {index << 1} "
                    f"({self._name[index]!r})"
                )
        return [val[lit >> 1] ^ (lit & 1) for lit in roots]


class BitBlaster:
    """Lowers a :class:`FlatDesign` to an :class:`Aig`.

    Keeps a word-to-bit mapping: each design input, register and output
    maps to a list of AIG literals, LSB first.
    """

    def __init__(self, design: FlatDesign) -> None:
        self.design = design
        self.aig = Aig()
        self.input_bits: Dict[str, List[int]] = {}
        self.reg_bits: Dict[str, List[int]] = {}
        self.output_bits: Dict[str, List[int]] = {}
        self._memo: Dict[int, List[int]] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        aig = self.aig
        for name, port in self.design.inputs.items():
            bits = [aig.add_input(f"{name}[{i}]") for i in range(port.width)]
            self.input_bits[name] = bits
            self._memo[id(port)] = bits
        for reg in self.design.regs:
            bits = [
                aig.add_latch(f"{reg.name}[{i}]", (reg.reset >> i) & 1)
                for i in range(reg.width)
            ]
            self.reg_bits[reg.name] = bits
            self._memo[id(reg)] = bits
        for reg in self.design.regs:
            next_bits = self.blast(reg.next)
            for latch_lit, next_lit in zip(self.reg_bits[reg.name], next_bits):
                aig.set_latch_next(latch_lit, next_lit)
        for name, expr in self.design.outputs.items():
            self.output_bits[name] = self.blast(expr)

    # ------------------------------------------------------------------
    def blast(self, expr: Expr) -> List[int]:
        """Literals (LSB first) computing ``expr``."""
        stack: List[Expr] = [expr]
        memo = self._memo
        while stack:
            node = stack[-1]
            if id(node) in memo:
                stack.pop()
                continue
            if isinstance(node, Const):
                memo[id(node)] = [
                    TRUE if (node.value >> i) & 1 else FALSE
                    for i in range(node.width)
                ]
                stack.pop()
                continue
            if isinstance(node, (Input, Reg)):
                raise KeyError(
                    f"leaf {node!r} does not belong to design "
                    f"{self.design.name!r}"
                )
            assert isinstance(node, Op), f"unexpected node {node!r}"
            pending = [op for op in node.operands if id(op) not in memo]
            if pending:
                stack.extend(pending)
                continue
            operands = [memo[id(op)] for op in node.operands]
            memo[id(node)] = self._blast_op(node, operands)
            stack.pop()
        return memo[id(expr)]

    def _blast_op(self, node: Op, ops: List[List[int]]) -> List[int]:
        aig = self.aig
        kind = node.kind
        if kind == "NOT":
            return [aig.neg(b) for b in ops[0]]
        if kind == "AND":
            return [aig.and2(a, b) for a, b in zip(ops[0], ops[1])]
        if kind == "OR":
            return [aig.or2(a, b) for a, b in zip(ops[0], ops[1])]
        if kind == "XOR":
            return [aig.xor2(a, b) for a, b in zip(ops[0], ops[1])]
        if kind == "ADD":
            return self._adder(ops[0], ops[1], carry_in=FALSE)
        if kind == "SUB":
            return self._adder(ops[0], [aig.neg(b) for b in ops[1]],
                               carry_in=TRUE)
        if kind == "EQ":
            return [aig.and_many(aig.xnor2(a, b)
                                 for a, b in zip(ops[0], ops[1]))]
        if kind == "LT":
            return [self._less_than(ops[0], ops[1])]
        if kind == "MUX":
            sel = ops[0][0]
            return [aig.mux(sel, t, f) for t, f in zip(ops[1], ops[2])]
        if kind == "CONCAT":
            bits: List[int] = []
            # CONCAT lists MSB part first; LSB-first bit order means the
            # last operand contributes the lowest bits.
            for part in reversed(ops):
                bits.extend(part)
            return bits
        if kind == "SLICE":
            lo = node.param
            return ops[0][lo:lo + node.width]
        if kind == "REDXOR":
            return [aig.xor_many(ops[0])]
        if kind == "REDOR":
            return [aig.or_many(ops[0])]
        if kind == "REDAND":
            return [aig.and_many(ops[0])]
        raise AssertionError(f"unhandled op kind {kind}")

    def _adder(self, a: List[int], b: List[int], carry_in: int) -> List[int]:
        aig = self.aig
        carry = carry_in
        out: List[int] = []
        for bit_a, bit_b in zip(a, b):
            axb = aig.xor2(bit_a, bit_b)
            out.append(aig.xor2(axb, carry))
            carry = aig.or2(aig.and2(bit_a, bit_b), aig.and2(axb, carry))
        return out

    def _less_than(self, a: List[int], b: List[int]) -> int:
        aig = self.aig
        lt = FALSE
        for bit_a, bit_b in zip(a, b):  # LSB to MSB
            eq = aig.xnor2(bit_a, bit_b)
            lt_here = aig.and2(aig.neg(bit_a), bit_b)
            lt = aig.or2(lt_here, aig.and2(eq, lt))
        return lt

    # ------------------------------------------------------------------
    def bits_of(self, name: str) -> List[int]:
        """Literals of a named design signal (input, register, output)."""
        if name in self.input_bits:
            return self.input_bits[name]
        if name in self.reg_bits:
            return self.reg_bits[name]
        if name in self.output_bits:
            return self.output_bits[name]
        raise KeyError(f"no blasted signal named {name!r}")


def bitblast(design: FlatDesign) -> BitBlaster:
    """Convenience wrapper: lower a flat design to an AIG."""
    return BitBlaster(design)
