"""Odd-parity protection primitives.

The target chip protects every data path, register, FSM and counter with
odd parity: a protected ``w``-bit word consists of ``w - 1`` data bits
plus one parity bit chosen so the whole word always carries an odd
number of ones.  The PSL boolean-layer check ``^WORD`` (XOR reduction)
is then 1 exactly when integrity holds.
"""

from __future__ import annotations

from .signals import Expr, cat


def parity_ok(word: Expr, lsb: int = 0, width: int = None) -> Expr:
    """1-bit check that an odd-parity word holds integrity.

    Equivalent to the paper's PSL ``^WORD`` boolean expression.
    """
    if width is not None or lsb:
        hi = (lsb + width) if width is not None else word.width
        word = word[lsb:hi]
    return word.reduce_xor()


def odd_parity_bit(data: Expr) -> Expr:
    """Parity bit making ``{parity, data}`` an odd-parity word."""
    return ~data.reduce_xor()


def protect(data: Expr) -> Expr:
    """Append an odd-parity bit as the MSB: returns ``{parity, data}``."""
    return cat(odd_parity_bit(data), data)


def data_bits(word: Expr) -> Expr:
    """Strip the MSB parity bit off a protected word."""
    return word[0:word.width - 1]


def parity_bit(word: Expr) -> Expr:
    """The MSB parity bit of a protected word."""
    return word[word.width - 1]


def encode_value(data_value: int, data_width: int) -> int:
    """Encode an integer into an odd-parity word (parity in the MSB).

    The Python-side mirror of :func:`protect`, used by testbenches and
    stimulus generators.
    """
    ones = bin(data_value & ((1 << data_width) - 1)).count("1")
    parity = (ones & 1) ^ 1
    return (parity << data_width) | (data_value & ((1 << data_width) - 1))


def value_ok(word_value: int) -> bool:
    """Python-side odd-parity integrity check of an encoded word."""
    return (bin(word_value).count("1") & 1) == 1


def corrupt(word_value: int, bit: int) -> int:
    """Flip one bit of an encoded word, breaking its parity."""
    return word_value ^ (1 << bit)
