"""Verifiable-RTL lint.

Checks that a leaf module satisfies the Verifiable RTL requirements the
logic designers commit to in the paper's flow (section 4.1):

- **VR1** — a simple error-injection method exists through primary input
  ports (EC/ED are inputs, ED is wide enough for every entity);
- **VR2** — injection is controlled independently per entity (one unique
  EC bit each), and the EC bit actually steers the entity register to ED
  (structural mux pattern in front of the register);
- **VR3** — the wrapper module ties the injection ports to zero, because
  they are unused in real silicon;
- **VR4** — the released integrity specification is consistent with the
  module's ports and registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .integrity import IntegritySpec
from .module import Module
from .signals import Const, Expr, Op, Reg, walk

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class LintIssue:
    """One lint finding."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.severity}: {self.message}"


def lint_verifiable(module: Module) -> List[LintIssue]:
    """Lint one leaf module against VR1/VR2/VR4."""
    issues: List[LintIssue] = []
    spec = module.integrity
    if spec is None:
        issues.append(LintIssue(ERROR, "VR4", f"module {module.name!r} "
                                              "released without an integrity spec"))
        return issues

    for problem in spec.validate_against(module):
        issues.append(LintIssue(ERROR, "VR4", f"{module.name}: {problem}"))

    if not spec.entities:
        return issues

    if spec.ec_port is None or spec.ed_port is None:
        issues.append(LintIssue(
            ERROR, "VR1",
            f"{module.name}: protected entities without EC/ED injection ports"
        ))
        return issues

    ec = module.inputs.get(spec.ec_port)
    ed = module.inputs.get(spec.ed_port)
    if ec is None or ed is None:
        return issues  # VR4 already reported the missing ports

    seen_indices = set()
    for ent in spec.entities:
        if ent.ec_index in seen_indices:
            issues.append(LintIssue(
                ERROR, "VR2",
                f"{module.name}: EC bit {ent.ec_index} controls more than "
                f"one entity — injection must be independent per entity"
            ))
        seen_indices.add(ent.ec_index)

        reg = next((r for r in module.regs if r.name == ent.reg_name), None)
        if reg is None:
            continue
        if not _has_injection_mux(reg, ec, ed, ent.ec_index):
            issues.append(LintIssue(
                ERROR, "VR2",
                f"{module.name}: entity {ent.name!r} register "
                f"{ent.reg_name!r} is not steered by EC[{ent.ec_index}]"
            ))
    return issues


def lint_wrapper(wrapper: Module, ec_port: str = "I_ERR_INJ_C",
                 ed_port: str = "I_ERR_INJ_D") -> List[LintIssue]:
    """Lint a wrapper module against VR3 (injection ports tied to zero)."""
    issues: List[LintIssue] = []
    for inst in wrapper.instances:
        for port in (ec_port, ed_port):
            if port not in inst.module.inputs:
                continue
            bound = inst.bindings.get(port)
            if not (isinstance(bound, Const) and bound.value == 0):
                issues.append(LintIssue(
                    ERROR, "VR3",
                    f"{wrapper.name}: instance {inst.name!r} does not tie "
                    f"{port} to zero"
                ))
    return issues


def _has_injection_mux(reg: Reg, ec: Expr, ed: Expr, ec_index: int) -> bool:
    """Look for ``mux(EC[i], ED[...], _)`` anywhere in the register's
    next-state cone."""
    for node in walk([reg.next]):
        if not (isinstance(node, Op) and node.kind == "MUX"):
            continue
        sel, if_true, _ = node.operands
        if _is_bit_of(sel, ec, ec_index) and _reads_only(if_true, ed):
            return True
    return False


def _is_bit_of(expr: Expr, port: Expr, index: int) -> bool:
    if expr is port and port.width == 1 and index == 0:
        return True
    return (
        isinstance(expr, Op)
        and expr.kind == "SLICE"
        and expr.operands[0] is port
        and expr.width == 1
        and expr.param == index
    )


def _reads_only(expr: Expr, port: Expr) -> bool:
    """True when the expression's only leaf is ``port`` (possibly
    sliced)."""
    saw_port = False
    for node in walk([expr]):
        if node is port:
            saw_port = True
        elif not isinstance(node, (Op, Const)):
            return False
    return saw_port
