"""Declarative campaign configuration — one serializable object.

A :class:`CampaignConfig` captures *everything* that parameterises a
formal campaign — engine portfolio, executor, scheduling and portfolio
policies, result cache, checkpoint journal, shared-BDD workspace
valves, resource budgets, scope — as plain frozen data.  That buys the
methodology its missing property: a campaign's full configuration is

- **serializable** — ``to_dict()`` / ``from_dict()`` round-trip through
  plain JSON-able dicts, and ``to_toml()`` / ``CampaignConfig.load()``
  through a TOML file, so one ``campaign.toml`` reproduces the whole
  run (``python -m repro campaign run --config campaign.toml``);
- **diffable** — two configs differ exactly where their TOML differs;
- **fingerprinted** — :meth:`digest` hashes the canonical dict, is
  stable under key order, and is stamped into
  ``CampaignReport.stats["config_digest"]`` so every report names the
  configuration that produced it.

Compact string specs stand in for object graphs:

- ``executor = "workstealing:4"`` — ``serial``, ``parallel[:N]``,
  ``workstealing[:N]`` (``work-stealing`` accepted too), or
  ``fleet[:N]`` (the socket-fanout coordinator of
  :mod:`repro.orchestrate.fleet`, tuned by the ``[fleet]`` section);
  ``N`` is the worker count, defaulting to the machine's CPU count;
- ``engines = "portfolio:kind,bdd-combined,pobdd"`` — a single engine
  name runs one stage; ``portfolio:`` prefixes a comma-separated stage
  ladder; bare ``portfolio`` is the default ladder
  (:data:`~repro.orchestrate.job.DEFAULT_PORTFOLIO_METHODS`).

Malformed specs raise :class:`ConfigError` naming the offending value
and the accepted grammar.  ``CampaignOrchestrator`` and the
``FormalCampaign`` façade both build their components from a config
(``CampaignOrchestrator(blocks, config=...)``); the legacy per-component
kwargs are still accepted as overrides and map onto the config
defaults (see :mod:`repro.orchestrate.orchestrator`).

The default config **is** the default campaign: the classic budgets,
serial executor, no cache, no checkpoint — with two deliberate changes
of default:

- ``engines = "portfolio:kind,bdd-combined"`` — campaigns now run an
  explicit two-stage portfolio instead of the single ``auto`` engine.
  The ladder is algorithmically identical to ``auto``'s internal
  induction-then-BDD fallback, but at the portfolio layer it gains the
  attempt log, the adaptive-policy slot, and portfolio-invariant
  report canonicalization.  The engine spec participates in job
  fingerprints, so the flip invalidates result caches written under
  the old default — ``engines = "auto"`` is the one-line opt-out (see
  ``docs/configuration.md``);
- ``share_bdd = true`` — shared per-module BDD workspaces are
  outcome-invariant while no node budget binds (the default regime)
  and measurably cheaper; ``share_bdd = false`` is the escape hatch
  where strict run-to-run byte-equality under *binding* node budgets
  matters more than throughput.

``[sat]`` exposes the shared incremental SAT workspace
(:class:`~repro.formal.satspace.SatWorkspace`): ``workspace`` on/off,
``cluster_limit`` (assertions per shared CNF cluster),
``max_sessions`` / ``max_session_clauses`` memory valves.  On by
default for the same reason as ``share_bdd``: verdicts, depths, and
counterexample bytes are sharing-invariant (binding ``sat_conflicts``
budgets are the documented exception), and warm sessions are
measurably cheaper on SAT-heavy ladders.

``[compile]`` exposes the content-addressed
:class:`~repro.formal.problems.CompiledProblemStore` every compile
path runs through (``store`` on/off, ``max_designs`` /
``max_problems`` LRU bounds).  Like the workspace valves, the compile
knobs are runtime wiring: they participate in the *config* digest (the
report names the configuration that produced it) but never in job
fingerprints — a store changes the cost of a check, not its verdict,
so warmed and cold runs replay each other's cached results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from ..formal.engine import registered_engines
from .job import DEFAULT_PORTFOLIO_METHODS, EngineConfig
from .policy import (
    PORTFOLIO_POLICIES, SCHEDULING_POLICIES, portfolio_policy,
    scheduling_policy,
)


class ConfigError(ValueError):
    """A malformed campaign configuration (bad spec, unknown key,
    wrong type).  Subclasses ``ValueError`` so ad-hoc callers can catch
    broadly; the message always names the offending value."""


#: executor spec aliases -> canonical kind
_EXECUTOR_KINDS = {
    "serial": "serial",
    "parallel": "parallel",
    "workstealing": "work-stealing",
    "work-stealing": "work-stealing",
    "fleet": "fleet",
}


def parse_executor_spec(spec: str) -> Tuple[str, Optional[int]]:
    """Parse an executor spec into ``(kind, processes)``.

    Grammar: ``serial`` | ``parallel[:N]`` | ``workstealing[:N]`` |
    ``fleet[:N]`` (``work-stealing`` is accepted as an alias).  ``N``
    is the worker count — processes for the pools, fleet workers for
    the socket executor — and must be a positive integer; ``serial``
    takes no argument.
    """
    if not isinstance(spec, str):
        raise ConfigError(f"executor spec must be a string, got {spec!r}")
    kind_text, sep, arg = spec.partition(":")
    kind = _EXECUTOR_KINDS.get(kind_text.strip())
    if kind is None:
        raise ConfigError(
            f"unknown executor {kind_text.strip()!r} in spec {spec!r}; "
            f"expected serial, parallel[:N], workstealing[:N], or "
            f"fleet[:N]"
        )
    if not sep:
        return kind, None
    if kind == "serial":
        raise ConfigError(
            f"executor spec {spec!r}: serial takes no worker count"
        )
    try:
        processes = int(arg)
    except ValueError:
        processes = 0
    if processes < 1:
        raise ConfigError(
            f"executor spec {spec!r}: worker count must be a positive "
            f"integer, got {arg!r}"
        )
    return kind, processes


def parse_engines_spec(spec: str) -> Tuple[str, ...]:
    """Parse an engines spec into the ordered stage-method tuple.

    Grammar: ``<engine>`` (single stage) | ``portfolio`` (the default
    ladder) | ``portfolio:m1,m2,...`` (explicit ladder).  Every method
    must be a registered engine; duplicates are rejected.
    """
    if not isinstance(spec, str):
        raise ConfigError(f"engines spec must be a string, got {spec!r}")
    text = spec.strip()
    if text == "portfolio":
        return DEFAULT_PORTFOLIO_METHODS
    if text.startswith("portfolio:"):
        methods = tuple(
            method.strip()
            for method in text[len("portfolio:"):].split(",")
            if method.strip()
        )
        if not methods:
            raise ConfigError(
                f"engines spec {spec!r}: portfolio needs at least one "
                f"stage, e.g. portfolio:kind,bdd-combined"
            )
    else:
        methods = (text,)
    known = registered_engines()
    for method in methods:
        if method not in known:
            raise ConfigError(
                f"engines spec {spec!r}: unknown engine {method!r}; "
                f"registered engines are {known}"
            )
    if len(set(methods)) != len(methods):
        raise ConfigError(
            f"engines spec {spec!r}: duplicate stages"
        )
    return methods


#: (TOML section, key) -> dataclass field, in documentation order.
#: ``to_dict``/``from_dict``/``to_toml`` and the docs drift-checker in
#: ``tools/check_docs.py`` all derive from this one table.
CONFIG_SCHEMA: Dict[str, Dict[str, str]] = {
    "campaign": {
        "blocks": "blocks",
        "lint": "lint",
    },
    "engines": {
        "spec": "engines",
        "sat_conflicts": "sat_conflicts",
        "bdd_nodes": "bdd_nodes",
        "max_bound": "max_bound",
        "max_k": "max_k",
        "unique_states": "unique_states",
        "num_window_vars": "num_window_vars",
    },
    "execution": {
        "executor": "executor",
        "scheduling": "scheduling",
        "portfolio": "portfolio",
        "share_bdd": "share_bdd",
    },
    "fleet": {
        "port": "fleet_port",
        "lease_timeout": "fleet_lease_timeout",
        "heartbeat_interval": "fleet_heartbeat_interval",
        "launcher": "fleet_launcher",
    },
    "workspace": {
        "max_managers": "workspace_max_managers",
        "retain_memos": "workspace_retain_memos",
        "max_manager_nodes": "workspace_max_manager_nodes",
    },
    "sat": {
        "workspace": "sat_workspace",
        "cluster_limit": "sat_cluster_limit",
        "max_sessions": "sat_max_sessions",
        "max_session_clauses": "sat_max_session_clauses",
    },
    "compile": {
        "store": "compile_store",
        "max_designs": "compile_max_designs",
        "max_problems": "compile_max_problems",
    },
    "coi": {
        "fingerprints": "coi_fingerprints",
        "slice": "coi_slice",
    },
    "scenario": {
        "seed": "scenario_seed",
        "blocks": "scenario_blocks",
        "modules_per_block": "scenario_modules_per_block",
        "datapath_width": "scenario_datapath_width",
        "pipeline_depth": "scenario_pipeline_depth",
        "error_report_width": "scenario_error_report_width",
        "classes": "scenario_classes",
        "sites_per_module": "scenario_sites_per_module",
        "triage": "scenario_triage",
        "sim_cycles": "scenario_sim_cycles",
    },
    "service": {
        "host": "service_host",
        "port": "service_port",
        "db": "service_db",
        "data_dir": "service_data_dir",
    },
    "cache": {
        "path": "cache_path",
        "max_entries": "cache_max_entries",
    },
    "checkpoint": {
        "path": "checkpoint_path",
    },
}


@dataclass(frozen=True)
class CampaignConfig:
    """The full, serializable configuration of one formal campaign.

    Every field is plain data with a TOML slot (see
    :data:`CONFIG_SCHEMA` for the section/key layout); ``None`` means
    "absent" (unbounded budget, no cache, full chip...).  Instances are
    frozen — derive variants with :func:`dataclasses.replace`.
    """

    #: chip-block subset to campaign over (``None`` = every block);
    #: consumed by the CLI, carried (and digested) for everyone else
    blocks: Optional[Tuple[str, ...]] = None
    #: lint the Verifiable RTL while planning
    lint: bool = True

    #: engine spec — single engine or ``portfolio:...`` ladder.  The
    #: default portfolio mirrors ``auto``'s internal induction-then-BDD
    #: fallback as explicit stages; ``engines = "auto"`` opts back out
    #: (note: the spec is fingerprinted, so flipping it misses caches
    #: written under the other default)
    engines: str = "portfolio:kind,bdd-combined"
    #: per-stage SAT conflict budget (``None`` = unlimited)
    sat_conflicts: Optional[int] = 200_000
    #: per-stage BDD node budget (``None`` = unlimited)
    bdd_nodes: Optional[int] = 2_000_000
    #: BMC unroll bound
    max_bound: int = 60
    #: k-induction depth limit
    max_k: int = 40
    #: simple-path constraints for k-induction completeness
    unique_states: bool = True
    #: POBDD partitioning window variables
    num_window_vars: int = 2

    #: executor spec — ``serial`` | ``parallel[:N]`` | ``workstealing[:N]``
    executor: str = "serial"
    #: work-queue scheduling policy (``fifo`` | ``module-affinity``);
    #: consulted by the work-stealing executor, a no-op elsewhere
    scheduling: str = "fifo"
    #: portfolio attempt-order policy (``static`` | ``adaptive``)
    portfolio: str = "static"
    #: shared per-module BDD workspaces (the campaign default; set
    #: ``False`` where binding node budgets demand strict run-to-run
    #: byte-equality — see docs/configuration.md)
    share_bdd: bool = True

    #: ``[fleet]`` — the socket-fanout executor's transport knobs
    #: (consulted only when ``executor = "fleet[:N]"``; see
    #: :mod:`repro.orchestrate.fleet`)
    #: coordinator bind port (``0`` = ephemeral)
    fleet_port: int = 0
    #: seconds without a heartbeat/result before a worker's lease is
    #: revoked and re-issued
    fleet_lease_timeout: float = 30.0
    #: worker liveness cadence in seconds
    fleet_heartbeat_interval: float = 0.5
    #: worker launcher spec — ``local`` | ``ssh:host1,host2,...``
    fleet_launcher: str = "local"

    #: workspace valve: retained managers per worker (``None`` = all)
    workspace_max_managers: Optional[int] = 8
    #: workspace valve: keep operation memos between leases
    workspace_retain_memos: bool = True
    #: workspace valve: discard managers outgrowing this node count
    workspace_max_manager_nodes: Optional[int] = None

    #: shared incremental SAT workspaces (per worker): clustered
    #: per-(module, vunit) CNFs with learned-clause retention across
    #: assertions.  Verdict- and byte-invariant (failing traces are
    #: re-derived cold); like ``share_bdd``, the exception is a
    #: *binding* ``sat_conflicts`` budget, where retained clauses can
    #: shift the conflict count either way
    sat_workspace: bool = True
    #: assertions per shared CNF cluster (the paper's clustering ablation
    #: plateaus by 16; ``1`` degenerates to one session per assertion)
    sat_cluster_limit: int = 16
    #: SAT valve: live solver sessions retained per worker
    #: (``None`` = all)
    sat_max_sessions: Optional[int] = 8
    #: SAT valve: discard sessions whose clause DB outgrows this
    #: (``None`` = unlimited)
    sat_max_session_clauses: Optional[int] = None

    #: content-addressed compiled-problem store (per worker; off = every
    #: check recompiles its design and transition system cold)
    compile_store: bool = True
    #: compile-store valve: retained elaborated designs (``None`` = all)
    compile_max_designs: Optional[int] = 8
    #: compile-store valve: retained compiled problems (``None`` = all)
    compile_max_problems: Optional[int] = 64

    #: ``[coi]`` — cone-of-influence content addressing
    #: (:mod:`repro.formal.coi`).  Both default to ``None`` ("absent":
    #: legacy module-digest fingerprints, full-module compiles), so
    #: configs written before the section existed keep their digests.
    #: Unlike the ``[compile]`` knobs, ``fingerprints`` *does* change
    #: job fingerprints — "cone" keys each job by its assertion's cone
    #: digest, so caches written under one mode miss under the other
    #: job fingerprint scope: ``"module"`` (default) or ``"cone"``
    coi_fingerprints: Optional[str] = None
    #: compile each job's transition system from its cone slice
    coi_slice: Optional[bool] = None

    #: ``[scenario]`` — the chip-family / mutation-sweep knobs consumed
    #: by ``python -m repro scenario sweep`` and
    #: :func:`repro.scenario.sweep.sweep_from_config`.  All default to
    #: ``None`` ("absent": the scenario layer supplies its own
    #: defaults), so configs written before the section existed keep
    #: their digests.  The config layer validates only shape — defect
    #: *class names* are the scenario layer's vocabulary (this module
    #: never imports the chip layer)
    #: family RNG seed
    scenario_seed: Optional[int] = None
    #: generated blocks per family
    scenario_blocks: Optional[int] = None
    #: modules per generated block (one wide module + generic leaves)
    scenario_modules_per_block: Optional[int] = None
    #: datapath bits per wide-module pipeline stage
    scenario_datapath_width: Optional[int] = None
    #: wide-module pipeline depth
    scenario_pipeline_depth: Optional[int] = None
    #: HE report outputs cap for generated generic leaves
    scenario_error_report_width: Optional[int] = None
    #: defect classes to seed (``None`` = all)
    scenario_classes: Optional[Tuple[str, ...]] = None
    #: per-module cap on seeded defect sites (``None`` = every site)
    scenario_sites_per_module: Optional[int] = None
    #: run the sim-then-formal triage mode
    scenario_triage: Optional[bool] = None
    #: random-simulation budget per mutant in triage mode
    scenario_sim_cycles: Optional[int] = None

    #: ``[service]`` — the verification-as-a-service daemon's knobs
    #: (``python -m repro serve``; see :mod:`repro.service` and
    #: ``docs/service.md``).  All default to ``None`` ("absent": the
    #: service layer supplies its own defaults), so configs written
    #: before the section existed keep their digests
    #: daemon bind host (service default: 127.0.0.1)
    service_host: Optional[str] = None
    #: daemon bind port (service default: 8357; 0 = ephemeral)
    service_port: Optional[int] = None
    #: verdict-database path (service default: <data_dir>/verdicts.sqlite)
    service_db: Optional[str] = None
    #: served-campaign state directory — journals live here
    #: (service default: out/service)
    service_data_dir: Optional[str] = None

    #: result-cache path (``None`` = no cache)
    cache_path: Optional[str] = None
    #: result-cache LRU bound (``None`` = unbounded)
    cache_max_entries: Optional[int] = None

    #: checkpoint-journal path (``None`` = no checkpoint)
    checkpoint_path: Optional[str] = None

    #: optional-int knobs that accept the explicit string
    #: ``"unlimited"`` (TOML has no null); the subset whose *default*
    #: is bounded must also serialize ``None`` that way, or a
    #: round-trip would silently restore the bound
    _UNLIMITED_FIELDS = frozenset({
        "sat_conflicts", "bdd_nodes", "cache_max_entries",
        "workspace_max_managers", "workspace_max_manager_nodes",
        "compile_max_designs", "compile_max_problems",
        "sat_max_sessions", "sat_max_session_clauses",
    })
    _BOUNDED_BY_DEFAULT = frozenset({
        "sat_conflicts", "bdd_nodes", "workspace_max_managers",
        "compile_max_designs", "compile_max_problems",
        "sat_max_sessions",
    })

    def __post_init__(self) -> None:
        for name in self._UNLIMITED_FIELDS:
            if getattr(self, name) == "unlimited":
                object.__setattr__(self, name, None)
        if self.blocks is not None:
            if isinstance(self.blocks, str):
                # tuple("CE") would silently split into ('C', 'E')
                raise ConfigError(
                    f"blocks must be a list of block names, "
                    f"got the bare string {self.blocks!r}"
                )
            object.__setattr__(self, "blocks", tuple(self.blocks))
            for block in self.blocks:
                if not isinstance(block, str):
                    raise ConfigError(
                        f"blocks must be block-name strings, "
                        f"got {block!r}"
                    )
        parse_executor_spec(self.executor)
        parse_engines_spec(self.engines)
        if self.scheduling not in SCHEDULING_POLICIES:
            raise ConfigError(
                f"unknown scheduling policy {self.scheduling!r}; "
                f"pick one of {tuple(SCHEDULING_POLICIES)}"
            )
        if self.portfolio not in PORTFOLIO_POLICIES:
            raise ConfigError(
                f"unknown portfolio policy {self.portfolio!r}; "
                f"pick one of {tuple(PORTFOLIO_POLICIES)}"
            )
        for name in ("sat_conflicts", "bdd_nodes"):
            # 0 is legal: a budget that trips immediately (every stage
            # TIMEOUTs) — used to exercise exhaustion paths
            value = getattr(self, name)
            if value is not None and (not _is_int(value) or value < 0):
                raise ConfigError(
                    f"{name} must be a non-negative integer or absent, "
                    f"got {value!r}"
                )
        for name in ("cache_max_entries", "workspace_max_managers",
                     "workspace_max_manager_nodes",
                     "compile_max_designs", "compile_max_problems",
                     "sat_max_sessions", "sat_max_session_clauses"):
            value = getattr(self, name)
            if value is not None and (not _is_int(value) or value < 1):
                raise ConfigError(
                    f"{name} must be a positive integer or absent, "
                    f"got {value!r}"
                )
        for name in ("max_bound", "max_k", "num_window_vars",
                     "sat_cluster_limit"):
            if not _is_int(getattr(self, name)) \
                    or getattr(self, name) < 1:
                raise ConfigError(
                    f"{name} must be a positive integer, "
                    f"got {getattr(self, name)!r}"
                )
        for name in ("lint", "unique_states", "share_bdd",
                     "workspace_retain_memos", "compile_store",
                     "sat_workspace"):
            if not isinstance(getattr(self, name), bool):
                raise ConfigError(
                    f"{name} must be a boolean, "
                    f"got {getattr(self, name)!r}"
                )
        for name in ("cache_path", "checkpoint_path"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, str):
                raise ConfigError(
                    f"{name} must be a path string or absent, "
                    f"got {value!r}"
                )
        if not _is_int(self.fleet_port) \
                or not 0 <= self.fleet_port <= 65535:
            raise ConfigError(
                f"fleet_port must be an integer in 0..65535 "
                f"(0 = ephemeral), got {self.fleet_port!r}"
            )
        for name in ("fleet_lease_timeout", "fleet_heartbeat_interval"):
            value = getattr(self, name)
            if not _is_number(value) or value <= 0:
                raise ConfigError(
                    f"{name} must be a positive number of seconds, "
                    f"got {value!r}"
                )
        from .fleet import parse_launcher_spec
        try:
            parse_launcher_spec(self.fleet_launcher)
        except ValueError as exc:
            raise ConfigError(str(exc)) from None
        if self.coi_fingerprints is not None \
                and self.coi_fingerprints not in ("module", "cone"):
            raise ConfigError(
                f"coi_fingerprints must be \"module\" or \"cone\" "
                f"(or absent), got {self.coi_fingerprints!r}"
            )
        if self.coi_slice is not None \
                and not isinstance(self.coi_slice, bool):
            raise ConfigError(
                f"coi_slice must be a boolean or absent, "
                f"got {self.coi_slice!r}"
            )
        if self.scenario_seed is not None and (
                not _is_int(self.scenario_seed) or self.scenario_seed < 0):
            raise ConfigError(
                f"scenario_seed must be a non-negative integer or "
                f"absent, got {self.scenario_seed!r}"
            )
        for name in ("scenario_blocks", "scenario_modules_per_block",
                     "scenario_datapath_width", "scenario_pipeline_depth",
                     "scenario_error_report_width",
                     "scenario_sites_per_module", "scenario_sim_cycles"):
            value = getattr(self, name)
            if value is not None and (not _is_int(value) or value < 1):
                raise ConfigError(
                    f"{name} must be a positive integer or absent, "
                    f"got {value!r}"
                )
        if self.scenario_triage is not None \
                and not isinstance(self.scenario_triage, bool):
            raise ConfigError(
                f"scenario_triage must be a boolean or absent, "
                f"got {self.scenario_triage!r}"
            )
        for name in ("service_host", "service_db", "service_data_dir"):
            value = getattr(self, name)
            if value is not None and not (isinstance(value, str)
                                          and value):
                raise ConfigError(
                    f"{name} must be a non-empty string or absent, "
                    f"got {value!r}"
                )
        if self.service_port is not None and (
                not _is_int(self.service_port)
                or not 0 <= self.service_port <= 65535):
            raise ConfigError(
                f"service_port must be an integer in 0..65535 "
                f"(0 = ephemeral) or absent, got {self.service_port!r}"
            )
        if self.scenario_classes is not None:
            if isinstance(self.scenario_classes, str):
                # tuple("p1") would silently split into characters
                raise ConfigError(
                    f"scenario classes must be a list of defect-class "
                    f"names, got the bare string "
                    f"{self.scenario_classes!r}"
                )
            object.__setattr__(self, "scenario_classes",
                               tuple(self.scenario_classes))
            for cls_name in self.scenario_classes:
                if not isinstance(cls_name, str):
                    raise ConfigError(
                        f"scenario classes must be defect-class name "
                        f"strings, got {cls_name!r}"
                    )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Nested plain-data form (TOML layout): section -> key ->
        value.  ``None`` fields are omitted (TOML has no null) — except
        the budget/valve knobs whose *default* is bounded, where
        ``None`` means "explicitly unlimited" and is serialized as the
        string ``"unlimited"`` so the round-trip cannot silently
        restore the bound.  The inverse of :meth:`from_dict` —
        round-tripping is the identity."""
        data: Dict[str, Dict[str, object]] = {}
        for section, keys in CONFIG_SCHEMA.items():
            values = {}
            for key, field_name in keys.items():
                value = getattr(self, field_name)
                if value is None:
                    if field_name not in self._BOUNDED_BY_DEFAULT:
                        continue
                    value = "unlimited"
                values[key] = list(value) if isinstance(value, tuple) \
                    else value
            if values:
                data[section] = values
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignConfig":
        """Build a config from :meth:`to_dict`'s (or a parsed TOML
        file's) nested form.  Unknown sections or keys raise
        :class:`ConfigError` — a typo must not silently fall back to a
        default."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"config must be a table of sections, got {data!r}"
            )
        kwargs: Dict[str, object] = {}
        for section, values in data.items():
            keys = CONFIG_SCHEMA.get(section)
            if keys is None:
                raise ConfigError(
                    f"unknown config section [{section}]; expected "
                    f"{tuple(CONFIG_SCHEMA)}"
                )
            if not isinstance(values, dict):
                raise ConfigError(
                    f"config section [{section}] must be a table, "
                    f"got {values!r}"
                )
            for key, value in values.items():
                field_name = keys.get(key)
                if field_name is None:
                    raise ConfigError(
                        f"unknown key {key!r} in section [{section}]; "
                        f"expected one of {tuple(keys)}"
                    )
                kwargs[field_name] = value
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigError(str(exc)) from None

    def digest(self) -> str:
        """SHA-256 of the canonical serialized form — stable under dict
        key order and across to_dict/from_dict round-trips.  Stamped
        into ``CampaignReport.stats["config_digest"]``."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- TOML ----------------------------------------------------------
    def to_toml(self) -> str:
        """Serialize to TOML text (the ``--config`` file format)."""
        lines = []
        for section, values in self.to_dict().items():
            if lines:
                lines.append("")
            lines.append(f"[{section}]")
            for key, value in values.items():
                lines.append(f"{key} = {_toml_value(value)}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml(cls, text: str) -> "CampaignConfig":
        """Parse TOML text into a config (strict, like
        :meth:`from_dict`)."""
        import tomllib
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"invalid TOML: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "CampaignConfig":
        """Read a config from a TOML file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigError(f"cannot read config {path!r}: {exc}") \
                from None
        return cls.from_toml(text)

    # -- component builders --------------------------------------------
    def build_engines(self) -> Tuple[EngineConfig, ...]:
        """The engine portfolio this config describes — one
        :class:`EngineConfig` per stage, sharing the tuning knobs."""
        methods = parse_engines_spec(self.engines)
        return tuple(
            EngineConfig(
                method=method,
                max_bound=self.max_bound,
                max_k=self.max_k,
                unique_states=self.unique_states,
                num_window_vars=self.num_window_vars,
                sat_conflicts=self.sat_conflicts,
                bdd_nodes=self.bdd_nodes,
            )
            for method in methods
        )

    def workspace_options(self) -> Dict[str, object]:
        """Kwargs for the :class:`~repro.formal.workspace.BddWorkspace`
        constructor (the executor builds one per worker when
        ``share_bdd`` is on)."""
        return {
            "max_managers": self.workspace_max_managers,
            "retain_memos": self.workspace_retain_memos,
            "max_manager_nodes": self.workspace_max_manager_nodes,
        }

    def sat_workspace_options(self) -> Dict[str, object]:
        """Kwargs for the :class:`~repro.formal.satspace.SatWorkspace`
        constructor (the executor builds one per worker when
        ``sat_workspace`` is on)."""
        return {
            "cluster_limit": self.sat_cluster_limit,
            "max_sessions": self.sat_max_sessions,
            "max_session_clauses": self.sat_max_session_clauses,
        }

    def compile_store_options(self) -> Dict[str, object]:
        """Kwargs for the
        :class:`~repro.formal.problems.CompiledProblemStore`
        constructor (each executor worker builds one when
        ``compile_store`` is on)."""
        return {
            "max_designs": self.compile_max_designs,
            "max_problems": self.compile_max_problems,
        }

    def build_executor(self):
        """The executor this config describes, wired with the
        ``share_bdd`` setting, the workspace valves, the compile-store
        knobs, and (for the work-stealing executor) the scheduling
        policy."""
        from .executor import (
            ParallelExecutor, SerialExecutor, WorkStealingExecutor,
        )
        from .fleet import FleetExecutor
        kind, processes = parse_executor_spec(self.executor)
        options = self.workspace_options()
        store_options = self.compile_store_options()
        sat_options = self.sat_workspace_options()
        if kind == "serial":
            return SerialExecutor(share_bdd=self.share_bdd,
                                  workspace_options=options,
                                  compile_store=self.compile_store,
                                  store_options=store_options,
                                  share_sat=self.sat_workspace,
                                  sat_options=sat_options)
        if kind == "parallel":
            return ParallelExecutor(processes=processes,
                                    share_bdd=self.share_bdd,
                                    workspace_options=options,
                                    compile_store=self.compile_store,
                                    store_options=store_options,
                                    share_sat=self.sat_workspace,
                                    sat_options=sat_options)
        if kind == "fleet":
            return FleetExecutor(workers=processes,
                                 port=self.fleet_port,
                                 lease_timeout=self.fleet_lease_timeout,
                                 heartbeat_interval=
                                 self.fleet_heartbeat_interval,
                                 launcher=self.fleet_launcher,
                                 scheduling=self.build_scheduling(),
                                 share_bdd=self.share_bdd,
                                 workspace_options=options,
                                 compile_store=self.compile_store,
                                 store_options=store_options,
                                 share_sat=self.sat_workspace,
                                 sat_options=sat_options)
        return WorkStealingExecutor(processes=processes,
                                    share_bdd=self.share_bdd,
                                    workspace_options=options,
                                    scheduling=self.build_scheduling(),
                                    compile_store=self.compile_store,
                                    store_options=store_options,
                                    share_sat=self.sat_workspace,
                                    sat_options=sat_options)

    def build_scheduling(self):
        """The scheduling policy instance (``fifo`` unless configured)."""
        return scheduling_policy(self.scheduling)

    def build_portfolio_policy(self, cache=None):
        """The portfolio policy instance; ``cache`` feeds the adaptive
        policy its engine history."""
        return portfolio_policy(self.portfolio, cache)

    def build_cache(self):
        """The :class:`~repro.orchestrate.cache.ResultCache`, or
        ``None`` when no path is configured."""
        if self.cache_path is None:
            return None
        from .cache import ResultCache
        return ResultCache(self.cache_path,
                           max_entries=self.cache_max_entries)

    def build_checkpoint(self):
        """The :class:`~repro.orchestrate.checkpoint.CampaignCheckpoint`,
        or ``None`` when no path is configured."""
        if self.checkpoint_path is None:
            return None
        from .checkpoint import CampaignCheckpoint
        return CampaignCheckpoint(self.checkpoint_path)


def _is_int(value: object) -> bool:
    """True for real integers (bool is excluded — TOML and JSON both
    distinguish them, and ``lint = 1`` should be an error)."""
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: object) -> bool:
    """True for real ints and floats (bool excluded) — the fleet
    timeout knobs accept either, like TOML does."""
    return _is_int(value) or isinstance(value, float)


def _toml_value(value: object) -> str:
    """Render one config value as TOML (strings, booleans, numbers,
    and string lists are the whole value vocabulary)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, list):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise ConfigError(f"value {value!r} has no TOML form")


#: every dataclass field must have exactly one CONFIG_SCHEMA slot —
#: fail at import time, not in a user's half-serialized config
_mapped = [f for keys in CONFIG_SCHEMA.values() for f in keys.values()]
assert sorted(_mapped) == sorted(f.name for f in fields(CampaignConfig)), \
    "CONFIG_SCHEMA out of sync with CampaignConfig fields"
assert len(_mapped) == len(set(_mapped)), \
    "CONFIG_SCHEMA maps a field twice"
del _mapped
