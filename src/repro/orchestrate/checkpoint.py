"""Campaign checkpointing — a crash-safe journal of completed jobs.

A killed campaign (ctrl-C, OOM, a pre-empted CI shard) must not forfeit
the checks it already finished.  :class:`CampaignCheckpoint` journals
every fresh :class:`~repro.orchestrate.job.JobResult` to disk *as it
streams out of the executor*, so
``CampaignOrchestrator.run(resume=True)`` can replay the journal's
verified prefix and execute only the remainder — producing a report
byte-identical (``CampaignReport.canonical_bytes``) to an uninterrupted
run.

Journal format (JSON lines, append-only)::

    {"journal": 1, "repro_version": "...", "plan": "<digest>", "jobs": N}
    {"index": 0, "fingerprint": "<job fp>", "result": {...}}
    {"index": 1, "fingerprint": "<job fp>", "result": {...}}
    ...

- the **header** binds the journal to one exact campaign: the ``plan``
  digest hashes every job fingerprint in plan order
  (:func:`plan_digest`), so an edited design, changed engine portfolio,
  or different block list invalidates the whole journal and the
  campaign simply reruns from scratch;
- each **entry** is one completed job, serialized with the result
  cache's codec (:func:`~repro.orchestrate.cache.encode_result`) and
  validated on the way back in with the same rules — a journaled FAIL
  must carry a trace that still replays, anything suspicious degrades
  to a re-check;
- every ``record`` is flushed and fsync'd, so a SIGKILL loses at most
  the entry being written.  :meth:`load` accepts the longest valid
  prefix: a torn final line (the expected crash artifact) is dropped
  along with anything after it, while a corrupt or mismatched header
  discards the journal wholesale — degrading to a plain rerun, never a
  wrong verdict.

The journal is an intra-campaign artifact, complementary to
:class:`~repro.orchestrate.cache.ResultCache`: the cache is
fingerprint-keyed and shared across campaigns, the journal is
plan-positional and private to one campaign run (and therefore cheap —
no per-entry replay bookkeeping beyond the shared codec).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Sequence

from .. import __version__
from .job import CheckJob
from .planner import CampaignPlan


def plan_digest(plan_or_jobs) -> str:
    """Content digest of a campaign plan: every job fingerprint, in
    plan order.  Two campaigns share a digest iff they will run the
    same checks in the same order."""
    jobs: Sequence[CheckJob]
    if isinstance(plan_or_jobs, CampaignPlan):
        jobs = plan_or_jobs.jobs
    else:
        jobs = list(plan_or_jobs)
    hasher = hashlib.sha256()
    for job in jobs:
        hasher.update(job.fingerprint.encode("ascii"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


class CampaignCheckpoint:
    """Append-only journal of one campaign's completed job results."""

    VERSION = 1

    def __init__(self, path) -> None:
        self.path = str(path)
        self._handle = None
        #: byte offset of the end of the last loaded valid prefix;
        #: start(resuming=True) truncates to it so a torn tail can
        #: never be glued onto the resumed run's first entry
        self._valid_end: Optional[int] = None

    # ------------------------------------------------------------------
    def load(self, digest: str, total_jobs: int) -> Dict[int, dict]:
        """Read the journal's valid prefix for the campaign ``digest``.

        Returns ``{job index: {"fingerprint": ..., "result": ...}}``.
        A missing file, unreadable/mismatched header, or wrong job
        count yields ``{}`` (plain rerun).  A malformed body line —
        including the torn last line a kill mid-write leaves behind —
        ends the prefix: it and every later line are ignored (and
        truncated away when the journal is reopened for appending, so
        the next entry starts on a clean line).
        """
        self._valid_end = None
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return {}
        entries: Dict[int, dict] = {}
        header_seen = False
        valid_end = 0
        # offsets are tracked on the raw bytes (never on re-decoded
        # text, whose length can differ around corrupt UTF-8), so the
        # truncate in start(resuming=True) always lands exactly on the
        # end of the last valid line
        for raw_line in raw.splitlines(keepends=True):
            if not raw_line.endswith(b"\n"):
                break  # torn tail from a kill mid-write
            try:
                line = raw_line.decode("utf-8")
            except UnicodeDecodeError:
                break  # corrupt bytes end the valid prefix
            if not header_seen:
                if not self._header_valid(line, digest, total_jobs):
                    return {}
                header_seen = True
            else:
                entry = self._parse_entry(line, total_jobs)
                if entry is None:
                    break
                entries[entry["index"]] = {
                    "fingerprint": entry["fingerprint"],
                    "result": entry["result"],
                }
            valid_end += len(raw_line)
        if header_seen:
            self._valid_end = valid_end
        return entries

    def _header_valid(self, line: str, digest: str,
                      total_jobs: int) -> bool:
        try:
            header = json.loads(line)
        except ValueError:
            return False
        return (
            isinstance(header, dict)
            and header.get("journal") == self.VERSION
            and header.get("repro_version") == __version__
            and header.get("plan") == digest
            and header.get("jobs") == total_jobs
        )

    @staticmethod
    def _parse_entry(line: str, total_jobs: int) -> Optional[dict]:
        try:
            entry = json.loads(line)
        except ValueError:
            return None
        if not isinstance(entry, dict):
            return None
        index = entry.get("index")
        if not isinstance(index, int) or not 0 <= index < total_jobs:
            return None
        if not isinstance(entry.get("fingerprint"), str):
            return None
        if not isinstance(entry.get("result"), dict):
            return None
        return entry

    # ------------------------------------------------------------------
    def start(self, digest: str, total_jobs: int,
              resuming: bool) -> None:
        """Open the journal for appending.

        ``resuming`` means :meth:`load` found a valid journal for this
        exact campaign, so new entries extend it — after truncating any
        invalid tail (a torn line from the kill) so appended entries
        never merge into it.  Otherwise the file is truncated and a
        fresh header written.  (A resume attempt whose journal turned
        out invalid lands here with ``resuming=False`` and overwrites
        the bad journal with a good one.)
        """
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        if resuming:
            self._handle = open(self.path, "a", encoding="utf-8")
            if self._valid_end is not None:
                self._handle.truncate(self._valid_end)
            return
        self._handle = open(self.path, "w", encoding="utf-8")
        header = {"journal": self.VERSION, "repro_version": __version__,
                  "plan": digest, "jobs": total_jobs}
        self._append(header)

    def record(self, job: CheckJob, result) -> None:
        """Journal one completed job (durably: flush + fsync)."""
        if self._handle is None:
            raise RuntimeError("checkpoint not started; call start()")
        from .cache import encode_result
        self._append({
            "index": job.index,
            "fingerprint": job.fingerprint,
            "result": encode_result(result),
        })

    def _append(self, payload: dict) -> None:
        self._handle.write(json.dumps(payload, default=repr) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the journal handle (idempotent).  Every entry was
        already flushed and fsync'd by :meth:`record`, so closing adds
        no durability — it releases the descriptor and makes the
        checkpoint reusable for another :meth:`start`."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
