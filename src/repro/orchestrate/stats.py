"""The versioned campaign-stats schema — one shape for every consumer.

``CampaignReport.stats`` grew one ad-hoc counter block per warm-state
layer (compile store, SAT workspace, BDD workspace, fleet transport,
portfolio attempts).  Each consumer — the CLI's ``--stats`` printer,
the campaign benchmark's records, and now the service daemon's
``/metrics`` endpoint — used to hand-pick its own subset, so adding a
counter meant touching every consumer and drifting was easy.

This module is the single contract instead:

- :data:`STATS_SCHEMA` names the schema version.  The orchestrator
  stamps it into ``report.stats["stats_schema"]``; records that embed
  stats (benchmark JSON, ``/metrics`` payloads, campaign status
  responses) carry the same string, so a consumer can refuse shapes it
  does not understand instead of mis-parsing them.
- :func:`counter_groups` flattens a ``report.stats`` dict into the
  canonical ``{group: {counter: int}}`` form.  Only integer-valued
  counters survive (nested breakdowns like the fleet's per-worker job
  map are presentation detail, not schema), empty groups are dropped,
  and group order is fixed — so two runs' metrics diff line-for-line.

Versioning rule: adding a *group* or a *counter* is backward
compatible and keeps ``repro-stats/v1``; renaming or re-nesting
either bumps the version.
"""

from __future__ import annotations

from typing import Dict, Mapping

#: the version tag stamped into ``report.stats`` and every record that
#: embeds campaign counters (benchmark JSON, ``/metrics``, campaign
#: status).  Bump only on incompatible reshapes — additions are free.
STATS_SCHEMA = "repro-stats/v1"

#: group name -> where it lives in ``report.stats`` (a top-level key,
#: or ``(key, subkey)`` for the compile store's run/replay split).
#: Order here is the canonical group order of the schema.
_GROUPS = (
    ("orchestrator", None),
    ("compile_store_run", ("compile_store", "run")),
    ("compile_store_replay", ("compile_store", "replay")),
    ("sat_workspace", ("sat_workspace",)),
    ("bdd_workspace", ("bdd_workspace",)),
    ("fleet", ("fleet",)),
    ("coi", ("coi",)),
    ("engine_attempts", ("engine_attempts",)),
)

#: the orchestrator's own scalar counters, pulled from the top level
#: of ``report.stats`` into their own group
_ORCHESTRATOR_COUNTERS = (
    "jobs", "cache_hits", "cache_misses", "journal_replayed",
    "portfolio_reordered",
)


def counter_groups(stats: Mapping) -> Dict[str, Dict[str, int]]:
    """Flatten a ``report.stats`` dict into the canonical versioned
    counter shape: ``{group: {counter: int}}``.

    Tolerant by design — a stats dict from an older run (no
    ``stats_schema`` stamp, missing blocks) yields whatever groups it
    does carry; non-integer values (names, digests, nested per-worker
    maps) are simply not counters and are skipped.  Booleans are
    excluded too: they are flags, not tallies.
    """
    groups: Dict[str, Dict[str, int]] = {}
    for group, path in _GROUPS:
        if path is None:
            source = {key: stats.get(key)
                      for key in _ORCHESTRATOR_COUNTERS}
        else:
            source = stats
            for key in path:
                source = source.get(key) if isinstance(source, Mapping) \
                    else None
            if not isinstance(source, Mapping):
                continue
        counters = {
            key: value for key, value in source.items()
            if isinstance(value, int) and not isinstance(value, bool)
        }
        if counters:
            groups[group] = counters
    return groups
