"""The campaign orchestrator: plan → partition → execute → aggregate.

``CampaignOrchestrator`` ties the subsystem together:

1. :func:`~repro.orchestrate.planner.plan_campaign` walks the blocks
   once and emits the ordered :class:`CheckJob` list;
2. the plan is partitioned: jobs already completed in an attached
   :class:`~repro.orchestrate.checkpoint.CampaignCheckpoint` journal
   (when resuming) are replayed first, then a
   :class:`~repro.orchestrate.cache.ResultCache` hit replays its stored
   verdict, and only the remainder stays on the run list;
3. the configured :class:`~repro.orchestrate.policy.PortfolioPolicy`
   picks each remaining job's engine attempt order (the adaptive
   policy tries the cache's historical winner first), then the
   executor (serial by default; chunked-pool or work-stealing
   process-parallel opt-in, the latter scheduled by the configured
   :class:`~repro.orchestrate.policy.SchedulingPolicy`) streams
   :class:`JobResult`\\ s back in plan order, each fresh result
   journaled to the checkpoint as it arrives;
4. results — journal-replayed, cached, and fresh interleaved back into
   plan order — are aggregated incrementally into the legacy
   :class:`CampaignReport`: per-block property counters, per-block
   distinct-defective-module bug counts (no post-hoc rescan), and the
   ``progress`` callback fired once per property in plan order.

Because aggregation consumes results strictly in plan order, every
executor — and every interrupted-then-resumed execution — produces a
byte-identical report outcome (``CampaignReport.canonical_bytes``);
``report.stats`` carries the orchestration counters (jobs, cache
hits/misses, journal replays, executor name) on top.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.campaign import BlockSummary, CampaignReport, PropertyResult
from ..formal.engine import CheckResult, FAIL
from ..formal.problems import CompiledProblemStore
from .cache import ResultCache, decode_result
from .checkpoint import CampaignCheckpoint, plan_digest
from .config import CampaignConfig
from .job import CheckJob, EngineConfig
from .planner import Blocks, CampaignPlan, plan_campaign
from .stats import STATS_SCHEMA

Progress = Optional[Callable[[str], None]]


class CampaignOrchestrator:
    """Runs a formal campaign as a scheduled job graph.

    The canonical way to parameterise a campaign is one declarative
    :class:`~repro.orchestrate.config.CampaignConfig`::

        config = CampaignConfig(executor="workstealing:4",
                                engines="portfolio:kind,bdd-combined",
                                scheduling="module-affinity",
                                cache_path="campaign-cache.json")
        CampaignOrchestrator(blocks, config=config).run()

    Every component — engine portfolio, executor (with its scheduling
    policy and shared-BDD wiring), result cache, checkpoint journal —
    is built from the config, and the config's :meth:`digest
    <repro.orchestrate.config.CampaignConfig.digest>` is stamped into
    ``report.stats["config_digest"]`` so the report names the exact
    configuration that produced it.

    The per-component kwargs are the *override* layer, kept for
    programmatic callers and backward compatibility (they predate the
    config API and are soft-deprecated as the primary interface —
    prefer the config, which is what serializes):

    - ``engines`` — the per-job engine portfolio (tuple of
      :class:`EngineConfig`; one entry = single engine);
    - ``executor`` — any object with ``name`` and ``map(jobs)``
      yielding results in plan order;
    - ``cache`` — a :class:`ResultCache` for incremental reruns;
    - ``checkpoint`` — a :class:`CampaignCheckpoint` journaling
      completed jobs so a killed campaign restarts with
      ``run(resume=True)``;
    - ``lint`` — lint the Verifiable RTL while planning.

    An explicit component wins over the config's corresponding spec;
    everything not overridden still comes from the config.  Overridden
    component names are recorded in
    ``report.stats["config_overrides"]`` — an empty list means the
    stamped ``config_digest`` alone fully describes the run.
    """

    #: the default per-job engine portfolio: the induction-then-BDD
    #: ladder as explicit stages (algorithmically what the old single
    #: ``auto`` engine did internally), with the legacy budget limits —
    #: generous enough for every leaf problem, tripping (TIMEOUT) only
    #: on genuinely oversized cones instead of running unbounded.
    #: Identical to ``CampaignConfig().build_engines()`` — the config
    #: *is* the default campaign.
    DEFAULT_ENGINES = tuple(
        EngineConfig(method=method,
                     sat_conflicts=200_000, bdd_nodes=2_000_000)
        for method in ("kind", "bdd-combined")
    )

    def __init__(self, blocks: Blocks,
                 engines: Optional[Tuple[EngineConfig, ...]] = None,
                 executor=None,
                 cache: Optional[ResultCache] = None,
                 checkpoint: Optional[CampaignCheckpoint] = None,
                 lint: Optional[bool] = None,
                 config: Optional[CampaignConfig] = None) -> None:
        if config is None:
            config = CampaignConfig()
        self.config = config
        self.blocks = [(name, list(mods)) for name, mods in blocks]
        #: component kwargs that replaced the config's specs — recorded
        #: in ``report.stats["config_overrides"]`` so a stamped digest
        #: is never mistaken for the full story of an overridden run
        overrides = [
            name for name, value in [
                ("engines", engines), ("executor", executor),
                ("cache", cache), ("checkpoint", checkpoint),
                ("lint", lint),
            ] if value is not None
        ]
        # the blocks argument is a component too: when the config
        # names a scope and the caller hands a different one, the
        # digest no longer describes the run by itself
        if config.blocks is not None and \
                [name for name, _ in self.blocks] != list(config.blocks):
            overrides.append("blocks")
        self.config_overrides = sorted(overrides)
        self.engines = tuple(engines) if engines \
            else config.build_engines()
        self.executor = executor if executor is not None \
            else config.build_executor()
        self.cache = cache if cache is not None else config.build_cache()
        self.checkpoint = checkpoint if checkpoint is not None \
            else config.build_checkpoint()
        self.lint = config.lint if lint is None else lint
        self.portfolio_policy = config.build_portfolio_policy(self.cache)
        #: the orchestrator's own compiled-problem store, serving the
        #: journal-replay and cache-lookup decode paths (FAIL traces
        #: recompile to revalidate); executors hold their workers' run
        #: stores separately.  Persistent across run() calls, so a
        #: resume replays against warm designs.
        self._replay_store: Optional[CompiledProblemStore] = \
            CompiledProblemStore(**config.compile_store_options()) \
            if config.compile_store else None

    # ------------------------------------------------------------------
    def plan(self) -> CampaignPlan:
        """Produce the campaign's ordered job list without running it.

        Deterministic for identical inputs: replanning the same blocks
        with the same engine portfolio yields the same jobs, indices,
        and fingerprints — which is what lets a resumed campaign match
        its checkpoint journal against a freshly derived plan.
        """
        return plan_campaign(
            self.blocks, self.engines, lint=self.lint,
            coi_fingerprints=self.config.coi_fingerprints or "module",
            coi_slice=bool(self.config.coi_slice),
        )

    # ------------------------------------------------------------------
    def run(self, progress: Progress = None,
            resume: bool = False) -> CampaignReport:
        """Run the campaign.

        ``resume=True`` requires an attached :class:`CampaignCheckpoint`
        and replays its journal's valid prefix before executing the
        remainder; the resulting report's outcome
        (``CampaignReport.canonical_bytes``) is byte-identical to an
        uninterrupted run.  An invalid or mismatched journal degrades
        to a plain full run (and is overwritten with a fresh one).
        """
        if resume and self.checkpoint is None:
            raise ValueError("resume=True requires a checkpoint")
        started = time.perf_counter()
        plan = self.plan()

        report = CampaignReport()
        report.lint_issues = list(plan.lint_issues)
        for block_name in plan.block_order:
            report.blocks[block_name] = BlockSummary(
                block_name, submodules=plan.submodules[block_name]
            )

        journal_results = self._open_checkpoint(plan, resume)
        cached_results, to_run = self._partition(plan, journal_results)
        # the portfolio policy permutes attempt order only — outside
        # the fingerprint, so cache keys and the journal stay put
        reordered = 0
        for job in to_run:
            job.engine_order = self.portfolio_policy.order(job)
            reordered += job.engine_order is not None
        executed = self.executor.map(to_run)

        fail_modules: Dict[str, Set[str]] = {}
        fresh_modules: Set[str] = {job.module.name for job in to_run}
        engine_attempts: Dict[str, int] = {}
        try:
            for job in plan.jobs:
                cached = False
                if job.index in journal_results:
                    # this campaign's own completed work, restored —
                    # indistinguishable in the report from having just
                    # run it (``cached`` stays False); backfill the
                    # cache, which a hard kill may never have flushed
                    # (skipped when already present: a resume must not
                    # dirty a warm shared store into a full rewrite)
                    result = journal_results[job.index]
                    if self.cache is not None and \
                            job.fingerprint not in self.cache:
                        self.cache.store(job.fingerprint, result, job=job)
                elif job.index in cached_results:
                    cached = True
                    result = cached_results[job.index]
                else:
                    job_result = next(executed, None)
                    if job_result is None:
                        raise RuntimeError(
                            f"executor {self.executor.name!r} broke the "
                            f"ordering contract: ran out of results "
                            f"before job {job.index}"
                        )
                    if job_result.index != job.index:
                        raise RuntimeError(
                            f"executor {self.executor.name!r} broke the "
                            f"ordering contract: expected job "
                            f"{job.index}, got {job_result.index}"
                        )
                    result = job_result.result
                    for attempt in result.stats.get("portfolio") or \
                            [{"engine": job.engines[0].method}]:
                        method = attempt["engine"]
                        engine_attempts[method] = \
                            engine_attempts.get(method, 0) + 1
                    if self.cache is not None:
                        self.cache.store(job.fingerprint, result, job=job)
                    if self.checkpoint is not None:
                        self.checkpoint.record(job, result)
                self._record(report, job, result, cached, fail_modules,
                             progress)
            # drive the executor to completion: lets it release its
            # workers gracefully, and catches over-yielding executors
            leftover = next(executed, None)
            if leftover is not None:
                raise RuntimeError(
                    f"executor {self.executor.name!r} broke the "
                    f"ordering contract: yielded result "
                    f"{leftover.index} beyond the last job"
                )
        finally:
            # shut the executor down deterministically (a parallel
            # pool must not keep churning after a failed run)...
            close = getattr(executed, "close", None)
            if close is not None:
                close()
            # ...and persist whatever completed, even when a job blows
            # up mid-campaign — that's what an incremental retry (or a
            # resume from the journal) reuses
            if self.checkpoint is not None:
                self.checkpoint.close()
            if self.cache is not None:
                self.cache.flush()
        report.seconds = time.perf_counter() - started
        scheduling = getattr(self.executor, "scheduling", None)
        compile_stats_fn = getattr(self.executor, "compile_stats", None)
        sat_stats_fn = getattr(self.executor, "sat_stats", None)
        bdd_stats_fn = getattr(self.executor, "workspace_stats", None)
        fleet_stats_fn = getattr(self.executor, "fleet_stats", None)
        report.stats = {
            # every record embedding these counters (CLI --stats, the
            # benchmark JSON, the service /metrics endpoint) names the
            # shape it speaks — see repro.orchestrate.stats
            "stats_schema": STATS_SCHEMA,
            "executor": self.executor.name,
            "engines": [config.method for config in self.engines],
            "config_digest": self.config.digest(),
            "config_overrides": list(self.config_overrides),
            "scheduling": scheduling.name if scheduling is not None
            else "fifo",
            "portfolio_policy": self.portfolio_policy.name,
            "portfolio_reordered": reordered,
            "engine_attempts": engine_attempts,
            # hit/miss/evict counters of the content-addressed compile
            # layer: "run" aggregates the executor's per-worker stores
            # (empty dict = store off or executor without one),
            # "replay" is the orchestrator's own store serving journal
            # and cache decodes
            "compile_store": {
                "run": compile_stats_fn() if compile_stats_fn else {},
                "replay": self._replay_store.stats()
                if self._replay_store is not None else {},
            },
            # warm-state workspace counters aggregated over the
            # executor's workers (empty dict = sharing off or executor
            # without the hook)
            "sat_workspace": sat_stats_fn() if sat_stats_fn else {},
            "bdd_workspace": bdd_stats_fn() if bdd_stats_fn else {},
            # fleet transport bookkeeping (workers launched/lost,
            # leases issued/re-issued, rejected results, per-worker job
            # counts); empty dict = not a fleet executor
            "fleet": fleet_stats_fn() if fleet_stats_fn else {},
            # cone addressing: what the [coi] section asked for, how
            # many distinct cones the plan saw, and the hit/run split —
            # the sweep-at-scale headline (cone_hits are the cache hits
            # earned by cone fingerprints; in module mode the split is
            # still reported but cone_hits stays 0)
            "coi": {
                "fingerprints": self.config.coi_fingerprints or "module",
                "slice": bool(self.config.coi_slice),
                "unique_cones": len({job.cone_digest
                                     for job in plan.jobs
                                     if job.cone_digest}),
                "jobs_executed": len(to_run),
                "cone_hits": len(cached_results)
                if self.config.coi_fingerprints == "cone" else 0,
            },
            "jobs": plan.total_jobs,
            "cache_hits": len(cached_results),
            "cache_misses": len(to_run) if self.cache is not None else 0,
            "journal_replayed": len(journal_results),
            "modules_checked": sorted(fresh_modules),
            "modules_replayed": sorted(
                set(plan.modules_planned()) - fresh_modules
            ),
        }
        return report

    # ------------------------------------------------------------------
    def _open_checkpoint(self, plan: CampaignPlan,
                         resume: bool) -> Dict[int, CheckResult]:
        """Load the journal's replayable results (resume only) and open
        the journal for appending this run's fresh completions."""
        if self.checkpoint is None:
            return {}
        digest = plan_digest(plan)
        replayed: Dict[int, CheckResult] = {}
        if resume:
            for index, entry in self.checkpoint.load(
                    digest, plan.total_jobs).items():
                job = plan.jobs[index]
                if entry["fingerprint"] != job.fingerprint:
                    continue  # stale entry — re-check, never trust it
                try:
                    replayed[index] = decode_result(
                        entry["result"], job, self._replay_store
                    )
                except Exception:
                    continue  # malformed/unreplayable — re-check
        self.checkpoint.start(digest, plan.total_jobs,
                              resuming=bool(replayed))
        return replayed

    # ------------------------------------------------------------------
    def _partition(self, plan: CampaignPlan,
                   journal_results: Dict[int, CheckResult]
                   ) -> Tuple[Dict[int, CheckResult], List[CheckJob]]:
        """Split the plan into journal replays (already loaded), cache
        hits, and jobs that must run."""
        remaining = [job for job in plan.jobs
                     if job.index not in journal_results]
        if self.cache is None:
            return {}, remaining
        cached: Dict[int, CheckResult] = {}
        to_run: List[CheckJob] = []
        for job in remaining:
            result = self.cache.lookup(job.fingerprint, job,
                                       self._replay_store)
            if result is not None:
                cached[job.index] = result
            else:
                to_run.append(job)
        return cached, to_run

    @staticmethod
    def _record(report: CampaignReport, job: CheckJob, result: CheckResult,
                cached: bool, fail_modules: Dict[str, Set[str]],
                progress: Progress) -> None:
        record = PropertyResult(
            block=job.block,
            module_name=job.module.name,
            vunit_name=job.vunit.name,
            assert_name=job.assert_name,
            category=job.category,
            result=result,
            cached=cached,
        )
        report.results.append(record)
        summary = report.blocks[job.block]
        summary.add(job.category)
        if result.status == FAIL:
            defective = fail_modules.setdefault(job.block, set())
            defective.add(job.module.name)
            summary.bugs = len(defective)
        if progress is not None:
            progress(f"{record.qualified_name}: {result.status.upper()}")
