"""The campaign orchestrator: plan → cache-partition → execute → aggregate.

``CampaignOrchestrator`` ties the subsystem together:

1. :func:`~repro.orchestrate.planner.plan_campaign` walks the blocks
   once and emits the ordered :class:`CheckJob` list;
2. if a :class:`~repro.orchestrate.cache.ResultCache` is attached, each
   job's fingerprint is looked up first — hits replay their stored
   verdict, misses stay on the run list;
3. the executor (serial by default, process-parallel opt-in) streams
   :class:`JobResult`\\ s back in plan order;
4. results — cached and fresh interleaved back into plan order — are
   aggregated incrementally into the legacy :class:`CampaignReport`:
   per-block property counters, per-block distinct-defective-module bug
   counts (no post-hoc rescan), and the ``progress`` callback fired
   once per property in plan order.

Because aggregation consumes results strictly in plan order, every
executor produces a byte-identical report; ``report.stats`` carries the
orchestration counters (jobs, cache hits/misses, executor name) on top.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.campaign import BlockSummary, CampaignReport, PropertyResult
from ..formal.engine import CheckResult, FAIL
from .cache import ResultCache
from .executor import SerialExecutor
from .job import CheckJob, EngineConfig
from .planner import Blocks, CampaignPlan, plan_campaign

Progress = Optional[Callable[[str], None]]


class CampaignOrchestrator:
    """Runs a formal campaign as a scheduled job graph.

    ``engines`` is the per-job engine portfolio (a tuple of
    :class:`EngineConfig`; one entry = single engine, the default
    single ``auto`` config reproduces the legacy behaviour).
    ``executor`` is any object with ``name`` and ``map(jobs)`` yielding
    results in plan order.  ``cache`` is an optional
    :class:`ResultCache`; pass one to make reruns incremental.
    """

    #: default per-job budget limits, matching the legacy
    #: ``FormalCampaign`` default ``budget_factory`` — generous enough
    #: for every leaf problem, trips (TIMEOUT) only on genuinely
    #: oversized cones instead of running unbounded
    DEFAULT_ENGINES = (
        EngineConfig(sat_conflicts=200_000, bdd_nodes=2_000_000),
    )

    def __init__(self, blocks: Blocks,
                 engines: Optional[Tuple[EngineConfig, ...]] = None,
                 executor=None,
                 cache: Optional[ResultCache] = None,
                 lint: bool = True) -> None:
        self.blocks = [(name, list(mods)) for name, mods in blocks]
        self.engines = tuple(engines) if engines else self.DEFAULT_ENGINES
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.lint = lint

    # ------------------------------------------------------------------
    def plan(self) -> CampaignPlan:
        return plan_campaign(self.blocks, self.engines, lint=self.lint)

    # ------------------------------------------------------------------
    def run(self, progress: Progress = None) -> CampaignReport:
        started = time.perf_counter()
        plan = self.plan()

        report = CampaignReport()
        report.lint_issues = list(plan.lint_issues)
        for block_name in plan.block_order:
            report.blocks[block_name] = BlockSummary(
                block_name, submodules=plan.submodules[block_name]
            )

        cached_results, to_run = self._partition(plan)
        executed = self.executor.map(to_run)

        fail_modules: Dict[str, Set[str]] = {}
        fresh_modules: Set[str] = {job.module.name for job in to_run}
        try:
            for job in plan.jobs:
                cached = job.index in cached_results
                if cached:
                    result = cached_results[job.index]
                else:
                    job_result = next(executed, None)
                    if job_result is None:
                        raise RuntimeError(
                            f"executor {self.executor.name!r} broke the "
                            f"ordering contract: ran out of results "
                            f"before job {job.index}"
                        )
                    if job_result.index != job.index:
                        raise RuntimeError(
                            f"executor {self.executor.name!r} broke the "
                            f"ordering contract: expected job "
                            f"{job.index}, got {job_result.index}"
                        )
                    result = job_result.result
                    if self.cache is not None:
                        self.cache.store(job.fingerprint, result)
                self._record(report, job, result, cached, fail_modules,
                             progress)
            # drive the executor to completion: lets it release its
            # workers gracefully, and catches over-yielding executors
            leftover = next(executed, None)
            if leftover is not None:
                raise RuntimeError(
                    f"executor {self.executor.name!r} broke the "
                    f"ordering contract: yielded result "
                    f"{leftover.index} beyond the last job"
                )
        finally:
            # shut the executor down deterministically (a parallel
            # pool must not keep churning after a failed run)...
            close = getattr(executed, "close", None)
            if close is not None:
                close()
            # ...and persist whatever completed, even when a job blows
            # up mid-campaign — that's what an incremental retry reuses
            if self.cache is not None:
                self.cache.flush()
        report.seconds = time.perf_counter() - started
        report.stats = {
            "executor": self.executor.name,
            "engines": [config.method for config in self.engines],
            "jobs": plan.total_jobs,
            "cache_hits": len(cached_results),
            "cache_misses": len(to_run) if self.cache is not None else 0,
            "modules_checked": sorted(fresh_modules),
            "modules_replayed": sorted(
                set(plan.modules_planned()) - fresh_modules
            ),
        }
        return report

    # ------------------------------------------------------------------
    def _partition(self, plan: CampaignPlan
                   ) -> Tuple[Dict[int, CheckResult], List[CheckJob]]:
        """Split the plan into cache hits and jobs that must run."""
        if self.cache is None:
            return {}, list(plan.jobs)
        cached: Dict[int, CheckResult] = {}
        to_run: List[CheckJob] = []
        design_cache: dict = {}
        for job in plan.jobs:
            result = self.cache.lookup(job.fingerprint, job, design_cache)
            if result is not None:
                cached[job.index] = result
            else:
                to_run.append(job)
        return cached, to_run

    @staticmethod
    def _record(report: CampaignReport, job: CheckJob, result: CheckResult,
                cached: bool, fail_modules: Dict[str, Set[str]],
                progress: Progress) -> None:
        record = PropertyResult(
            block=job.block,
            module_name=job.module.name,
            vunit_name=job.vunit.name,
            assert_name=job.assert_name,
            category=job.category,
            result=result,
            cached=cached,
        )
        report.results.append(record)
        summary = report.blocks[job.block]
        summary.add(job.category)
        if result.status == FAIL:
            defective = fail_modules.setdefault(job.block, set())
            defective.add(job.module.name)
            summary.bugs = len(defective)
        if progress is not None:
            progress(f"{record.qualified_name}: {result.status.upper()}")
