"""Check jobs — the unit of work of the campaign orchestrator.

One :class:`CheckJob` is a single property check: a leaf module, one of
its stereotype vunits, one asserted property, and the engine portfolio
to try.  Jobs are:

- **self-contained** — everything needed to run the check travels with
  the job, so an executor can run it in-process or ship it to a worker
  process (jobs and their results are picklable);
- **content-addressed** — :func:`job_fingerprint` hashes the module's
  emitted Verilog, the vunit's PSL text, the assertion name, and the
  engine portfolio, so an unchanged check always maps to the same key
  (the result cache's index, see :mod:`repro.orchestrate.cache`);
- **engine-agnostic** — the portfolio is an ordered tuple of
  :class:`EngineConfig` stages tried until one returns a definitive
  PASS/FAIL verdict, generalising the old hardcoded ``auto`` fallback.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, Optional, Tuple

from ..formal.budget import ResourceBudget
from ..formal.engine import (
    CheckResult, EngineOptions, FAIL, PASS, ModelChecker,
)
from ..formal.workspace import BddWorkspace
from ..psl.ast import VUnit
from ..psl.compile import compile_assertion
from ..rtl.elaborate import FlatDesign, elaborate
from ..rtl.module import Module
from ..rtl.verilog import emit_module


@dataclass(frozen=True)
class EngineConfig:
    """One engine invocation: method, tuning knobs, resource limits.

    ``sat_conflicts`` / ``bdd_nodes`` are the deterministic budget
    limits (``None`` = unlimited); a fresh :class:`ResourceBudget` is
    built per check so retries and portfolio stages never share spent
    counters.
    """

    method: str = "auto"
    max_bound: int = 60
    max_k: int = 40
    unique_states: bool = True
    num_window_vars: int = 2
    sat_conflicts: Optional[int] = None
    bdd_nodes: Optional[int] = None

    @classmethod
    def from_budget(cls, budget: Optional[ResourceBudget],
                    **overrides) -> "EngineConfig":
        """Build a config carrying ``budget``'s limits (not its spent
        counters) — the bridge from the legacy ``budget_factory`` API."""
        if budget is not None:
            overrides.setdefault("sat_conflicts", budget.sat_conflicts)
            overrides.setdefault("bdd_nodes", budget.bdd_nodes)
        return cls(**overrides)

    def make_budget(self) -> ResourceBudget:
        """A fresh budget carrying this config's limits — built once
        per check so stages and retries never share spent counters."""
        return ResourceBudget(sat_conflicts=self.sat_conflicts,
                              bdd_nodes=self.bdd_nodes)

    #: :class:`EngineOptions` fields that are execution-time wiring,
    #: not plan-level tuning knobs: they have no EngineConfig
    #: counterpart, are injected by the job runner, and stay out of
    #: fingerprints.  Every *other* option field must exist on the
    #: config — ``options()`` raises AttributeError otherwise, so a
    #: knob added to EngineOptions without its config counterpart
    #: fails loudly instead of silently defaulting.
    RUNTIME_OPTION_FIELDS = frozenset({"workspace"})

    def options(self) -> EngineOptions:
        """The :class:`EngineOptions` slice of this config — derived
        from the option dataclass's own fields, so a knob added there
        (and here) flows through dispatch and fingerprints without
        further bookkeeping.  :data:`RUNTIME_OPTION_FIELDS` keep their
        defaults — the job runner injects those at execution time."""
        return EngineOptions(**{
            f.name: getattr(self, f.name) for f in fields(EngineOptions)
            if f.name not in self.RUNTIME_OPTION_FIELDS
        })

    def describe(self) -> Dict[str, object]:
        """Stable, JSON-able description used in fingerprints.

        Runtime wiring (:data:`RUNTIME_OPTION_FIELDS`) is excluded: a
        shared node table changes the cost of a check, never a
        PASS/FAIL verdict, so it must not perturb content
        fingerprints — warmed and cold runs replay each other's cached
        results.
        """
        options = asdict(self.options())
        for name in self.RUNTIME_OPTION_FIELDS:
            options.pop(name, None)
        return {
            "method": self.method,
            "sat_conflicts": self.sat_conflicts,
            "bdd_nodes": self.bdd_nodes,
            **options,
        }


#: The default portfolio sequence: k-induction (fast on the inductive
#: parity invariants the methodology produces), then full BDD combined
#: traversal, then partitioned-ROBDD reachability as the last resort.
DEFAULT_PORTFOLIO_METHODS = ("kind", "bdd-combined", "pobdd")


def portfolio(*methods: str, **common) -> Tuple[EngineConfig, ...]:
    """Build an engine portfolio: one :class:`EngineConfig` per method,
    sharing the keyword tuning knobs (budget limits, bounds...).

    With no methods given, builds :data:`DEFAULT_PORTFOLIO_METHODS`.
    """
    if not methods:
        methods = DEFAULT_PORTFOLIO_METHODS
    return tuple(EngineConfig(method=method, **common) for method in methods)


@dataclass
class CheckJob:
    """One property check, planned but not yet executed.

    ``index`` is the job's position in the campaign plan; executors must
    deliver results in index order so reports are deterministic
    regardless of execution strategy.

    ``module_digest`` is the SHA-256 of the module's emitted Verilog —
    the *module-level* slice of ``fingerprint``.  Jobs sharing a digest
    encode their transition relations over the same RTL, which is what
    makes them profitable to run against one shared BDD workspace
    manager (:mod:`repro.formal.workspace`); executors use it as the
    workspace key.

    ``engine_order`` is execution-time wiring set by a portfolio
    policy (:mod:`repro.orchestrate.policy`): a permutation of
    ``range(len(engines))`` giving the order stages are *attempted*.
    It is deliberately outside the fingerprint — attempt order changes
    the cost of reaching a verdict, never the verdict — so cache keys
    and checkpoint journals are identical whatever the policy.
    """

    index: int
    block: str
    module: Module
    vunit: VUnit
    assert_name: str
    category: str
    engines: Tuple[EngineConfig, ...]
    fingerprint: str
    module_digest: str = ""
    engine_order: Optional[Tuple[int, ...]] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.vunit.name}.{self.assert_name}"

    @property
    def workspace_key(self) -> str:
        """The key this job's checks share a BDD manager under."""
        return self.module_digest or self.module.name


@dataclass
class JobResult:
    """Outcome of one executed :class:`CheckJob`.

    Identification is carried as scalars (no module/vunit references),
    so PASS results ship back across the process boundary cheaply; a
    FAIL's :class:`CheckResult` still carries its replay-validated
    :class:`~repro.formal.trace.Trace` — including the transition
    system it replays on — which is what report consumers render for
    designer feedback."""

    index: int
    block: str
    module_name: str
    vunit_name: str
    assert_name: str
    category: str
    result: CheckResult
    cached: bool = False

    @property
    def qualified_name(self) -> str:
        return f"{self.vunit_name}.{self.assert_name}"


def engines_digest(engines: Tuple[EngineConfig, ...]) -> str:
    """Stable digest text of an engine portfolio."""
    return json.dumps([config.describe() for config in engines],
                      sort_keys=True)


def text_digest(text: str) -> str:
    """SHA-256 of one fingerprint component (module RTL, vunit PSL)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint_digests(module_digest: str, vunit_digest: str,
                        assert_name: str, engines_text: str) -> str:
    """Combine pre-hashed fingerprint components into the content key.

    The planner digests each module's Verilog and each vunit's PSL
    once (:func:`text_digest`) and reuses the digests across that
    module's assertions, so per-run fingerprint cost stays linear in
    design size rather than assertions × design size.
    """
    payload = "\n\x00\n".join([
        module_digest, vunit_digest, assert_name, engines_text,
    ])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def job_fingerprint(module: Module, vunit: VUnit, assert_name: str,
                    engines: Tuple[EngineConfig, ...]) -> str:
    """Content fingerprint of one check: module RTL (emitted Verilog),
    vunit PSL source, assertion name, and engine portfolio."""
    return fingerprint_digests(text_digest(emit_module(module)),
                               text_digest(vunit.emit()),
                               assert_name, engines_digest(engines))


def compile_job(job: CheckJob,
                design_cache: Optional[Dict[str, tuple]] = None):
    """Compile the job's assertion into a transition system, reusing an
    elaborated design across a module's consecutive jobs when a cache
    dict is supplied.

    The cache keeps only the most recent module's design: the planner
    emits each module's jobs contiguously, so one entry gives the same
    hit rate as keeping every design alive for the whole campaign.  A
    hit requires the cached entry to come from the *same module
    object* — two distinct modules may share a name (e.g. a golden and
    a patched variant in one plan), and checking one against the
    other's elaboration would corrupt verdicts.
    """
    design: Optional[FlatDesign] = None
    if design_cache is not None:
        entry = design_cache.get(job.module.name)
        if entry is not None and entry[0] is job.module:
            design = entry[1]
    if design is None:
        design = elaborate(job.module)
        if design_cache is not None:
            design_cache.clear()
            design_cache[job.module.name] = (job.module, design)
    return compile_assertion(job.module, job.vunit, job.assert_name,
                             design=design)


def run_check_job(job: CheckJob,
                  design_cache: Optional[Dict[str, tuple]] = None,
                  workspace: Optional[BddWorkspace] = None
                  ) -> JobResult:
    """Execute one check job: compile, then try each portfolio stage in
    order until one returns a definitive PASS/FAIL verdict.

    With a multi-stage portfolio the winning stage's result is reported
    (engine label prefixed ``portfolio:``) and every stage attempt is
    recorded in ``result.stats['portfolio']``; if no stage is
    definitive, the last stage's result (UNKNOWN/TIMEOUT) stands.

    ``workspace`` opts the job's BDD-family stages into shared-manager
    mode: the workspace is bound to the job's module key
    (``job.workspace_key``), so every stage — and every other job of
    the same module run against the same workspace — leases one
    hash-consed node table instead of rebuilding its universe cold.
    PASS/FAIL verdicts are workspace-invariant, and each stage still
    gets its own fresh :class:`~repro.formal.budget.ResourceBudget`
    charging only newly created nodes — so a warmed stage can settle a
    check whose node budget would trip cold, never the reverse
    (see :mod:`repro.orchestrate`).

    ``job.engine_order`` (set by a portfolio policy) permutes the
    *attempt* order only.  A definitive PASS/FAIL verdict is
    stage-order-invariant (every engine is sound); when no stage is
    definitive, the stage that is **last in the configured order** is
    reported whatever order the stages actually ran in — so a reordered
    portfolio returns the same status as the static one, and only
    ``result.stats['portfolio']`` (the attempt log) shows the policy
    at work.
    """
    if not job.engines:
        raise ValueError(f"job {job.qualified_name!r} has no engines")
    order = job.engine_order
    if order is None:
        order = tuple(range(len(job.engines)))
    elif sorted(order) != list(range(len(job.engines))):
        raise ValueError(
            f"job {job.qualified_name!r}: engine_order {order!r} is not "
            f"a permutation of the {len(job.engines)}-stage portfolio"
        )
    ts = compile_job(job, design_cache)
    binding = workspace.bind(job.workspace_key) \
        if workspace is not None else None
    attempts = []
    result = None
    fallback_position = -1
    for position in order:
        config = job.engines[position]
        options = config.options()
        if binding is not None:
            options = replace(options, workspace=binding)
        checker = ModelChecker(ts, budget=config.make_budget())
        stage = checker.check(method=config.method, options=options)
        attempts.append({"engine": config.method, "status": stage.status,
                         "seconds": stage.seconds})
        if stage.status in (PASS, FAIL):
            result = stage
            break
        # no stage definitive: report the stage that is last in the
        # *configured* order, exactly as a static-order run would
        if position > fallback_position:
            result, fallback_position = stage, position
    if len(job.engines) > 1:
        result.stats["portfolio"] = attempts
        result.engine = f"portfolio:{result.engine}"
        # the check cost every stage tried, not just the winning one
        result.seconds = sum(attempt["seconds"] for attempt in attempts)
    return JobResult(
        index=job.index,
        block=job.block,
        module_name=job.module.name,
        vunit_name=job.vunit.name,
        assert_name=job.assert_name,
        category=job.category,
        result=result,
        cached=False,
    )
