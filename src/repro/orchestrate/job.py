"""Check jobs — the unit of work of the campaign orchestrator.

One :class:`CheckJob` is a single property check: a leaf module, one of
its stereotype vunits, one asserted property, and the engine portfolio
to try.  Jobs are:

- **self-contained** — everything needed to run the check travels with
  the job, so an executor can run it in-process or ship it to a worker
  process (jobs and their results are picklable);
- **content-addressed** — :func:`job_fingerprint` hashes the module's
  emitted Verilog, the vunit's PSL text, the assertion name, and the
  engine portfolio, so an unchanged check always maps to the same key
  (the result cache's index, see :mod:`repro.orchestrate.cache`); the
  per-component digests also ride on the job (``module_digest``,
  ``vunit_digest``) and key the shared
  :class:`~repro.formal.problems.CompiledProblemStore` every compile
  path runs through;
- **engine-agnostic** — the portfolio is an ordered tuple of
  :class:`EngineConfig` stages tried until one returns a definitive
  PASS/FAIL verdict, generalising the old hardcoded ``auto`` fallback.

The module also owns the two serialization codecs of the job layer:

- :func:`encode_result` / :func:`decode_result` — one
  :class:`~repro.formal.engine.CheckResult` to/from a JSON-able entry,
  shared by the result cache, the checkpoint journal, and the
  executors' wire format, all enforcing the FAIL-must-replay rule;
- :func:`encode_job_result` / :func:`decode_job_result` — a whole
  :class:`JobResult` to/from a plain dict: the process-boundary wire
  format.  A FAIL's counterexample travels as its canonical input
  frames only (what report consumers render) instead of dragging the
  compiled transition system through the pickle; the receiving side
  recompiles through its :class:`CompiledProblemStore` and revalidates
  the trace by replay.  The same dict shape — alongside
  :meth:`CheckJob.spec` on the request side — is the wire format a
  future socket/SSH executor speaks.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, Optional, Tuple

from ..formal.budget import ResourceBudget
from ..formal.engine import (
    CheckResult, EngineOptions, FAIL, PASS, TIMEOUT, UNKNOWN, ModelChecker,
)
from ..formal.problems import CompiledProblemStore, content_digest
from ..formal.satspace import SatWorkspace
from ..formal.trace import Trace
from ..formal.workspace import BddWorkspace
from ..psl.ast import VUnit
from ..psl.compile import compile_assertion, compile_sliced_assertion
from ..rtl.module import Module
from ..rtl.verilog import emit_module


@dataclass(frozen=True)
class EngineConfig:
    """One engine invocation: method, tuning knobs, resource limits.

    ``sat_conflicts`` / ``bdd_nodes`` are the deterministic budget
    limits (``None`` = unlimited); a fresh :class:`ResourceBudget` is
    built per check so retries and portfolio stages never share spent
    counters.
    """

    method: str = "auto"
    max_bound: int = 60
    max_k: int = 40
    unique_states: bool = True
    num_window_vars: int = 2
    sat_conflicts: Optional[int] = None
    bdd_nodes: Optional[int] = None

    @classmethod
    def from_budget(cls, budget: Optional[ResourceBudget],
                    **overrides) -> "EngineConfig":
        """Build a config carrying ``budget``'s limits (not its spent
        counters) — the bridge from the legacy ``budget_factory`` API."""
        if budget is not None:
            overrides.setdefault("sat_conflicts", budget.sat_conflicts)
            overrides.setdefault("bdd_nodes", budget.bdd_nodes)
        return cls(**overrides)

    def make_budget(self) -> ResourceBudget:
        """A fresh budget carrying this config's limits — built once
        per check so stages and retries never share spent counters."""
        return ResourceBudget(sat_conflicts=self.sat_conflicts,
                              bdd_nodes=self.bdd_nodes)

    #: :class:`EngineOptions` fields that are execution-time wiring,
    #: not plan-level tuning knobs: they have no EngineConfig
    #: counterpart, are injected by the job runner, and stay out of
    #: fingerprints.  Every *other* option field must exist on the
    #: config — ``options()`` raises AttributeError otherwise, so a
    #: knob added to EngineOptions without its config counterpart
    #: fails loudly instead of silently defaulting.
    RUNTIME_OPTION_FIELDS = frozenset({"workspace", "sat_workspace"})

    def options(self) -> EngineOptions:
        """The :class:`EngineOptions` slice of this config — derived
        from the option dataclass's own fields, so a knob added there
        (and here) flows through dispatch and fingerprints without
        further bookkeeping.  :data:`RUNTIME_OPTION_FIELDS` keep their
        defaults — the job runner injects those at execution time."""
        return EngineOptions(**{
            f.name: getattr(self, f.name) for f in fields(EngineOptions)
            if f.name not in self.RUNTIME_OPTION_FIELDS
        })

    def describe(self) -> Dict[str, object]:
        """Stable, JSON-able description used in fingerprints.

        Runtime wiring (:data:`RUNTIME_OPTION_FIELDS`) is excluded: a
        shared node table changes the cost of a check, never a
        PASS/FAIL verdict, so it must not perturb content
        fingerprints — warmed and cold runs replay each other's cached
        results.
        """
        options = asdict(self.options())
        for name in self.RUNTIME_OPTION_FIELDS:
            options.pop(name, None)
        return {
            "method": self.method,
            "sat_conflicts": self.sat_conflicts,
            "bdd_nodes": self.bdd_nodes,
            **options,
        }


#: The default portfolio sequence: k-induction (fast on the inductive
#: parity invariants the methodology produces), then full BDD combined
#: traversal, then partitioned-ROBDD reachability as the last resort.
DEFAULT_PORTFOLIO_METHODS = ("kind", "bdd-combined", "pobdd")


def portfolio(*methods: str, **common) -> Tuple[EngineConfig, ...]:
    """Build an engine portfolio: one :class:`EngineConfig` per method,
    sharing the keyword tuning knobs (budget limits, bounds...).

    With no methods given, builds :data:`DEFAULT_PORTFOLIO_METHODS`.
    """
    if not methods:
        methods = DEFAULT_PORTFOLIO_METHODS
    return tuple(EngineConfig(method=method, **common) for method in methods)


@dataclass
class CheckJob:
    """One property check, planned but not yet executed.

    ``index`` is the job's position in the campaign plan; executors must
    deliver results in index order so reports are deterministic
    regardless of execution strategy.

    ``module_digest`` is the SHA-256 of the module's emitted Verilog —
    the *module-level* slice of ``fingerprint``.  Jobs sharing a digest
    encode their transition relations over the same RTL, which is what
    makes them profitable to run against one shared BDD workspace
    manager (:mod:`repro.formal.workspace`); executors use it as the
    workspace key.  ``vunit_digest`` is the matching SHA-256 of the
    vunit's PSL source; together with ``assert_name`` the two digests
    are the content key of the job's compiled problem in a
    :class:`~repro.formal.problems.CompiledProblemStore`.

    ``cone_digest`` is the assertion's cone-of-influence content hash
    (:mod:`repro.formal.coi`), stamped by the planner when the ``[coi]``
    section asks for cone fingerprints or slice compilation (empty
    otherwise).  With ``fingerprints = "cone"`` it replaces the module
    digest as the fingerprint's scope component, so two modules that
    agree on this assertion's cone share the job's cache/verdict-db
    key.  ``compile_slice`` asks :func:`compile_job` to build the
    transition system from the cone slice instead of the full module;
    like ``engine_order`` it is execution wiring outside the
    fingerprint — slicing changes the cost of a verdict, never the
    verdict (see :func:`run_check_job` for how FAIL counterexamples
    stay byte-identical).

    ``engine_order`` is execution-time wiring set by a portfolio
    policy (:mod:`repro.orchestrate.policy`): a permutation of
    ``range(len(engines))`` giving the order stages are *attempted*.
    It is deliberately outside the fingerprint — attempt order changes
    the cost of reaching a verdict, never the verdict — so cache keys
    and checkpoint journals are identical whatever the policy.
    """

    index: int
    block: str
    module: Module
    vunit: VUnit
    assert_name: str
    category: str
    engines: Tuple[EngineConfig, ...]
    fingerprint: str
    module_digest: str = ""
    vunit_digest: str = ""
    cone_digest: str = ""
    compile_slice: bool = False
    engine_order: Optional[Tuple[int, ...]] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.vunit.name}.{self.assert_name}"

    @property
    def workspace_key(self) -> str:
        """The key this job's checks share a BDD manager under."""
        return self.module_digest or self.module.name

    def spec(self) -> Dict[str, object]:
        """Portable, digest-bearing description of this job — plain
        JSON-able data, no module/vunit object graphs.

        This is the *request* half of the job wire format (the reply
        half is :func:`encode_job_result`): everything a remote
        executor host that already holds the design sources needs to
        identify, schedule, and key the check — content fingerprint,
        per-component digests, and the engine portfolio description —
        without pickling RTL across the socket.
        """
        return {
            "index": self.index,
            "block": self.block,
            "module": self.module.name,
            "vunit": self.vunit.name,
            "assert": self.assert_name,
            "category": self.category,
            "fingerprint": self.fingerprint,
            "module_digest": self.module_digest,
            "vunit_digest": self.vunit_digest,
            "cone_digest": self.cone_digest,
            "compile_slice": self.compile_slice,
            "engines": [config.describe() for config in self.engines],
            "engine_order": list(self.engine_order)
            if self.engine_order is not None else None,
        }


@dataclass
class JobResult:
    """Outcome of one executed :class:`CheckJob`.

    Identification is carried as scalars (no module/vunit references),
    so PASS results ship back across the process boundary cheaply; a
    FAIL's :class:`CheckResult` still carries its replay-validated
    :class:`~repro.formal.trace.Trace` — including the transition
    system it replays on — which is what report consumers render for
    designer feedback."""

    index: int
    block: str
    module_name: str
    vunit_name: str
    assert_name: str
    category: str
    result: CheckResult
    cached: bool = False

    @property
    def qualified_name(self) -> str:
        return f"{self.vunit_name}.{self.assert_name}"


def engines_digest(engines: Tuple[EngineConfig, ...]) -> str:
    """Stable digest text of an engine portfolio."""
    return json.dumps([config.describe() for config in engines],
                      sort_keys=True)


#: SHA-256 of one fingerprint component (module RTL, vunit PSL) — the
#: store's content digest, aliased: planner-stamped job digests and
#: store-derived fallback digests MUST come from one function, or a
#: divergence would turn every store lookup into a permanent miss
text_digest = content_digest


def fingerprint_digests(module_digest: str, vunit_digest: str,
                        assert_name: str, engines_text: str) -> str:
    """Combine pre-hashed fingerprint components into the content key.

    The planner digests each module's Verilog and each vunit's PSL
    once (:func:`text_digest`) and reuses the digests across that
    module's assertions, so per-run fingerprint cost stays linear in
    design size rather than assertions × design size.
    """
    payload = "\n\x00\n".join([
        module_digest, vunit_digest, assert_name, engines_text,
    ])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def job_fingerprint(module: Module, vunit: VUnit, assert_name: str,
                    engines: Tuple[EngineConfig, ...]) -> str:
    """Content fingerprint of one check: module RTL (emitted Verilog),
    vunit PSL source, assertion name, and engine portfolio."""
    return fingerprint_digests(text_digest(emit_module(module)),
                               text_digest(vunit.emit()),
                               assert_name, engines_digest(engines))


def compile_job(job: CheckJob,
                store: Optional[CompiledProblemStore] = None):
    """Compile the job's assertion into a transition system, through
    the content-addressed ``store`` when one is supplied.

    The store keys the elaborated design by the module's RTL digest
    and the compiled problem by ``(module digest, vunit digest,
    assert name)`` — so a module's many jobs share one elaboration,
    repeated decodes of the same assertion share one compile, and two
    distinct modules that happen to share a *name* (a golden and a
    patched variant planned together) can never be served each other's
    artifacts: equal digests mean byte-identical RTL by construction.
    Without a store the job compiles cold.

    A slice-stamped job (``job.compile_slice``, the ``[coi] slice``
    knob) compiles against its cone-of-influence slice instead of the
    full module: same verdict, smaller BDD/SAT problem on wide
    modules.  Through the store, slice problems are keyed by *cone*
    digest, so cone-equal jobs of different modules (a golden and its
    out-of-cone mutants) share one compile.
    """
    if job.compile_slice:
        if store is not None:
            return store.sliced_problem(
                job.module, job.vunit, job.assert_name,
                module_digest=job.module_digest or None,
                vunit_digest=job.vunit_digest or None,
                cone_digest=job.cone_digest or None,
            )
        return compile_sliced_assertion(job.module, job.vunit,
                                        job.assert_name)
    if store is None:
        return compile_assertion(job.module, job.vunit, job.assert_name)
    return store.problem(job.module, job.vunit, job.assert_name,
                         module_digest=job.module_digest or None,
                         vunit_digest=job.vunit_digest or None)


def run_check_job(job: CheckJob,
                  store: Optional[CompiledProblemStore] = None,
                  workspace: Optional[BddWorkspace] = None,
                  sat_workspace: Optional[SatWorkspace] = None
                  ) -> JobResult:
    """Execute one check job: compile (through ``store`` when given —
    see :func:`compile_job`), then try each portfolio stage in order
    until one returns a definitive PASS/FAIL verdict.

    Every stage attempt is recorded in ``result.stats['portfolio']``
    and ``result.seconds`` totals all attempted stages — uniformly,
    whatever the portfolio size, so single-stage runs keep the same
    attempt log multi-stage runs do.  With a multi-stage portfolio the
    winning stage's result is reported (engine label prefixed
    ``portfolio:`` — the label, unlike the attempt log, stays
    multi-stage-only because report canonicalization keys off it); if
    no stage is definitive, the last stage's result (UNKNOWN/TIMEOUT)
    stands.

    ``workspace`` opts the job's BDD-family stages into shared-manager
    mode: the workspace is bound to the job's module key
    (``job.workspace_key``), so every stage — and every other job of
    the same module run against the same workspace — leases one
    hash-consed node table instead of rebuilding its universe cold.
    PASS/FAIL verdicts are workspace-invariant, and each stage still
    gets its own fresh :class:`~repro.formal.budget.ResourceBudget`
    charging only newly created nodes — so a warmed stage can settle a
    check whose node budget would trip cold, never the reverse
    (see :mod:`repro.orchestrate`).

    ``sat_workspace`` is the SAT-family counterpart: the job binds its
    assertion into the shared workspace
    (:class:`~repro.formal.satspace.SatBinding`), sessions are
    materialised lazily only when a SAT-family stage actually runs (a
    BDD-only portfolio compiles no cluster), and the binding is retired
    — the assertion's activation literal permanently deactivated — when
    the job finishes, whatever the outcome.  Verdicts, depths, and
    counterexample bytes are workspace-invariant; note that unlike the
    BDD workspace's one-sided guarantee, a binding *conflict* budget can
    trip warm where it wouldn't cold (and vice versa) — campaign
    defaults keep it non-binding.

    ``job.engine_order`` (set by a portfolio policy) permutes the
    *attempt* order only.  A definitive PASS/FAIL verdict is
    stage-order-invariant (every engine is sound); when no stage is
    definitive, the stage that is **last in the configured order** is
    reported whatever order the stages actually ran in — so a reordered
    portfolio returns the same status as the static one, and only
    ``result.stats['portfolio']`` (the attempt log) shows the policy
    at work.
    """
    if not job.engines:
        raise ValueError(f"job {job.qualified_name!r} has no engines")
    order = job.engine_order
    if order is None:
        order = tuple(range(len(job.engines)))
    elif sorted(order) != list(range(len(job.engines))):
        raise ValueError(
            f"job {job.qualified_name!r}: engine_order {order!r} is not "
            f"a permutation of the {len(job.engines)}-stage portfolio"
        )
    ts = compile_job(job, store)
    binding = workspace.bind(job.workspace_key) \
        if workspace is not None else None
    sat_binding = sat_workspace.bind(
        job.module, job.vunit, job.assert_name,
        module_digest=job.module_digest, vunit_digest=job.vunit_digest,
        store=store,
    ) if sat_workspace is not None else None
    attempts = []
    result = None
    fallback_position = -1
    try:
        for position in order:
            config = job.engines[position]
            options = config.options()
            if binding is not None:
                options = replace(options, workspace=binding)
            if sat_binding is not None:
                options = replace(options, sat_workspace=sat_binding)
            checker = ModelChecker(ts, budget=config.make_budget())
            stage = checker.check(method=config.method, options=options)
            attempt = {"engine": config.method, "status": stage.status,
                       "seconds": stage.seconds}
            sat_stats = stage.stats.get("sat")
            if isinstance(sat_stats, dict):
                attempt["conflicts"] = sat_stats.get("conflicts", 0)
                attempt["propagations"] = sat_stats.get("propagations", 0)
            attempts.append(attempt)
            if stage.status in (PASS, FAIL):
                result = stage
                break
            # no stage definitive: report the stage that is last in the
            # *configured* order, exactly as a static-order run would
            if position > fallback_position:
                result, fallback_position = stage, position
    finally:
        if sat_binding is not None:
            sat_binding.retire()
    # the attempt log and the all-stages cost are recorded uniformly —
    # a single-stage portfolio keeps the same provenance a ladder does
    result.stats["portfolio"] = attempts
    result.seconds = sum(attempt["seconds"] for attempt in attempts)
    if job.compile_slice and result.status == FAIL \
            and result.trace is not None:
        _rederive_slice_fail(job, store, result)
    if len(job.engines) > 1:
        result.engine = f"portfolio:{result.engine}"
    return JobResult(
        index=job.index,
        block=job.block,
        module_name=job.module.name,
        vunit_name=job.vunit.name,
        assert_name=job.assert_name,
        category=job.category,
        result=result,
        cached=False,
    )


def _rederive_slice_fail(job: CheckJob,
                         store: Optional[CompiledProblemStore],
                         result: CheckResult) -> None:
    """Swap a slice-found counterexample for the full-compile one.

    Reports must be byte-identical with slicing on or off.  Verdicts
    and minimal depths are — the slice is behaviour-preserving on the
    property's cone — but the *model* a SAT/BDD search lands on can
    differ between the slice and the full compile (their internal
    variable orders differ even though input literals match), and
    FAIL canonical frames are part of report bytes.  So a slice-mode
    FAIL re-searches the full compile cold at the found depth — the
    exact derivation every non-slice FAIL trace ultimately comes from
    — and carries those frames instead.  If the re-search ever
    disagrees (it cannot, short of a cone-analysis bug), the sound
    slice trace stands rather than silently dropping a verdict.
    """
    from ..formal.bmc import bmc

    if store is not None:
        full_ts = store.problem(job.module, job.vunit, job.assert_name,
                                module_digest=job.module_digest or None,
                                vunit_digest=job.vunit_digest or None)
    else:
        full_ts = compile_assertion(job.module, job.vunit,
                                    job.assert_name)
    depth = result.depth if result.depth is not None \
        else result.trace.length - 1
    # no depth-equality requirement on the re-search: BDD engines
    # report their iteration bound, not the minimal counterexample
    # length, and the off-mode trace is whatever bmc(full, bound)
    # concretises — exactly what is reproduced here
    rerun = bmc(full_ts, depth)
    if rerun.failed and rerun.trace is not None:
        result.trace = rerun.trace
        result.stats["coi_rederived"] = True


# ----------------------------------------------------------------------
# serialization codecs
# ----------------------------------------------------------------------

_STATUSES = (PASS, FAIL, TIMEOUT, UNKNOWN)


def encode_result(result: CheckResult) -> dict:
    """Serialize one :class:`CheckResult` to a JSON-able entry (trace
    input frames included for FAIL, so the counterexample can be
    re-validated on the way back in).

    This is the one serialized-result dialect in the package: the
    result cache, the checkpoint journal, and the executors' process
    wire format all speak it, and :func:`decode_result` enforces the
    same FAIL-must-replay rule for all three.
    """
    trace_frames = None
    if result.trace is not None:
        trace_frames = result.trace.canonical_frames()
    return {
        "name": result.name,
        "status": result.status,
        "engine": result.engine,
        "depth": result.depth,
        "seconds": result.seconds,
        "stats": _jsonable(result.stats),
        "trace": trace_frames,
    }


def decode_result(entry: dict, job: CheckJob,
                  store: Optional[CompiledProblemStore] = None
                  ) -> CheckResult:
    """Rebuild a :class:`CheckResult` from a serialized entry.

    Raises on anything suspicious — unknown status, FAIL without a
    trace, a counterexample that no longer replays against the freshly
    compiled transition system — so callers degrade to a re-check
    instead of ever replaying a wrong verdict.  ``store`` amortises the
    FAIL-replay compiles: consecutive decodes of one module's entries
    share its elaborated design (and repeated decodes of one assertion
    share the compiled problem outright).
    """
    status = entry["status"]
    if status not in _STATUSES:
        raise ValueError(f"unknown cached status {status!r}")
    trace = None
    if status == FAIL:
        frames = entry["trace"]
        if not isinstance(frames, list) or not frames:
            raise ValueError("cached FAIL without a trace")
        ts = compile_job(job, store)
        trace = Trace(ts, [
            {int(lit): int(bit) & 1 for lit, bit in frame}
            for frame in frames
        ])
        if not trace.replay():
            raise ValueError("cached counterexample failed replay")
    stats = entry.get("stats")
    stats = dict(stats) if isinstance(stats, dict) else {}
    depth = entry.get("depth")
    return CheckResult(
        name=str(entry.get("name", job.qualified_name)),
        status=status,
        engine=str(entry.get("engine", "?")),
        depth=int(depth) if depth is not None else None,
        trace=trace,
        stats=stats,
        seconds=float(entry.get("seconds") or 0.0),
    )


def encode_job_result(job_result: JobResult) -> dict:
    """Serialize one :class:`JobResult` to the plain-dict wire form.

    Identification travels as scalars and the check outcome as
    :func:`encode_result`'s entry — for a FAIL that means the trace's
    canonical input frames, **not** the compiled transition system the
    in-process ``Trace`` object drags along.  A worker's result pickle
    therefore shrinks from the whole AIG to a few hundred bytes, and
    the same dict is ready to cross a socket for a future multi-host
    executor.
    """
    return {
        "index": job_result.index,
        "block": job_result.block,
        "module": job_result.module_name,
        "vunit": job_result.vunit_name,
        "assert": job_result.assert_name,
        "category": job_result.category,
        "result": encode_result(job_result.result),
    }


def decode_job_result(entry: dict, job: CheckJob,
                      store: Optional[CompiledProblemStore] = None
                      ) -> JobResult:
    """Rebuild a :class:`JobResult` from its wire form.

    ``job`` must be the plan's job for the entry's index (executors
    hold the plan, so re-pairing is a dict lookup).  FAIL outcomes are
    recompiled through ``store`` and their counterexamples revalidated
    by replay — the same never-a-wrong-verdict rule every other decode
    path enforces.
    """
    if entry.get("index") != job.index:
        raise ValueError(
            f"wire result index {entry.get('index')!r} does not match "
            f"job {job.index}"
        )
    return JobResult(
        index=job.index,
        block=str(entry.get("block", job.block)),
        module_name=str(entry.get("module", job.module.name)),
        vunit_name=str(entry.get("vunit", job.vunit.name)),
        assert_name=str(entry.get("assert", job.assert_name)),
        category=str(entry.get("category", job.category)),
        result=decode_result(entry["result"], job, store),
        cached=False,
    )


def _jsonable(value):
    """Best-effort conversion of engine stats to JSON-safe values."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
