"""Incremental result cache — fingerprint-keyed, on-disk, verdict-safe.

The cache maps a :func:`~repro.orchestrate.job.job_fingerprint` (a
content hash of module RTL + vunit PSL + assertion + engine portfolio)
to a serialized :class:`CheckResult`.  Because the key covers the full
input of the check, a hit can only replay a verdict for a byte-identical
problem; any edit to the RTL, the properties, or the engine
configuration changes the fingerprint and forces a re-check.  That is
what makes ECO regression incremental: only modules the ECO actually
touched miss the cache.

Safety rules, in order of importance:

1. **Never a wrong verdict.**  Anything suspicious — unreadable file,
   unknown status, malformed trace — degrades to a cache *miss* and the
   property is re-checked from scratch.  The store also records the
   ``repro`` package version and is discarded wholesale on mismatch,
   since the fingerprint covers engine *configuration* but not engine
   *implementation*.  The one hole left open: a custom engine
   registered at runtime that changes behaviour under the same name
   and package version — delete the cache file after changing one.
2. **Counterexamples stay validated.**  A cached FAIL stores the trace's
   input frames; on a hit the assertion is recompiled, the trace is
   rebuilt against the fresh transition system, and it must replay as a
   real violation — otherwise the entry is discarded as a miss.
3. **Cheap hits.**  PASS/TIMEOUT/UNKNOWN hits skip compilation and the
   engines entirely; only FAIL hits pay one compile for trace replay.

The store is a single JSON file, loaded on construction and written by
:meth:`ResultCache.flush` (the orchestrator flushes once per run).
Flush stages the payload in a uniquely-named temp file (pid + random
suffix) before the atomic rename, so concurrent campaigns sharing one
cache path can flush simultaneously: last writer wins, and the store on
disk is always one writer's complete, valid JSON.

``max_entries`` bounds the store: entries are kept in
least-recently-used order (a hit refreshes recency, so a nightly ECO
rerun keeps the live design's verdicts and ages out abandoned
revisions), and storing past the cap evicts the coldest entries.  The
JSON object's key order *is* the LRU order, so eviction pressure
carries across runs, and a store larger than a (newly lowered) cap is
trimmed on load.  Neither recency refreshes nor the load-trim dirty
the store by themselves: a hits-only campaign still writes nothing on
flush, so a purely-reading run can never clobber a concurrent writer's
fresh entries with its own stale snapshot (order updates and the trim
persist whenever the run also stores something).

The entry codec — :func:`encode_result` / :func:`decode_result` — is
shared with the campaign checkpoint journal
(:mod:`repro.orchestrate.checkpoint`): both persistence layers speak
the same serialized-:class:`CheckResult` dialect and enforce the same
FAIL-must-replay rule.
"""

from __future__ import annotations

import json
import os
import uuid
from typing import Dict, Optional

from .. import __version__
from ..formal.engine import CheckResult, FAIL, PASS, TIMEOUT, UNKNOWN
from ..formal.trace import Trace
from .job import CheckJob, compile_job

_STATUSES = (PASS, FAIL, TIMEOUT, UNKNOWN)


def encode_result(result: CheckResult) -> dict:
    """Serialize one :class:`CheckResult` to a JSON-able entry (trace
    input frames included for FAIL, so the counterexample can be
    re-validated on the way back in)."""
    trace_frames = None
    if result.trace is not None:
        trace_frames = result.trace.canonical_frames()
    return {
        "name": result.name,
        "status": result.status,
        "engine": result.engine,
        "depth": result.depth,
        "seconds": result.seconds,
        "stats": _jsonable(result.stats),
        "trace": trace_frames,
    }


def decode_result(entry: dict, job: CheckJob,
                  design_cache: Optional[dict] = None) -> CheckResult:
    """Rebuild a :class:`CheckResult` from a serialized entry.

    Raises on anything suspicious — unknown status, FAIL without a
    trace, a counterexample that no longer replays against the freshly
    compiled transition system — so callers degrade to a re-check
    instead of ever replaying a wrong verdict.
    """
    status = entry["status"]
    if status not in _STATUSES:
        raise ValueError(f"unknown cached status {status!r}")
    trace = None
    if status == FAIL:
        frames = entry["trace"]
        if not isinstance(frames, list) or not frames:
            raise ValueError("cached FAIL without a trace")
        ts = compile_job(job, design_cache)
        trace = Trace(ts, [
            {int(lit): int(bit) & 1 for lit, bit in frame}
            for frame in frames
        ])
        if not trace.replay():
            raise ValueError("cached counterexample failed replay")
    stats = entry.get("stats")
    stats = dict(stats) if isinstance(stats, dict) else {}
    depth = entry.get("depth")
    return CheckResult(
        name=str(entry.get("name", job.qualified_name)),
        status=status,
        engine=str(entry.get("engine", "?")),
        depth=int(depth) if depth is not None else None,
        trace=trace,
        stats=stats,
        seconds=float(entry.get("seconds") or 0.0),
    )


class ResultCache:
    """On-disk JSON store of check results keyed by content fingerprint.

    ``max_entries`` caps the store at that many entries, evicted in
    least-recently-used order (``None`` = unbounded, the historical
    behaviour).  Lookup hits refresh recency; eviction happens on
    :meth:`store` and, when the cap shrank between runs, on load.
    """

    VERSION = 1

    def __init__(self, path: str,
                 max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.path = str(path)
        self.max_entries = max_entries
        self._entries: Dict[str, dict] = self._load()
        self._dirty = False
        # a store larger than the cap (the cap shrank between runs) is
        # trimmed in memory only — the trim reaches disk when this run
        # stores something, so a hits-only reader stays a reader and
        # cannot clobber a concurrent writer's store with its snapshot
        self._evict()

    # ------------------------------------------------------------------
    def _load(self) -> Dict[str, dict]:
        """Read the store; any corruption degrades to an empty cache."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict) or raw.get("version") != self.VERSION \
                or raw.get("repro_version") != __version__:
            return {}
        entries = raw.get("entries")
        if not isinstance(entries, dict):
            return {}
        return {key: value for key, value in entries.items()
                if isinstance(value, dict)}

    def flush(self) -> None:
        """Persist the store (atomic rename) if anything changed.

        The temp file name is unique per flush (pid + random suffix):
        two campaigns sharing one cache path may flush concurrently,
        and each rename atomically installs one writer's complete
        store — never an interleaving of both.
        """
        if not self._dirty:
            return
        payload = {"version": self.VERSION, "repro_version": __version__,
                   "entries": self._entries}
        tmp_path = f"{self.path}.tmp.{os.getpid()}.{uuid.uuid4().hex}"
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, default=repr)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self._dirty = False

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def _evict(self) -> int:
        """Trim the store to ``max_entries``, oldest (least recently
        stored/hit) first; returns how many entries were dropped."""
        if self.max_entries is None:
            return 0
        dropped = 0
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))
            dropped += 1
        return dropped

    # ------------------------------------------------------------------
    def store(self, fingerprint: str, result: CheckResult) -> None:
        """Record one result (trace frames included for FAIL) at the
        most-recent end, evicting past ``max_entries``."""
        self._entries.pop(fingerprint, None)
        self._entries[fingerprint] = encode_result(result)
        self._evict()
        self._dirty = True

    # ------------------------------------------------------------------
    def lookup(self, fingerprint: str, job: CheckJob,
               design_cache: Optional[dict] = None
               ) -> Optional[CheckResult]:
        """Return the cached :class:`CheckResult` for ``fingerprint``,
        or ``None`` (a miss) when absent or not provably sound.

        On a bounded cache a hit refreshes the entry's recency
        in-memory — without dirtying the store, so hits alone never
        cause a flush to rewrite (and potentially clobber) a shared
        store; the refreshed order is persisted whenever this run also
        stores something.
        """
        entry = self._entries.get(fingerprint)
        if entry is None:
            return None
        try:
            result = decode_result(entry, job, design_cache)
            if self.max_entries is not None:
                self._entries.pop(fingerprint)
                self._entries[fingerprint] = entry
            return result
        except Exception:
            # malformed entry, unknown signal, failed replay... — all
            # degrade to a miss and an eviction, never a wrong verdict
            self._entries.pop(fingerprint, None)
            self._dirty = True
            return None


def _jsonable(value):
    """Best-effort conversion of engine stats to JSON-safe values."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
