"""Incremental result cache — fingerprint-keyed, on-disk, verdict-safe.

The cache maps a :func:`~repro.orchestrate.job.job_fingerprint` (a
content hash of module RTL + vunit PSL + assertion + engine portfolio)
to a serialized :class:`CheckResult`.  Because the key covers the full
input of the check, a hit can only replay a verdict for a byte-identical
problem; any edit to the RTL, the properties, or the engine
configuration changes the fingerprint and forces a re-check.  That is
what makes ECO regression incremental: only modules the ECO actually
touched miss the cache.

Safety rules, in order of importance:

1. **Never a wrong verdict.**  Anything suspicious — unreadable file,
   unknown status, malformed trace — degrades to a cache *miss* and the
   property is re-checked from scratch.  The store also records the
   ``repro`` package version and is discarded wholesale on mismatch,
   since the fingerprint covers engine *configuration* but not engine
   *implementation*.  The one hole left open: a custom engine
   registered at runtime that changes behaviour under the same name
   and package version — delete the cache file after changing one.
2. **Counterexamples stay validated.**  A cached FAIL stores the trace's
   input frames; on a hit the assertion is recompiled, the trace is
   rebuilt against the fresh transition system, and it must replay as a
   real violation — otherwise the entry is discarded as a miss.
3. **Cheap hits.**  PASS/TIMEOUT/UNKNOWN hits skip compilation and the
   engines entirely; only FAIL hits pay one compile for trace replay.

The store is a single JSON file, loaded on construction and written by
:meth:`ResultCache.flush` (the orchestrator flushes once per run).
Flush **merges before it writes**: the on-disk store is re-read and
unioned with this run's entries — recency-preserving (the JSON key
order is the LRU order on both sides), newest verdict wins per
fingerprint (entries carry a ``stored_at`` wall-clock stamp; a missing
stamp counts as oldest) — and the merged store is staged in a
uniquely-named temp file (pid + random suffix) before the atomic
rename.  The whole read-merge-rename runs under an ``fcntl.flock``
exclusive lock on a ``<path>.lock`` sidecar, so two campaigns flushing
*simultaneously* serialize: each one's re-read sees the other's
completed rename, and neither can clobber the other's final round (the
pre-lock race both renames could lose).  Two concurrent campaigns
sharing one cache path therefore both keep their fresh verdicts
whatever order their flushes land in; the store on disk is always one
writer's complete, valid JSON.  The sidecar itself is removed after a
successful flush (under the held lock, with an inode re-check on
acquisition so rivals never trust a lock on an unlinked file) — stale
sidecars left by a killed flush are tolerated and cleaned up by the
next one.  (On platforms without ``fcntl`` the
lock degrades to the unlocked merge — still safe for sequential and
overlapped campaigns, vulnerable only to the simultaneous-rename
race.)  The one exception to the union: entries this cache evicted as
*unsafe* (failed replay, malformed) are tombstoned for the lifetime of
this instance and not resurrected from disk — unless the disk entry
was stored *after* the eviction, in which case it is a rival
campaign's fresh re-verified verdict, not the corpse, and survives the
merge.

``max_entries`` bounds the store: entries are kept in
least-recently-used order (a hit refreshes recency, so a nightly ECO
rerun keeps the live design's verdicts and ages out abandoned
revisions), and storing past the cap evicts the coldest entries.  The
JSON object's key order *is* the LRU order, so eviction pressure
carries across runs, and a store larger than a (newly lowered) cap is
trimmed on load.  Neither recency refreshes nor the load-trim dirty
the store by themselves: a hits-only campaign still writes nothing on
flush, so a purely-reading run can never clobber a concurrent writer's
fresh entries with its own stale snapshot (order updates and the trim
persist whenever the run also stores something).

The entry codec — :func:`~repro.orchestrate.job.encode_result` /
:func:`~repro.orchestrate.job.decode_result`, re-exported here — is
shared with the campaign checkpoint journal
(:mod:`repro.orchestrate.checkpoint`) and the executors' process wire
format: every persistence and transport layer speaks the same
serialized-:class:`CheckResult` dialect and enforces the same
FAIL-must-replay rule.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
import uuid
from typing import Dict, Optional, Tuple

try:
    import fcntl
except ImportError:  # non-POSIX: flush degrades to the unlocked merge
    fcntl = None

from .. import __version__
from ..formal.engine import CheckResult, FAIL, PASS
from .job import CheckJob, decode_result, encode_result  # noqa: F401



class ResultCache:
    """On-disk JSON store of check results keyed by content fingerprint.

    ``max_entries`` caps the store at that many entries, evicted in
    least-recently-used order (``None`` = unbounded, the historical
    behaviour).  Lookup hits refresh recency; eviction happens on
    :meth:`store` and, when the cap shrank between runs, on load.
    """

    VERSION = 1

    def __init__(self, path: str,
                 max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.path = str(path)
        self.max_entries = max_entries
        self._entries: Dict[str, dict] = self._load()
        self._dirty = False
        #: fingerprint -> eviction time for entries evicted as *unsafe*
        #: (failed replay, malformed); a flush-merge must not
        #: resurrect the evicted entry from disk — but a rival
        #: campaign's entry written *after* the eviction is a fresh
        #: verdict, not the corpse, and survives
        self._tombstones: Dict[str, float] = {}
        # a store larger than the cap (the cap shrank between runs) is
        # trimmed in memory only — the trim reaches disk when this run
        # stores something, so a hits-only reader stays a reader and
        # cannot clobber a concurrent writer's store with its snapshot
        self._evict()

    # ------------------------------------------------------------------
    def _load(self) -> Dict[str, dict]:
        """Read the store; any corruption degrades to an empty cache."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict) or raw.get("version") != self.VERSION \
                or raw.get("repro_version") != __version__:
            return {}
        entries = raw.get("entries")
        if not isinstance(entries, dict):
            return {}
        return {key: value for key, value in entries.items()
                if isinstance(value, dict)}

    def flush(self) -> None:
        """Merge with the on-disk store, then persist atomically.

        A shared cache path may have been flushed by a concurrent
        campaign since this cache loaded its snapshot; writing the
        snapshot back verbatim would discard that campaign's fresh
        verdicts (last-writer-wins data loss).  Flush therefore
        re-reads the store and merges — union of both entry sets,
        recency order preserved (disk's colder entries first, the
        newest entry per fingerprint at its most-recent position),
        newest ``stored_at`` winning when both sides hold the same
        fingerprint — before the atomic rename.  Unsafe entries this
        instance tombstoned are excluded from the union, and the LRU
        cap is re-applied to the merged store.

        The read-merge-rename runs under an exclusive ``fcntl.flock``
        on the ``<path>.lock`` sidecar, serializing simultaneous
        flushes: each writer's re-read happens after its rival's rename
        completed, so neither campaign's final round can be lost.  The
        temp file name is additionally unique per flush (pid + random
        suffix), so even on platforms where the lock is unavailable
        each rename atomically installs one writer's complete merged
        store — never an interleaving of both.
        """
        if not self._dirty:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with self._flush_lock():
            self._entries = self._merge(self._load(), self._entries)
            self._evict()
            payload = {"version": self.VERSION,
                       "repro_version": __version__,
                       "entries": self._entries}
            tmp_path = f"{self.path}.tmp.{os.getpid()}.{uuid.uuid4().hex}"
            try:
                with open(tmp_path, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, default=repr)
                os.replace(tmp_path, self.path)
            except BaseException:
                try:
                    os.remove(tmp_path)
                except OSError:
                    pass
                raise
        self._dirty = False

    @contextlib.contextmanager
    def _flush_lock(self):
        """Exclusive advisory lock over the flush's read-merge-rename.

        Taken on a ``<path>.lock`` sidecar (never the store itself —
        the store is replaced by rename, which would leak the lock to a
        dead inode).  ``fcntl.flock`` locks the open file description,
        so threads sharing a process and campaigns in separate
        processes serialize alike.  Degrades to no locking where
        ``fcntl`` does not exist.

        The sidecar is debris the campaign's owner should never have to
        clean up, so a successful flush removes it — *while still
        holding the lock*, which makes the unlink safe: a rival that
        opened the old path before the unlink acquires a lock on a
        dead inode, detects that (the on-disk stat no longer matches
        its handle) and retries on the fresh file.  A flush that dies
        mid-write leaves the sidecar behind; the next flush locks the
        stale file and cleans it up in turn, so pre-existing debris is
        tolerated, not fatal.
        """
        if fcntl is None:
            yield
            return
        lock_path = f"{self.path}.lock"
        while True:
            lock_handle = open(lock_path, "a+")
            try:
                fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
                try:
                    on_disk = os.stat(lock_path)
                except OSError:
                    # unlinked by the rival we just waited on — this
                    # lock guards a dead inode, take a fresh one
                    lock_handle.close()
                    continue
                held = os.fstat(lock_handle.fileno())
                if (on_disk.st_ino, on_disk.st_dev) != \
                        (held.st_ino, held.st_dev):
                    lock_handle.close()
                    continue
                break
            except BaseException:
                lock_handle.close()
                raise
        try:
            yield
            # success: remove the sidecar under the held lock (rivals
            # blocked on this inode re-check and retry, see above); a
            # racing unlink losing to a rival's is equally fine
            try:
                os.unlink(lock_path)
            except OSError:
                pass
        finally:
            fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)
            lock_handle.close()

    def _merge(self, disk: Dict[str, dict],
               ours: Dict[str, dict]) -> Dict[str, dict]:
        """Union ``disk`` (a concurrent writer's store) with ``ours``,
        recency-preserving, newest verdict winning per fingerprint."""
        merged: Dict[str, dict] = {
            fingerprint: entry for fingerprint, entry in disk.items()
            if _stored_at(entry) > self._tombstones.get(fingerprint,
                                                        -1.0)
        }
        for fingerprint, entry in ours.items():
            rival = merged.pop(fingerprint, None)
            if rival is not None and _stored_at(rival) > _stored_at(entry):
                entry = rival
            merged[fingerprint] = entry
        return merged

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def _evict(self) -> int:
        """Trim the store to ``max_entries``, oldest (least recently
        stored/hit) first; returns how many entries were dropped."""
        if self.max_entries is None:
            return 0
        dropped = 0
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))
            dropped += 1
        return dropped

    # ------------------------------------------------------------------
    def store(self, fingerprint: str, result: CheckResult,
              job: Optional[CheckJob] = None) -> None:
        """Record one result (trace frames included for FAIL) at the
        most-recent end, evicting past ``max_entries``.

        Entries are stamped with a wall-clock ``stored_at`` (what
        flush-merge arbitrates concurrent writers by) and, when the
        producing ``job`` is given, with its module name and property
        category — the key the adaptive portfolio policy's engine
        history (:meth:`engine_history`) is aggregated under.
        """
        entry = encode_result(result)
        entry["stored_at"] = time.time()
        if job is not None:
            entry["module"] = job.module.name
            entry["category"] = job.category
            if job.cone_digest:
                # provenance: which cone this verdict was keyed under
                # (cone-fingerprinted entries are shared across
                # cone-equal modules — see repro.formal.coi)
                entry["cone"] = job.cone_digest
        self._entries.pop(fingerprint, None)
        self._tombstones.pop(fingerprint, None)
        self._entries[fingerprint] = entry
        self._evict()
        self._dirty = True

    # ------------------------------------------------------------------
    def engine_history(self) -> Dict[Tuple[Optional[str], str], str]:
        """Historical winning engines, from the cached verdicts.

        Returns ``{(module name, category): method}`` — the portfolio
        stage (or single engine) that most recently produced a
        definitive PASS/FAIL for that module/category — plus
        category-wide fallbacks under ``(None, category)``.  Entries
        are scanned in recency order, so the newest verdict wins; this
        is what :class:`~repro.orchestrate.policy.AdaptivePortfolio`
        seeds its attempt ordering from.
        """
        history: Dict[Tuple[Optional[str], str], str] = {}
        for entry in self._entries.values():
            method = _winning_method(entry)
            if method is None:
                continue
            category = entry.get("category")
            if not isinstance(category, str):
                continue
            history[(None, category)] = method
            module = entry.get("module")
            if isinstance(module, str):
                history[(module, category)] = method
        return history

    # ------------------------------------------------------------------
    def lookup(self, fingerprint: str, job: CheckJob,
               store=None) -> Optional[CheckResult]:
        """Return the cached :class:`CheckResult` for ``fingerprint``,
        or ``None`` (a miss) when absent or not provably sound.

        ``store`` (a :class:`~repro.formal.problems.CompiledProblemStore`)
        amortises the FAIL-replay compiles across lookups.  On a
        bounded cache a hit refreshes the entry's recency in-memory —
        without dirtying the store, so hits alone never cause a flush
        to rewrite (and potentially clobber) a shared store; the
        refreshed order is persisted whenever this run also stores
        something.
        """
        entry = self._entries.get(fingerprint)
        if entry is None:
            return None
        try:
            result = decode_result(entry, job, store)
            if self.max_entries is not None:
                self._entries.pop(fingerprint)
                self._entries[fingerprint] = entry
            return result
        except Exception:
            # malformed entry, unknown signal, failed replay... — all
            # degrade to a miss and an eviction, never a wrong verdict
            # (tombstoned so flush-merge cannot resurrect it from disk)
            self._entries.pop(fingerprint, None)
            self._tombstones[fingerprint] = time.time()
            self._dirty = True
            return None


def _stored_at(entry: dict) -> float:
    """An entry's write timestamp; entries from before the stamp was
    introduced (or mangled ones) count as oldest."""
    value = entry.get("stored_at")
    return float(value) if isinstance(value, (int, float)) \
        and not isinstance(value, bool) else 0.0


def _winning_method(entry: dict) -> Optional[str]:
    """The portfolio stage (or engine) that settled a cached entry,
    or ``None`` for non-definitive / unintelligible entries."""
    if entry.get("status") not in (PASS, FAIL):
        return None
    stats = entry.get("stats")
    attempts = stats.get("portfolio") if isinstance(stats, dict) else None
    if isinstance(attempts, list) and attempts:
        last = attempts[-1]
        if isinstance(last, dict) and isinstance(last.get("engine"), str):
            return last["engine"]
        return None
    engine = entry.get("engine")
    if not isinstance(engine, str) or not engine:
        return None
    # "portfolio:auto:kind" -> "auto:kind" -> stage method "auto"
    if engine.startswith("portfolio:"):
        engine = engine[len("portfolio:"):]
    return engine.split(":", 1)[0] or None
