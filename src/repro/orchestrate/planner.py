"""Campaign planning: walk the chip once, emit a flat job list.

The planner replaces the old triple-nested loop inside
``FormalCampaign.run`` (blocks → modules → vunits → asserts) with a
single pass that scopes every module, lints the Verifiable RTL,
generates the stereotype vunits, and materialises one :class:`CheckJob`
per asserted property.  The resulting :class:`CampaignPlan` is the
orchestrator's ground truth: job order *is* report order, whatever
executor later runs the jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.leaf import ScopeEntry, classify
from ..core.stereotypes import stereotype_vunits
from ..formal.coi import index_module
from ..rtl.lint import LintIssue, lint_verifiable
from ..rtl.module import Module
from ..rtl.verilog import emit_module
from .job import (
    CheckJob, EngineConfig, engines_digest, fingerprint_digests,
    text_digest,
)

#: valid values of the ``[coi] fingerprints`` knob
COI_FINGERPRINT_MODES = ("module", "cone")

Blocks = Sequence[Tuple[str, Sequence[Module]]]


@dataclass
class CampaignPlan:
    """Everything the orchestrator needs to run and aggregate a campaign."""

    jobs: List[CheckJob] = field(default_factory=list)
    lint_issues: List[LintIssue] = field(default_factory=list)
    #: block name -> number of in-scope leaf modules (Table 2 column)
    submodules: Dict[str, int] = field(default_factory=dict)
    #: blocks in walk order (blocks with zero in-scope modules included)
    block_order: List[str] = field(default_factory=list)
    #: scoping decisions for modules excluded from the formal scope
    skipped: List[ScopeEntry] = field(default_factory=list)

    @property
    def total_jobs(self) -> int:
        return len(self.jobs)

    def modules_planned(self) -> List[str]:
        """Distinct module names with at least one job, in plan order."""
        seen: Dict[str, None] = {}
        for job in self.jobs:
            seen.setdefault(job.module.name, None)
        return list(seen)

    def module_groups(self) -> Dict[str, List[int]]:
        """Job indices grouped by module fingerprint, in plan order.

        The planner emits each module's jobs contiguously, so every
        group is a contiguous index run.  Jobs in one group share a
        module digest, hence a variable numbering, hence a profitable
        shared BDD manager.  Each job carries the group key as
        ``CheckJob.workspace_key``, and this grouping is the
        module-affinity scheduling unit: with
        ``scheduling = "module-affinity"`` the work-stealing executor
        hands one group per queue pull
        (:class:`~repro.orchestrate.policy.ModuleAffinityScheduling`),
        keeping one module's manager hot on one worker.
        """
        groups: Dict[str, List[int]] = {}
        for job in self.jobs:
            groups.setdefault(job.workspace_key, []).append(job.index)
        return groups


def plan_campaign(blocks: Blocks, engines: Tuple[EngineConfig, ...],
                  lint: bool = True,
                  coi_fingerprints: str = "module",
                  coi_slice: bool = False) -> CampaignPlan:
    """Walk ``blocks`` once and produce the flat, ordered job list.

    Scoping, lint order, and job order exactly mirror the legacy
    serial walk, so a serial replay of the plan reproduces the old
    ``FormalCampaign`` report byte for byte.

    ``coi_fingerprints`` picks the job-identity scope: ``"module"``
    keys every job by the whole-module digest (the legacy behaviour),
    ``"cone"`` keys it by the assertion's cone-of-influence digest
    (:mod:`repro.formal.coi`) — so two modules that agree on one
    assertion's cone share that job's fingerprint, and a one-site
    mutant re-checks only the cone-touching subset of its jobs.
    ``coi_slice`` stamps the jobs for slice compilation (the
    ``TransitionSystem`` is built from the cone slice instead of the
    full module).  Either option computes one cone index per module at
    plan time — a single monitor-free elaboration, amortised across
    the module's assertions.
    """
    if coi_fingerprints not in COI_FINGERPRINT_MODES:
        raise ValueError(
            f"coi_fingerprints must be one of {COI_FINGERPRINT_MODES}, "
            f"got {coi_fingerprints!r}"
        )
    need_cones = coi_fingerprints == "cone" or coi_slice
    plan = CampaignPlan()
    engines_text = engines_digest(engines)
    index = 0
    for block_name, modules in blocks:
        if block_name not in plan.submodules:
            plan.block_order.append(block_name)
            plan.submodules[block_name] = 0
        for module in modules:
            entry = classify(module)
            if not entry.in_scope:
                plan.skipped.append(entry)
                continue
            plan.submodules[block_name] += 1
            if lint:
                plan.lint_issues.extend(lint_verifiable(module))
            module_digest = text_digest(emit_module(module))
            cone_index = index_module(module) if need_cones else None
            for vunit in stereotype_vunits(module):
                vunit_digest = text_digest(vunit.emit())
                for assert_name, _ in vunit.asserted():
                    cone = "" if cone_index is None else \
                        cone_index.info(vunit, assert_name).digest
                    # the "coi:" prefix keeps the two addressing
                    # schemes from ever aliasing in a shared store
                    scope_digest = module_digest \
                        if coi_fingerprints == "module" \
                        else f"coi:{cone}"
                    plan.jobs.append(CheckJob(
                        index=index,
                        block=block_name,
                        module=module,
                        vunit=vunit,
                        assert_name=assert_name,
                        category=vunit.category,
                        engines=engines,
                        fingerprint=fingerprint_digests(
                            scope_digest, vunit_digest, assert_name,
                            engines_text
                        ),
                        module_digest=module_digest,
                        vunit_digest=vunit_digest,
                        cone_digest=cone,
                        compile_slice=coi_slice,
                    ))
                    index += 1
    return plan
