"""Job executors: serial, chunked multiprocessing, and work-stealing.

An executor is anything with a ``name`` and a ``map(jobs)`` method that
yields one :class:`JobResult` per job **in job-index order**.  The
ordering contract is what makes every execution strategy produce the
same report: the orchestrator aggregates results as they stream out,
so serial, process-parallel, and any future distributed executor are
interchangeable without touching aggregation or report rendering.
(``tests/test_executor_contract.py`` is the executable form of the
contract — any new executor must pass that battery unchanged.)

``ParallelExecutor`` ships pickled jobs to a ``multiprocessing`` pool
and relies on ``imap`` (ordered, lazy) to restore plan order.  Each
worker keeps a per-process elaboration cache so consecutive jobs of the
same module (the planner emits them contiguously) share one flattened
design, mirroring the serial executor's reuse.

``WorkStealingExecutor`` replaces ``imap``'s static chunking with a
shared job queue that idle workers pull from one job at a time: a
straggler check pins one worker while the rest keep draining the queue,
instead of idling the pool behind a slow chunk.  Results come back
unordered and are reassembled into plan order by the parent, so the
streaming contract is preserved bit for bit.

Shared BDD workspaces
---------------------

Every executor takes ``share_bdd=True`` to run its jobs against a
:class:`~repro.formal.workspace.BddWorkspace`: BDD-family engine stages
lease a per-module hash-consed manager instead of building their node
table from scratch, so the many jobs of one module (the planner emits
them contiguously; ``CampaignPlan.module_groups()`` shows the
grouping) reuse each other's nodes and operation memos.  PASS/FAIL verdicts are
sharing-invariant, and while no BDD-node budget trips (the default
regime) ``CampaignReport.canonical_bytes`` is identical with sharing
on or off; a *binding* node budget is the one exception — a warmed
manager is charged only fresh nodes, so a check that would TIMEOUT
cold may complete warm (see :mod:`repro.orchestrate` for the full
contract).

Workspace scope follows worker scope, keeping sharing lock-free:

- ``SerialExecutor`` — one workspace for the whole run (pass
  ``workspace=`` to keep one warm across *runs*);
- ``ParallelExecutor`` / ``WorkStealingExecutor`` — one private
  workspace per worker process, created by the worker itself (managers
  hold megabytes of node tables and never cross process boundaries).
  Affinity is best-effort, from plan contiguity alone: a pool chunk
  holds consecutive (mostly same-module) jobs, but chunk boundaries
  are size-based and can split a module's group across workers, and
  the work-stealing pool interleaves modules freely — so every worker
  retains a small LRU pool of managers
  (``BddWorkspace(max_managers=...)``) rather than relying on strict
  pinning.  (Module-batched scheduling over
  ``CampaignPlan.module_groups()`` is an open ROADMAP item.)

Every executor forwards ``workspace_options`` (a kwargs dict for the
:class:`~repro.formal.workspace.BddWorkspace` constructor) to the
workspaces it creates, so the memory valves — ``max_managers``,
``retain_memos``, ``max_manager_nodes`` — are tunable on long
campaigns: e.g. ``WorkStealingExecutor(share_bdd=True,
workspace_options={"max_manager_nodes": 500_000,
"retain_memos": False})``.

Shared SAT workspaces
---------------------

``share_sat=True`` is the SAT-family counterpart: jobs run against a
:class:`~repro.formal.satspace.SatWorkspace`, so ``bmc``/``kind``
stages query shared incremental solver sessions — clustered
per-(module, vunit) CNFs, retained time-frame encodings, learned
clauses surviving across assertions under per-assertion activation
literals — instead of building cold solvers (``sat_options`` forwards
the constructor kwargs: ``cluster_limit``, ``max_sessions``,
``max_session_clauses``).  Verdicts, depths, and counterexample bytes
are sharing-invariant (failing traces are re-derived cold on the solo
compile), so ``CampaignReport.canonical_bytes`` is identical with
sharing on or off; like the BDD workspace, the one exception is a
*binding* budget — and unlike the BDD case the effect is two-sided,
since retained clauses can steer CDCL search either way.  Scope follows
worker scope exactly as for BDD workspaces: serial executors hold one
workspace (or accept an explicit ``sat_workspace=`` to keep sessions
warm across runs), pool workers each build their own.
``executor.sat_stats()`` aggregates the counters after a ``map``; the
orchestrator surfaces them in ``report.stats["sat_workspace"]``
(``workspace_stats()`` / ``report.stats["bdd_workspace"]`` do the same
for the BDD side).

Compiled-problem stores
-----------------------

Alongside its workspace, every worker holds a content-addressed
:class:`~repro.formal.problems.CompiledProblemStore` (on by default,
``compile_store=False`` to opt out; ``store_options`` forwards the
``max_designs`` / ``max_problems`` LRU bounds).  The store replaces the
old one-entry design cache: a module's many jobs share one elaborated
design keyed by the module's RTL digest, which makes module-affinity
batches (one queue pull = one module's whole job group) hit a warm
design for every job after the group's first — and makes the
golden-vs-patched same-name case safe by construction, since two
modules with different RTL can never share a digest.  Store scope
follows worker scope exactly like workspaces (serial: one per
executor; pools: one private store per worker process), keeping reuse
lock-free.  ``executor.compile_stats()`` aggregates every worker's
hit/miss/evict counters after a ``map``; the orchestrator surfaces the
aggregate in ``report.stats["compile_store"]``.

The process wire format
-----------------------

Pool workers no longer pickle whole :class:`JobResult` objects back to
the parent: results cross the process boundary as
:func:`~repro.orchestrate.job.encode_job_result` dicts — identification
scalars plus the serialized-result codec the cache and checkpoint
already speak, with FAIL counterexamples carried as canonical input
frames rather than the compiled transition system they replay on.  The
parent re-pairs each entry with its plan job and decodes through its
own compile store (:func:`~repro.orchestrate.job.decode_job_result`),
revalidating every FAIL trace by replay.  Result pickles shrink from
the whole AIG to a few hundred bytes, and the same dict shape is the
wire format a future socket/SSH multi-host executor ships.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
from typing import Dict, Iterable, Iterator, List, Optional

from ..formal.problems import CompiledProblemStore
from ..formal.satspace import SatWorkspace
from ..formal.workspace import BddWorkspace
from .job import (
    CheckJob, JobResult, decode_job_result, encode_job_result,
    run_check_job,
)


def _build_store(compile_store: bool,
                 store_options: Optional[dict]
                 ) -> Optional[CompiledProblemStore]:
    return CompiledProblemStore(**(store_options or {})) \
        if compile_store else None


def _build_sat(share_sat: bool,
               sat_options: Optional[dict]) -> Optional[SatWorkspace]:
    return SatWorkspace(**(sat_options or {})) if share_sat else None


def _merge_worker_stats(worker_stats: Dict[int, dict]) -> Dict[str, int]:
    """Sum the freshest per-worker counter snapshots (``{}`` when no
    worker shipped any)."""
    if not worker_stats:
        return {}
    merged = CompiledProblemStore.merge_stats(*worker_stats.values())
    merged["workers"] = len(worker_stats)
    return merged


def _note_worker_stats(worker_stats: Dict[int, dict], pid: int,
                       snapshot: dict) -> None:
    """Fold one worker's store-counter snapshot into the per-pid map.

    Snapshots are monotonic counters but arrive in *result* order, not
    chronological order (plan-order reassembly, and scheduling policies
    may hand units out in any order) — so the freshest snapshot per pid
    is the element-wise maximum, not the last one seen.
    """
    current = worker_stats.setdefault(pid, {})
    for key, value in snapshot.items():
        if value > current.get(key, 0):
            current[key] = value


class SerialExecutor:
    """Run every job in-process, in plan order (the default).

    ``share_bdd=True`` runs all jobs against one
    :class:`~repro.formal.workspace.BddWorkspace` (built with
    ``workspace_options``); alternatively pass an explicit
    ``workspace`` to share (and inspect, via ``workspace.stats()``) a
    manager pool across multiple runs.  The compiled-problem store
    works the same way: on by default (``compile_store=False`` opts
    out, ``store_options`` tunes the LRU bounds), or pass an explicit
    ``store`` to keep compiled designs warm across runs.  SAT-session
    sharing follows the same shape: ``share_sat=True`` builds a
    :class:`~repro.formal.satspace.SatWorkspace` (with ``sat_options``),
    or pass an explicit ``sat_workspace`` to keep solver sessions warm
    across runs.
    """

    name = "serial"

    def __init__(self, workspace: Optional[BddWorkspace] = None,
                 share_bdd: bool = False,
                 workspace_options: Optional[dict] = None,
                 store: Optional[CompiledProblemStore] = None,
                 compile_store: bool = True,
                 store_options: Optional[dict] = None,
                 sat_workspace: Optional[SatWorkspace] = None,
                 share_sat: bool = False,
                 sat_options: Optional[dict] = None) -> None:
        if workspace is None and share_bdd:
            workspace = BddWorkspace(**(workspace_options or {}))
        self.workspace = workspace
        if store is None:
            store = _build_store(compile_store, store_options)
        self.store = store
        if sat_workspace is None:
            sat_workspace = _build_sat(share_sat, sat_options)
        self.sat_workspace = sat_workspace

    def map(self, jobs: Iterable[CheckJob]) -> Iterator[JobResult]:
        """Yield one :class:`JobResult` per job, lazily, in plan order
        (trivially — jobs run one at a time in this process)."""
        for job in jobs:
            yield run_check_job(job, self.store,
                                workspace=self.workspace,
                                sat_workspace=self.sat_workspace)

    def compile_stats(self) -> Dict[str, int]:
        """The store's lifetime counters (``{}`` when the store is
        off) — the serial executor's single worker is this process."""
        if self.store is None:
            return {}
        return {**self.store.stats(), "workers": 1}

    def sat_stats(self) -> Dict[str, int]:
        """The SAT workspace's lifetime counters (``{}`` when off)."""
        if self.sat_workspace is None:
            return {}
        return {**self.sat_workspace.stats(), "workers": 1}

    def workspace_stats(self) -> Dict[str, int]:
        """The BDD workspace's lifetime counters (``{}`` when off)."""
        if self.workspace is None:
            return {}
        return {**self.workspace.stats(), "workers": 1}


#: per-worker-process compiled-problem store; installed by
#: :func:`_init_worker` (``None`` when the parent opted out)
_WORKER_STORE: Optional[CompiledProblemStore] = None

#: per-worker-process shared BDD workspace; installed by
#: :func:`_init_worker` when the parent executor asked for sharing
_WORKER_WORKSPACE: Optional[BddWorkspace] = None

#: per-worker-process shared SAT workspace; installed by
#: :func:`_init_worker` when the parent executor asked for sharing
_WORKER_SAT: Optional[SatWorkspace] = None


def _init_worker(share_bdd: bool,
                 workspace_options: Optional[dict] = None,
                 compile_store: bool = True,
                 store_options: Optional[dict] = None,
                 share_sat: bool = False,
                 sat_options: Optional[dict] = None) -> None:
    """Pool-worker initializer: give this worker its own private BDD
    workspace, SAT workspace, and compiled-problem store (none is ever
    shared across processes)."""
    global _WORKER_WORKSPACE, _WORKER_STORE, _WORKER_SAT
    _WORKER_WORKSPACE = BddWorkspace(**(workspace_options or {})) \
        if share_bdd else None
    _WORKER_STORE = _build_store(compile_store, store_options)
    _WORKER_SAT = _build_sat(share_sat, sat_options)


def _worker_run(job: CheckJob) -> dict:
    """Run one job in a pool worker and return the wire-format payload:
    the encoded result plus this worker's identity and warm-state
    counters (a handful of ints — the parent keeps each worker's latest
    snapshot and aggregates after the run)."""
    job_result = run_check_job(job, _WORKER_STORE,
                               workspace=_WORKER_WORKSPACE,
                               sat_workspace=_WORKER_SAT)
    return {
        "result": encode_job_result(job_result),
        "pid": os.getpid(),
        "store": _WORKER_STORE.stats()
        if _WORKER_STORE is not None else None,
        "sat": _WORKER_SAT.stats() if _WORKER_SAT is not None else None,
        "bdd": _WORKER_WORKSPACE.stats()
        if _WORKER_WORKSPACE is not None else None,
    }


class ParallelExecutor:
    """Fan jobs out over a ``multiprocessing`` pool.

    ``processes`` defaults to the machine's CPU count; ``chunksize``
    controls how many consecutive jobs each worker grabs at once
    (larger chunks amortise pickling and keep same-module jobs on one
    worker's design cache; the default aims at ~4 chunks per worker).

    Engines registered at runtime via
    :func:`~repro.formal.engine.register_engine` reach workers only
    under the ``fork`` start method (workers inherit the parent's
    registry).  On spawn-only platforms workers re-import the engine
    module and see just the built-ins, so jobs using a custom engine
    fail with ``unknown method`` — run those campaigns serially there.
    """

    def __init__(self, processes: Optional[int] = None,
                 chunksize: Optional[int] = None,
                 share_bdd: bool = False,
                 workspace_options: Optional[dict] = None,
                 compile_store: bool = True,
                 store_options: Optional[dict] = None,
                 share_sat: bool = False,
                 sat_options: Optional[dict] = None) -> None:
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.processes = processes or os.cpu_count() or 1
        self.chunksize = chunksize
        self.share_bdd = share_bdd
        self.workspace_options = workspace_options
        self.compile_store = compile_store
        self.store_options = store_options
        self.share_sat = share_sat
        self.sat_options = sat_options
        self._fell_back = False
        self._fallback: Optional[SerialExecutor] = None
        self._worker_stats: Dict[int, dict] = {}
        self._sat_worker_stats: Dict[int, dict] = {}
        self._bdd_worker_stats: Dict[int, dict] = {}

    @property
    def name(self) -> str:
        """Reports the *effective* mode: a 1-worker or <=1-job run never
        creates a pool, and stats must not claim it did."""
        if self._fell_back:
            return "parallel[serial-fallback]"
        return "parallel"

    def map(self, jobs: Iterable[CheckJob]) -> Iterator[JobResult]:
        """Stream results in plan order off a ``multiprocessing`` pool
        (``imap`` restores order); falls back to serial for <=1 job or
        1 worker, where a pool could only add overhead."""
        jobs = list(jobs)
        if len(jobs) <= 1 or self.processes == 1:
            # nothing to parallelise — skip the pool overhead entirely
            self._fell_back = True
            self._fallback = SerialExecutor(
                share_bdd=self.share_bdd,
                workspace_options=self.workspace_options,
                compile_store=self.compile_store,
                store_options=self.store_options,
                share_sat=self.share_sat,
                sat_options=self.sat_options,
            )
            yield from self._fallback.map(jobs)
            return
        self._fell_back = False
        self._fallback = None
        self._worker_stats = {}
        self._sat_worker_stats = {}
        self._bdd_worker_stats = {}
        # the parent's own store only pays for FAIL-trace decodes (a
        # recompile per failing module), so the default bounds are fine
        decode_store = _build_store(self.compile_store,
                                    self.store_options)
        chunksize = self.chunksize or max(
            1, len(jobs) // (self.processes * 4)
        )
        context = _pool_context()
        pool = context.Pool(processes=self.processes,
                            initializer=_init_worker,
                            initargs=(self.share_bdd,
                                      self.workspace_options,
                                      self.compile_store,
                                      self.store_options,
                                      self.share_sat,
                                      self.sat_options))
        closed = False
        try:
            payloads = pool.imap(_worker_run, jobs, chunksize)
            for job, payload in zip(jobs, payloads):
                self._note_payload_stats(payload)
                yield decode_job_result(payload["result"], job,
                                        decode_store)
            # reached when the consumer drives the generator past the
            # last result (the orchestrator always does): shut the
            # workers down gracefully
            pool.close()
            pool.join()
            closed = True
        finally:
            if not closed:
                pool.terminate()
                pool.join()

    def _note_payload_stats(self, payload: dict) -> None:
        pid = payload["pid"]
        if payload.get("store") is not None:
            _note_worker_stats(self._worker_stats, pid, payload["store"])
        if payload.get("sat") is not None:
            _note_worker_stats(self._sat_worker_stats, pid, payload["sat"])
        if payload.get("bdd") is not None:
            _note_worker_stats(self._bdd_worker_stats, pid, payload["bdd"])

    def compile_stats(self) -> Dict[str, int]:
        """Aggregated per-worker store counters from the last ``map``
        (each worker ships its latest snapshot with every result);
        ``{}`` when the store is off."""
        if self._fallback is not None:
            return self._fallback.compile_stats()
        return _merge_worker_stats(self._worker_stats)

    def sat_stats(self) -> Dict[str, int]:
        """Aggregated per-worker SAT-workspace counters from the last
        ``map``; ``{}`` when sharing is off."""
        if self._fallback is not None:
            return self._fallback.sat_stats()
        return _merge_worker_stats(self._sat_worker_stats)

    def workspace_stats(self) -> Dict[str, int]:
        """Aggregated per-worker BDD-workspace counters from the last
        ``map``; ``{}`` when sharing is off."""
        if self._fallback is not None:
            return self._fallback.workspace_stats()
        return _merge_worker_stats(self._bdd_worker_stats)


def _pool_context():
    """Prefer fork (no re-import, cheap job shipping); fall back to the
    platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def _steal_worker(job_queue, result_queue, share_bdd: bool = False,
                  workspace_options: Optional[dict] = None,
                  compile_store: bool = True,
                  store_options: Optional[dict] = None,
                  share_sat: bool = False,
                  sat_options: Optional[dict] = None) -> None:
    """Worker loop: pull one work unit at a time until the ``None``
    pill.  A unit is a list of jobs — one job under FIFO scheduling,
    one module's whole job group under module-affinity scheduling (see
    :mod:`repro.orchestrate.policy`) — run to completion before the
    next pull, each result shipped individually so the parent's
    plan-order stream stays as responsive as single-job stealing.

    Each payload is ``(job index, pickled wire dict | BaseException)``
    — the wire dict carries the encoded result plus this worker's pid
    and store counters; the parent re-raises exceptions when their
    job's turn in plan order comes up, matching
    ``ParallelExecutor``'s error propagation through ``imap``.  A
    failing job poisons only the rest of its own unit (skipped — their
    results would be thrown away anyway); the worker keeps stealing
    other units, exactly like the single-job loop kept stealing other
    jobs.  Pickling happens here, in the worker, so an unpicklable
    error (a custom engine raising an exotic exception) turns into a
    descriptive RuntimeError instead of dying silently in the queue's
    feeder thread and masquerading as a dead worker; results
    themselves are plain JSON-able dicts and always pickle.

    ``share_bdd`` gives this worker a private multi-manager
    :class:`~repro.formal.workspace.BddWorkspace`: FIFO-stolen jobs
    interleave modules, so the worker retains an LRU pool of per-module
    managers rather than relying on contiguity (module-affinity units
    make the pool's job trivial — one unit, one hot manager).  The
    private :class:`~repro.formal.problems.CompiledProblemStore` works
    the same way: affinity units turn it into one elaboration per
    module group.
    """
    store = _build_store(compile_store, store_options)
    workspace = BddWorkspace(**(workspace_options or {})) \
        if share_bdd else None
    sat = _build_sat(share_sat, sat_options)
    while True:
        unit = job_queue.get()
        if unit is None:
            return
        failed = None
        for job in unit:
            if failed is not None:
                # a poisoned unit: the stream dies at the failed job's
                # plan position, so later same-unit results are moot —
                # but they must still be *answered* or the parent would
                # wait on a result that never comes
                result_queue.put((job.index, failed))
                continue
            try:
                payload = {
                    "result": encode_job_result(
                        run_check_job(job, store, workspace=workspace,
                                      sat_workspace=sat)
                    ),
                    "pid": os.getpid(),
                    "store": store.stats() if store is not None else None,
                    "sat": sat.stats() if sat is not None else None,
                    "bdd": workspace.stats()
                    if workspace is not None else None,
                }
            except BaseException as exc:  # ship the failure, keep going
                payload = exc
            try:
                blob = pickle.dumps(payload)
            except Exception as exc:
                kind = ("error" if isinstance(payload, BaseException)
                        else "result")
                blob = pickle.dumps(RuntimeError(
                    f"job {job.index} ({job.qualified_name}) produced "
                    f"an unpicklable {kind}: {exc}"
                ))
            if isinstance(payload, BaseException):
                failed = blob
            result_queue.put((job.index, blob))


class WorkStealingExecutor:
    """Pull-based multiprocessing executor: a shared job queue drained
    by ``processes`` workers, with an ordered reassembly buffer.

    Compared to :class:`ParallelExecutor`'s ``imap`` chunking, no job
    is committed to a worker before that worker is free: long checks
    (the Figure 7 oversized-cone scenario) occupy exactly one worker
    while every other worker keeps pulling, so tail latency is the
    longest single check rather than the longest chunk.  Results arrive
    out of order and are buffered by job index until they are next in
    plan order, preserving the streaming contract.

    ``scheduling`` is a
    :class:`~repro.orchestrate.policy.SchedulingPolicy` deciding what
    one "pull" hands a worker: the default FIFO policy hands single
    jobs (maximum balance), the module-affinity policy hands one
    module's whole job group (one worker keeps that module's shared
    BDD manager hot).  Scheduling changes steal order and worker
    affinity only — results are reassembled into plan order either
    way, so the campaign outcome is policy-invariant.

    ``poll_interval`` is how often the parent, while blocked waiting
    for the next result, checks that workers are still alive — once
    every worker is gone (hard kills included: OOM, SIGKILL) the
    stream raises ``RuntimeError`` instead of hanging.  One hazard is
    outside this detector's reach: a worker SIGKILLed at the exact
    moment it holds the shared job queue's reader lock (a known CPython
    ``multiprocessing`` limitation) can leave the *surviving* workers
    blocked on that lock forever, and a pool that is alive-but-stuck is
    indistinguishable from one running a long check, so that case still
    hangs.  The same custom-engine caveat as :class:`ParallelExecutor`
    applies: runtime-registered engines reach workers only under the
    ``fork`` start method.
    """

    def __init__(self, processes: Optional[int] = None,
                 poll_interval: float = 0.1,
                 share_bdd: bool = False,
                 workspace_options: Optional[dict] = None,
                 scheduling=None,
                 compile_store: bool = True,
                 store_options: Optional[dict] = None,
                 share_sat: bool = False,
                 sat_options: Optional[dict] = None) -> None:
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be > 0, got {poll_interval}"
            )
        self.processes = processes or os.cpu_count() or 1
        self.poll_interval = poll_interval
        self.share_bdd = share_bdd
        self.workspace_options = workspace_options
        self.compile_store = compile_store
        self.store_options = store_options
        self.share_sat = share_sat
        self.sat_options = sat_options
        if scheduling is None:
            from .policy import FifoScheduling
            scheduling = FifoScheduling()
        self.scheduling = scheduling
        self._fell_back = False
        self._fallback: Optional[SerialExecutor] = None
        self._worker_stats: Dict[int, dict] = {}
        self._sat_worker_stats: Dict[int, dict] = {}
        self._bdd_worker_stats: Dict[int, dict] = {}

    @property
    def name(self) -> str:
        """Reports the *effective* mode, like :class:`ParallelExecutor`:
        a 1-worker or <=1-job run never spawns workers."""
        if self._fell_back:
            return "work-stealing[serial-fallback]"
        return "work-stealing"

    def map(self, jobs: Iterable[CheckJob]) -> Iterator[JobResult]:
        """Stream results in plan order: workers pull jobs one at a
        time off a shared queue, the parent buffers out-of-order
        completions by index and yields each result (or raises its
        error) exactly when its plan-order turn comes up."""
        jobs = list(jobs)
        if len(jobs) <= 1 or self.processes == 1:
            self._fell_back = True
            self._fallback = SerialExecutor(
                share_bdd=self.share_bdd,
                workspace_options=self.workspace_options,
                compile_store=self.compile_store,
                store_options=self.store_options,
                share_sat=self.share_sat,
                sat_options=self.sat_options,
            )
            yield from self._fallback.map(jobs)
            return
        self._fell_back = False
        self._fallback = None
        self._worker_stats = {}
        self._sat_worker_stats = {}
        self._bdd_worker_stats = {}
        decode_store = _build_store(self.compile_store,
                                    self.store_options)
        units = self.scheduling.batches(jobs)
        if sorted(job.index for unit in units for job in unit) != \
                sorted(job.index for job in jobs):
            raise RuntimeError(
                f"scheduling policy {self.scheduling.name!r} lost or "
                f"duplicated jobs while batching"
            )
        context = _pool_context()
        job_queue = context.Queue()
        result_queue = context.Queue()
        worker_count = min(self.processes, len(units))
        for unit in units:
            job_queue.put(unit)
        for _ in range(worker_count):
            job_queue.put(None)  # one stop pill per worker
        workers = [
            context.Process(target=_steal_worker,
                            args=(job_queue, result_queue,
                                  self.share_bdd,
                                  self.workspace_options,
                                  self.compile_store,
                                  self.store_options,
                                  self.share_sat,
                                  self.sat_options),
                            daemon=True)
            for _ in range(worker_count)
        ]
        for worker in workers:
            worker.start()
        #: JobResult or BaseException by job index; exceptions are
        #: raised only when their job is next in plan order, so every
        #: earlier completed result streams out (and gets journaled)
        #: first — the same semantics ``imap`` gives ParallelExecutor
        buffered: Dict[int, object] = {}
        try:
            for job in jobs:
                while job.index not in buffered:
                    index, blob = self._next_payload(
                        result_queue, workers
                    )
                    buffered[index] = pickle.loads(blob)
                payload = buffered.pop(job.index)
                if isinstance(payload, BaseException):
                    raise payload
                self._note_payload_stats(payload)
                yield decode_job_result(payload["result"], job,
                                        decode_store)
        finally:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
            for worker in workers:
                worker.join()
            # the job queue may still hold unpulled jobs when the
            # consumer closes the stream early; don't let their feeder
            # threads block interpreter shutdown
            for q in (job_queue, result_queue):
                q.cancel_join_thread()
                q.close()

    def _note_payload_stats(self, payload: dict) -> None:
        pid = payload["pid"]
        if payload.get("store") is not None:
            _note_worker_stats(self._worker_stats, pid, payload["store"])
        if payload.get("sat") is not None:
            _note_worker_stats(self._sat_worker_stats, pid, payload["sat"])
        if payload.get("bdd") is not None:
            _note_worker_stats(self._bdd_worker_stats, pid, payload["bdd"])

    def compile_stats(self) -> Dict[str, int]:
        """Aggregated per-worker store counters from the last ``map``
        (each worker ships its latest snapshot with every result);
        ``{}`` when the store is off."""
        if self._fallback is not None:
            return self._fallback.compile_stats()
        return _merge_worker_stats(self._worker_stats)

    def sat_stats(self) -> Dict[str, int]:
        """Aggregated per-worker SAT-workspace counters from the last
        ``map``; ``{}`` when sharing is off."""
        if self._fallback is not None:
            return self._fallback.sat_stats()
        return _merge_worker_stats(self._sat_worker_stats)

    def workspace_stats(self) -> Dict[str, int]:
        """Aggregated per-worker BDD-workspace counters from the last
        ``map``; ``{}`` when sharing is off."""
        if self._fallback is not None:
            return self._fallback.workspace_stats()
        return _merge_worker_stats(self._bdd_worker_stats)

    def _next_payload(self, result_queue, workers: List) -> tuple:
        """Block for the next (index, payload) pair, watching for a
        silently-dead pool."""
        while True:
            try:
                return result_queue.get(timeout=self.poll_interval)
            except queue_module.Empty:
                if any(worker.is_alive() for worker in workers):
                    continue
                # all workers gone — allow one grace read for payloads
                # still in the queue's pipe buffer, then give up
                try:
                    return result_queue.get(timeout=1.0)
                except queue_module.Empty:
                    raise RuntimeError(
                        "work-stealing pool died without delivering "
                        "all results (worker killed?)"
                    ) from None
