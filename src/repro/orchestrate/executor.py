"""Job executors: serial (deterministic default) and multiprocessing.

An executor is anything with a ``name`` and a ``map(jobs)`` method that
yields one :class:`JobResult` per job **in job-index order**.  The
ordering contract is what makes every execution strategy produce the
same report: the orchestrator aggregates results as they stream out,
so serial, process-parallel, and any future distributed executor are
interchangeable without touching aggregation or report rendering.

``ParallelExecutor`` ships pickled jobs to a ``multiprocessing`` pool
and relies on ``imap`` (ordered, lazy) to restore plan order.  Each
worker keeps a per-process elaboration cache so consecutive jobs of the
same module (the planner emits them contiguously) share one flattened
design, mirroring the serial executor's reuse.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, Iterable, Iterator, Optional

from .job import CheckJob, JobResult, run_check_job


class SerialExecutor:
    """Run every job in-process, in plan order (the default)."""

    name = "serial"

    def map(self, jobs: Iterable[CheckJob]) -> Iterator[JobResult]:
        design_cache: Dict[str, tuple] = {}
        for job in jobs:
            yield run_check_job(job, design_cache)


#: per-worker-process elaboration cache, module name -> (module, design);
#: see compile_job for the single-entry + same-object policy
_WORKER_DESIGNS: Dict[str, tuple] = {}


def _worker_run(job: CheckJob) -> JobResult:
    return run_check_job(job, _WORKER_DESIGNS)


class ParallelExecutor:
    """Fan jobs out over a ``multiprocessing`` pool.

    ``processes`` defaults to the machine's CPU count; ``chunksize``
    controls how many consecutive jobs each worker grabs at once
    (larger chunks amortise pickling and keep same-module jobs on one
    worker's design cache; the default aims at ~4 chunks per worker).

    Engines registered at runtime via
    :func:`~repro.formal.engine.register_engine` reach workers only
    under the ``fork`` start method (workers inherit the parent's
    registry).  On spawn-only platforms workers re-import the engine
    module and see just the built-ins, so jobs using a custom engine
    fail with ``unknown method`` — run those campaigns serially there.
    """

    def __init__(self, processes: Optional[int] = None,
                 chunksize: Optional[int] = None) -> None:
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.processes = processes or os.cpu_count() or 1
        self.chunksize = chunksize
        self._fell_back = False

    @property
    def name(self) -> str:
        """Reports the *effective* mode: a 1-worker or <=1-job run never
        creates a pool, and stats must not claim it did."""
        if self._fell_back:
            return "parallel[serial-fallback]"
        return "parallel"

    def map(self, jobs: Iterable[CheckJob]) -> Iterator[JobResult]:
        jobs = list(jobs)
        if len(jobs) <= 1 or self.processes == 1:
            # nothing to parallelise — skip the pool overhead entirely
            self._fell_back = True
            yield from SerialExecutor().map(jobs)
            return
        self._fell_back = False
        chunksize = self.chunksize or max(
            1, len(jobs) // (self.processes * 4)
        )
        context = _pool_context()
        pool = context.Pool(processes=self.processes)
        closed = False
        try:
            for job_result in pool.imap(_worker_run, jobs, chunksize):
                yield job_result
            # reached when the consumer drives the generator past the
            # last result (the orchestrator always does): shut the
            # workers down gracefully
            pool.close()
            pool.join()
            closed = True
        finally:
            if not closed:
                pool.terminate()
                pool.join()


def _pool_context():
    """Prefer fork (no re-import, cheap job shipping); fall back to the
    platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()
