"""Job-based campaign orchestration.

This package turns the paper's serial check-everything loop into a
scheduled, restartable job graph:

- :mod:`~repro.orchestrate.config` — :class:`CampaignConfig`, the
  frozen, serializable description of a whole campaign (engine and
  executor string specs, policies, cache/checkpoint paths, budgets),
  round-trippable through dicts and TOML and stamped (as a digest)
  into every report — the object the ``python -m repro`` CLI runs
  from;
- :mod:`~repro.orchestrate.policy` — pluggable scheduling
  (fifo / module-affinity work-queue batching) and portfolio
  (static / cache-history-adaptive attempt ordering) policies, both
  outcome-invariant by construction;
- :mod:`~repro.orchestrate.job` — :class:`CheckJob` (one property
  check: module + vunit + assertion + engine portfolio), content
  fingerprints, the portfolio runner, and the serialization codecs
  (result entries shared with cache/checkpoint, plus the job/result
  wire format pool executors ship across process boundaries);
- :mod:`~repro.orchestrate.planner` — one walk over the chip produces
  the flat, ordered job list;
- :mod:`~repro.orchestrate.executor` — serial, chunked-pool, and
  work-stealing multiprocessing executors, all bound to the
  results-in-plan-order contract;
- :mod:`~repro.orchestrate.fleet` — the socket-fanout
  :class:`FleetExecutor`: a TCP coordinator leasing scheduling-policy
  batches to launcher-started worker processes over the portable wire
  format (length-prefixed JSON, no pickle), with heartbeats, lease
  re-issue on worker death or stall, and at-most-once result
  acceptance — the same streaming contract over a cross-host
  transport;
- :mod:`~repro.orchestrate.cache` — fingerprint-keyed on-disk result
  store for incremental (ECO-regression) reruns;
- :mod:`~repro.orchestrate.checkpoint` — crash-safe journal of
  completed jobs, enabling kill-and-resume of half-finished campaigns;
- :mod:`~repro.orchestrate.orchestrator` — ties it together and
  aggregates the legacy :class:`~repro.core.campaign.CampaignReport`.

``FormalCampaign`` in :mod:`repro.core.campaign` is a thin façade over
:class:`CampaignOrchestrator`, so existing call sites keep working.

The executor contract
---------------------

An executor is any object with a ``name`` attribute and a ``map(jobs)``
method that, given the planner's ordered :class:`CheckJob` sequence,
yields exactly one :class:`JobResult` per job **in job-index order**,
lazily (the orchestrator aggregates as results stream out).  The
orchestrator detects and rejects under-yielding, over-yielding, and
out-of-order executors; ``map``'s return value should also support
``close()`` (generators do for free) so an aborted campaign can shut
workers down deterministically.  ``tests/test_executor_contract.py``
runs one parametrized battery — plan-order streaming, 0/1/many-job
edge cases, mid-stream ``close()``, error propagation, contract-breach
detection — against every shipped executor; a new (e.g. distributed)
executor only has to join that parametrization to be certified.

The content-addressed compile store
-----------------------------------

Every compile path — the job runner, cache FAIL-replay, checkpoint
replay, the partitioner's checkpoint pieces, ``compile_vunit`` — runs
through a per-worker
:class:`~repro.formal.problems.CompiledProblemStore`: one elaborated
design per module RTL digest, one compiled transition system per
``(module digest, vunit digest, assertion)``.  Digest keying makes the
golden-vs-patched same-name case safe by construction, campaign
outcomes are byte-identical with the store on, off, or LRU-bounded
(tests enforce it across every executor), and the hit/miss/evict
counters surface in ``report.stats["compile_store"]``.  The knobs live
in ``CampaignConfig`` (``compile_store`` / ``compile_max_designs`` /
``compile_max_problems``) and, like the workspace valves, stay out of
job fingerprints.

Shared BDD workspaces
---------------------

A campaign checks each module many times (one job per asserted
property), and every BDD-family engine stage used to rebuild its
hash-consed node table from scratch.  Passing ``share_bdd=True`` to any
executor runs its jobs against a
:class:`~repro.formal.workspace.BddWorkspace` — per-module managers
whose node tables and operation memos persist across portfolio stages
and across jobs of the same module (keyed by
``CheckJob.workspace_key``, the module's RTL digest).  Serial runs
share one workspace; pool executors give each worker process its own.

Sharing never flips a PASS/FAIL verdict (hash-consed BDDs are
canonical whatever else the table holds), so as long as no BDD-node
budget trips — the default budgets are sized to bind only on genuinely
oversized cones — ``CampaignReport.canonical_bytes`` is byte-identical
with sharing on or off, and the tests enforce exactly that.  TIMEOUT
verdicts, however, are budget-relative, and a warmed manager charges
only newly created nodes: a check that exhausts its node budget cold
may complete warm (never the reverse).  Under binding budgets sharing
is therefore one-sidedly *stronger*, and with the work-stealing
executor which checks run warm can vary with steal order — pin budgets
generously (or run sharing off) where strict run-to-run byte-equality
matters more than throughput.  Cost is the only other thing that
changes: see ``benchmarks/bench_campaign.py``'s workspace record.

Shared SAT workspaces
---------------------

``share_sat=True`` (the campaign default via ``CampaignConfig``'s
``[sat]`` section) is the SAT-family counterpart: ``bmc``/``kind``
stages query a :class:`~repro.formal.satspace.SatWorkspace` of live
incremental solver sessions.  All assertions of one (module, vunit)
pair compile into a *cluster* — one shared AIG with a bad output per
assertion — and each session keeps its solver, unrolled time frames,
and learned clauses alive across portfolio stages and jobs, with
per-assertion activation literals scoping clauses so retiring one
assertion (a unit ``¬act``) deactivates its clauses without touching
its neighbours'.  Verdicts, depths, *and counterexample bytes* are
sharing-invariant: a warm FAIL re-derives its trace by a cold
deterministic BMC replay on the solo-compiled system, so
``CampaignReport.canonical_bytes`` is identical with the workspace on,
off, or LRU-thrashed (tests enforce it across every executor).  The
one documented exception mirrors the BDD workspace: a *binding*
``sat_conflicts`` budget — and unlike the one-sided BDD case, retained
clauses can steer CDCL search either way, so pin conflict budgets
generously (the defaults are non-binding) or run sharing off where
strict equality under binding budgets matters.  Counters surface in
``report.stats["sat_workspace"]``; valves (``sat_cluster_limit``,
``sat_max_sessions``, ``sat_max_session_clauses``) live in
``CampaignConfig`` and stay out of job fingerprints.

Checkpoint/resume
-----------------

Attach a :class:`CampaignCheckpoint` to journal every fresh result to
disk the moment it streams out of the executor::

    checkpoint = CampaignCheckpoint("campaign.journal")
    orchestrator = CampaignOrchestrator(blocks, checkpoint=checkpoint)
    orchestrator.run()                 # killed at job 1400 of 2600?
    orchestrator.run(resume=True)      # replays 1400, runs 1200

The journal is JSON-lines: a header binding it to the exact campaign
(a digest over every job fingerprint in plan order, plus the package
version), then one line per completed job carrying the result cache's
serialized-result codec.  ``resume=True`` replays the journal's valid
prefix — a torn final line from a hard kill is dropped, a mismatched
or corrupt header discards the journal entirely and the campaign
reruns from scratch — and the finished report's
``CampaignReport.canonical_bytes()`` is byte-identical to an
uninterrupted run.  Journaled FAILs revalidate their counterexample
traces on replay, the same never-a-wrong-verdict rule the cache
enforces.
"""

from ..formal.problems import CompiledProblemStore
from ..formal.satspace import SatWorkspace
from ..formal.workspace import BddWorkspace
from .job import (
    CheckJob, DEFAULT_PORTFOLIO_METHODS, EngineConfig, JobResult,
    compile_job, decode_job_result, decode_result, encode_job_result,
    encode_result, job_fingerprint, portfolio, run_check_job,
)
from .planner import CampaignPlan, plan_campaign
from .executor import ParallelExecutor, SerialExecutor, WorkStealingExecutor
from .fleet import (
    FleetExecutor, LocalFleetLauncher, SshFleetLauncher,
    parse_launcher_spec,
)
from .cache import ResultCache
from .checkpoint import CampaignCheckpoint, plan_digest
from .config import (
    CampaignConfig, ConfigError, parse_engines_spec, parse_executor_spec,
)
from .policy import (
    AdaptivePortfolio, FifoScheduling, ModuleAffinityScheduling,
    PortfolioPolicy, SchedulingPolicy, StaticPortfolio,
    portfolio_policy, scheduling_policy,
)
from .stats import STATS_SCHEMA, counter_groups
from .orchestrator import CampaignOrchestrator

__all__ = [
    "BddWorkspace", "CompiledProblemStore", "SatWorkspace",
    "CheckJob", "DEFAULT_PORTFOLIO_METHODS", "EngineConfig", "JobResult",
    "compile_job", "job_fingerprint", "portfolio", "run_check_job",
    "CampaignPlan", "plan_campaign",
    "ParallelExecutor", "SerialExecutor", "WorkStealingExecutor",
    "FleetExecutor", "LocalFleetLauncher", "SshFleetLauncher",
    "parse_launcher_spec",
    "ResultCache", "decode_result", "encode_result",
    "decode_job_result", "encode_job_result",
    "CampaignCheckpoint", "plan_digest",
    "CampaignConfig", "ConfigError",
    "parse_engines_spec", "parse_executor_spec",
    "AdaptivePortfolio", "FifoScheduling", "ModuleAffinityScheduling",
    "PortfolioPolicy", "SchedulingPolicy", "StaticPortfolio",
    "portfolio_policy", "scheduling_policy",
    "STATS_SCHEMA", "counter_groups",
    "CampaignOrchestrator",
]
