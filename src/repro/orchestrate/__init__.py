"""Job-based campaign orchestration.

This package turns the paper's serial check-everything loop into a
scheduled job graph:

- :mod:`~repro.orchestrate.job` — :class:`CheckJob` (one property
  check: module + vunit + assertion + engine portfolio), content
  fingerprints, and the portfolio runner;
- :mod:`~repro.orchestrate.planner` — one walk over the chip produces
  the flat, ordered job list;
- :mod:`~repro.orchestrate.executor` — serial and multiprocessing
  executors, both bound to the results-in-plan-order contract;
- :mod:`~repro.orchestrate.cache` — fingerprint-keyed on-disk result
  store for incremental (ECO-regression) reruns;
- :mod:`~repro.orchestrate.orchestrator` — ties it together and
  aggregates the legacy :class:`~repro.core.campaign.CampaignReport`.

``FormalCampaign`` in :mod:`repro.core.campaign` is a thin façade over
:class:`CampaignOrchestrator`, so existing call sites keep working.
"""

from .job import (
    CheckJob, DEFAULT_PORTFOLIO_METHODS, EngineConfig, JobResult,
    compile_job, job_fingerprint, portfolio, run_check_job,
)
from .planner import CampaignPlan, plan_campaign
from .executor import ParallelExecutor, SerialExecutor
from .cache import ResultCache
from .orchestrator import CampaignOrchestrator

__all__ = [
    "CheckJob", "DEFAULT_PORTFOLIO_METHODS", "EngineConfig", "JobResult",
    "compile_job", "job_fingerprint", "portfolio", "run_check_job",
    "CampaignPlan", "plan_campaign",
    "ParallelExecutor", "SerialExecutor",
    "ResultCache",
    "CampaignOrchestrator",
]
