"""Multi-host fleet executor: a socket-fanout coordinator over the
portable job wire format.

``FleetExecutor`` is the campaign's first cross-host executor: a
coordinator thread in the campaign process serves the plan's jobs over
TCP to worker processes, speaking **length-prefixed JSON** built
entirely from the PR-5 wire codec — :meth:`CheckJob.spec` requests out,
:func:`~repro.orchestrate.job.encode_job_result` replies back, FAIL
counterexamples as canonical input frames revalidated by replay on the
coordinator.  No pickle ever crosses the socket, so a worker can run on
any host that holds the design sources.

The transport preserves the executor streaming contract exactly
(``tests/test_executor_contract.py`` certifies it like every other
executor): results are buffered by job index and yielded in plan order,
worker errors re-raise at the failed job's plan-order turn, and the
orchestrator's :class:`~repro.orchestrate.checkpoint.CampaignCheckpoint`
journaling therefore works unchanged — a killed coordinator resumes
byte-identically, because resume is a property of the *orchestrator*
loop, not of any transport.

Lease lifecycle
---------------

The coordinator hands each worker one *lease* at a time: a batch of
jobs from the configured
:class:`~repro.orchestrate.policy.SchedulingPolicy` (module-affinity
batches keep a worker's ``BddWorkspace`` / ``CompiledProblemStore`` /
``SatWorkspace`` warm for a whole module group, exactly as in the
work-stealing pool).  Workers heartbeat on a fixed interval — also
*during* long checks, from a background thread — so liveness and
progress are separate signals:

- a worker whose socket dies (SIGKILL, OOM, network) is detected
  immediately at EOF; its lease's unanswered jobs are re-queued at the
  front of the pending deque (``leases_reissued``);
- a worker that stops heartbeating for ``lease_timeout`` seconds is
  declared a *zombie*: its lease is revoked and re-queued, and any
  frame it sends later — a late result, a duplicate — is rejected
  (``results_rejected``), never accepted.  Acceptance is
  **at-most-once**, keyed by job fingerprint: a result frame is
  accepted only if its lease is still the job's active lease, the job
  is still unanswered, and the frame's fingerprint matches the plan's
  job.
- lost workers are replaced through the launcher up to a bounded
  respawn budget; when no worker is left and the budget is spent, the
  stream raises instead of wedging.

Launchers
---------

Worker processes are started by a pluggable launcher:

- :class:`LocalFleetLauncher` (default) forks worker processes on this
  host — under the ``fork`` start method the workers inherit the
  in-memory job list, so only job *identity* (specs, fingerprints)
  ever crosses the socket;
- :class:`SshFleetLauncher` is the multi-host stub with the same
  interface: it spawns ``ssh <host> python -m repro fleet worker
  --config ... --connect host:port`` per worker.  Remote workers
  re-derive the plan from the config file
  (:func:`jobs_from_config` — planning is deterministic) and refuse
  any leased spec whose fingerprint does not match their local plan,
  so a drifted checkout can never return a verdict for the wrong RTL.
"""

from __future__ import annotations

import builtins
import collections
import json
import os
import queue as queue_module
import socket
import struct
import subprocess
import threading
import time
import uuid
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .executor import (
    SerialExecutor, _build_sat, _build_store, _merge_worker_stats,
    _note_worker_stats, _pool_context,
)
from .job import (
    CheckJob, JobResult, decode_job_result, encode_job_result,
    run_check_job,
)

from ..formal.workspace import BddWorkspace


class FleetError(RuntimeError):
    """A fleet transport failure the coordinator cannot recover from
    (all workers lost with the respawn budget spent, a launcher that
    cannot start workers)."""


class FrameError(FleetError):
    """A malformed or truncated wire frame: bad length prefix, short
    read, invalid UTF-8/JSON, or a non-object payload.  Raised loudly
    at the reading end; the coordinator responds by dropping that
    worker's connection and re-leasing its jobs — one bad peer never
    wedges the stream."""


#: hard upper bound on one frame's payload; anything larger is a
#: corrupt length prefix, not a real message (the largest legitimate
#: frame — a module-affinity lease or a FAIL reply — is a few hundred
#: KiB of JSON)
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Write one length-prefixed JSON frame: 4-byte big-endian length,
    then the UTF-8 JSON body.  Raises :class:`FrameError` when the
    payload is not JSON-able or exceeds :data:`MAX_FRAME_BYTES`."""
    try:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"frame payload is not JSON-able: {exc}") \
            from None
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one length-prefixed JSON frame.

    Returns ``None`` on a clean EOF at a frame boundary (the peer
    closed after a complete frame).  Any other shortfall fails loudly:
    a truncated prefix or body, a zero or absurd length, junk bytes, or
    a non-object payload raise :class:`FrameError` — corrupt transport
    must never be mistaken for an empty or absent message.
    """
    header = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise FrameError(f"invalid frame length {length}")
    body = _recv_exact(sock, length, eof_ok=False)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"undecodable frame body: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be an object, got {type(payload).__name__}"
        )
    return payload


def _recv_exact(sock: socket.socket, count: int,
                eof_ok: bool) -> Optional[bytes]:
    """Read exactly ``count`` bytes, riding out fragmented reads.
    EOF before the first byte returns ``None`` when ``eof_ok`` (a
    frame boundary); EOF anywhere else is a truncated frame."""
    chunks: List[bytes] = []
    received = 0
    while received < count:
        chunk = sock.recv(min(65536, count - received))
        if not chunk:
            if eof_ok and received == 0:
                return None
            raise FrameError(
                f"truncated frame: expected {count} bytes, got {received}"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def _hangup(conn: socket.socket) -> None:
    """Actively hang up one connection: ``shutdown`` before ``close``.

    A bare ``close()`` is not enough when another thread is blocked in
    ``recv()`` on the same socket — the kernel keeps the open file
    description alive for the duration of that in-flight syscall, so
    no FIN is sent and the peer (and our reader thread) block forever.
    ``shutdown(SHUT_RDWR)`` wakes the blocked reader with EOF and sends
    the FIN immediately."""
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        conn.close()
    except OSError:
        pass


def _rebuild_exception(exc_type: str, message: str) -> BaseException:
    """Reconstruct a worker-side exception from its wire description.
    Builtin exception types cross the socket faithfully (the contract
    battery expects ``ValueError("unknown method ...")`` to arrive as a
    ``ValueError``); anything else degrades to a ``RuntimeError``
    naming the original type."""
    cls = getattr(builtins, exc_type, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        try:
            return cls(message)
        except Exception:
            pass
    return RuntimeError(f"{exc_type}: {message}")


# ----------------------------------------------------------------------
# the worker side
# ----------------------------------------------------------------------

def _heartbeat_loop(send, interval: float, stop: threading.Event) -> None:
    """Background liveness signal: one heartbeat frame per interval,
    including while the main worker thread is deep in a long check —
    that separation is what lets the coordinator tell "slow" from
    "dead"."""
    while not stop.wait(interval):
        try:
            send({"type": "heartbeat"})
        except (OSError, FrameError):
            return


def _fleet_worker_main(worker_id: str, host: str, port: int, token: str,
                       settings: dict,
                       jobs: Optional[List[CheckJob]]) -> None:
    """One fleet worker's whole life: connect, say hello, serve leases
    until shutdown (or the coordinator's socket dies).

    ``jobs`` is the local job universe — inherited in-memory from the
    forking :class:`LocalFleetLauncher`, or re-derived from the config
    file by ``python -m repro fleet worker``.  A lease carries job
    *specs* only; each spec is matched to the local job by index and
    its fingerprint cross-checked, so a worker can never run (or
    answer for) a job its sources do not reproduce exactly.

    Error semantics mirror the work-stealing pool's ``_steal_worker``:
    a failing job answers with an error frame and poisons the rest of
    its lease (same error per remaining job — the stream dies at the
    first failure's plan position, but every leased job must still be
    answered); the worker then keeps serving further leases.
    """
    jobs_by_index = {job.index: job for job in (jobs or [])}
    store = _build_store(settings.get("compile_store", True),
                         settings.get("store_options"))
    workspace = BddWorkspace(**(settings.get("workspace_options") or {})) \
        if settings.get("share_bdd") else None
    sat = _build_sat(settings.get("share_sat", False),
                     settings.get("sat_options"))
    try:
        sock = socket.create_connection((host, port), timeout=10.0)
    except OSError:
        return  # coordinator already gone — nothing to serve
    sock.settimeout(None)
    send_lock = threading.Lock()

    def _send(payload: dict) -> None:
        with send_lock:
            send_frame(sock, payload)

    stop = threading.Event()
    interval = float(settings.get("heartbeat_interval", 0.5))
    try:
        _send({"type": "hello", "worker": worker_id,
               "pid": os.getpid(), "token": token})
        threading.Thread(target=_heartbeat_loop,
                         args=(_send, interval, stop),
                         daemon=True).start()
        while True:
            frame = recv_frame(sock)
            if frame is None or frame.get("type") == "shutdown":
                return
            if frame.get("type") != "lease":
                continue
            lease_id = frame.get("lease")
            failed: Optional[Tuple[str, str]] = None
            for spec in frame.get("jobs", []):
                index = spec.get("index")
                if failed is None:
                    job = jobs_by_index.get(index)
                    if job is None or \
                            job.fingerprint != spec.get("fingerprint"):
                        failed = ("RuntimeError",
                                  f"fleet worker {worker_id}: leased "
                                  f"job {index} does not match the "
                                  f"local plan (fingerprint mismatch)")
                    else:
                        order = spec.get("engine_order")
                        job.engine_order = tuple(order) \
                            if order is not None else None
                        try:
                            job_result = run_check_job(
                                job, store, workspace=workspace,
                                sat_workspace=sat,
                            )
                        except BaseException as exc:
                            failed = (type(exc).__name__, str(exc))
                        else:
                            _send({
                                "type": "result",
                                "lease": lease_id,
                                "index": index,
                                "fingerprint": job.fingerprint,
                                "result": encode_job_result(job_result),
                                "pid": os.getpid(),
                                "store": store.stats()
                                if store is not None else None,
                                "sat": sat.stats()
                                if sat is not None else None,
                                "bdd": workspace.stats()
                                if workspace is not None else None,
                            })
                            continue
                _send({"type": "error", "lease": lease_id,
                       "index": index, "exc_type": failed[0],
                       "message": failed[1]})
    except (OSError, FrameError):
        return  # coordinator died or dropped us; local state is moot
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass


def jobs_from_config(config) -> List[CheckJob]:
    """Re-derive the campaign's job list from a
    :class:`~repro.orchestrate.config.CampaignConfig` — the replan
    path a remote (ssh-launched) worker takes.  Planning is
    deterministic (same blocks, same engines ⇒ same jobs, indices, and
    fingerprints), so the coordinator's lease specs match by
    construction; any drift is caught by the worker's per-lease
    fingerprint cross-check."""
    from ..chip import ComponentChip
    from .planner import plan_campaign
    only = list(config.blocks) if config.blocks is not None else None
    blocks = ComponentChip(only_blocks=only).blocks
    plan = plan_campaign(
        blocks, config.build_engines(), lint=config.lint,
        coi_fingerprints=config.coi_fingerprints or "module",
        coi_slice=bool(config.coi_slice),
    )
    return list(plan.jobs)


def run_fleet_worker(config, connect: str, worker_id: str,
                     token: str) -> int:
    """``python -m repro fleet worker`` entry: replan from the config,
    dial the coordinator, serve leases until shutdown."""
    host, sep, port_text = connect.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"--connect must be HOST:PORT, got {connect!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"--connect must be HOST:PORT, got {connect!r}"
        ) from None
    settings = {
        "share_bdd": config.share_bdd,
        "workspace_options": config.workspace_options(),
        "compile_store": config.compile_store,
        "store_options": config.compile_store_options(),
        "share_sat": config.sat_workspace,
        "sat_options": config.sat_workspace_options(),
        "heartbeat_interval": config.fleet_heartbeat_interval,
    }
    _fleet_worker_main(worker_id, host, port, token, settings,
                       jobs_from_config(config))
    return 0


# ----------------------------------------------------------------------
# launchers
# ----------------------------------------------------------------------

class LocalFleetLauncher:
    """Fork fleet workers on this host (the test/CI launcher).

    The launch context prefers the ``fork`` start method, so workers
    inherit the coordinator's in-memory job list — job bodies never
    cross the socket, only :meth:`CheckJob.spec` identities do.
    """

    name = "local"

    def launch(self, worker_id: str, address: Tuple[str, int],
               token: str, settings: dict,
               jobs: Optional[List[CheckJob]]):
        context = _pool_context()
        process = context.Process(
            target=_fleet_worker_main,
            args=(worker_id, address[0], address[1], token, settings,
                  jobs),
            daemon=True,
        )
        process.start()
        return process

    def alive(self, handle) -> bool:
        return handle.is_alive()

    def stop(self, handle) -> None:
        if handle.is_alive():
            handle.terminate()

    def join(self, handle, timeout: Optional[float] = None) -> None:
        handle.join(timeout)


class SshFleetLauncher:
    """Multi-host launcher stub: one ``ssh`` subprocess per worker,
    running ``python -m repro fleet worker`` on a round-robin host.

    Same interface as :class:`LocalFleetLauncher`, so the coordinator
    is launcher-agnostic.  Remote workers replan from ``config_path``
    (which must resolve on the remote host) and dial back to
    ``connect_host`` (the address remote hosts reach the coordinator
    at — bind the executor to ``host="0.0.0.0"`` and advertise a real
    interface here).  This is deliberately a *stub*: command
    construction and the interface are unit-tested, but CI certifies
    the fleet transport through the local launcher — the wire protocol
    is identical either way.
    """

    name = "ssh"

    def __init__(self, hosts: Iterable[str],
                 config_path: str = "campaign.toml",
                 python: str = "python3",
                 ssh_command: Tuple[str, ...] = ("ssh",),
                 connect_host: Optional[str] = None) -> None:
        self.hosts = tuple(hosts)
        if not self.hosts:
            raise ValueError(
                "ssh launcher needs at least one host "
                "(spec: ssh:host1,host2,...)"
            )
        self.config_path = config_path
        self.python = python
        self.ssh_command = tuple(ssh_command)
        self.connect_host = connect_host
        self._next_host = 0

    def command(self, host: str, worker_id: str,
                address: Tuple[str, int], token: str) -> Tuple[str, ...]:
        """The exact argv one worker launch runs (pure — unit-testable
        without an ssh daemon)."""
        connect = f"{self.connect_host or address[0]}:{address[1]}"
        return (*self.ssh_command, host,
                self.python, "-m", "repro", "fleet", "worker",
                "--config", self.config_path,
                "--connect", connect,
                "--worker-id", worker_id,
                "--token", token)

    def launch(self, worker_id: str, address: Tuple[str, int],
               token: str, settings: dict,
               jobs: Optional[List[CheckJob]]):
        host = self.hosts[self._next_host % len(self.hosts)]
        self._next_host += 1
        return subprocess.Popen(
            self.command(host, worker_id, address, token)
        )

    def alive(self, handle) -> bool:
        return handle.poll() is None

    def stop(self, handle) -> None:
        if handle.poll() is None:
            handle.terminate()

    def join(self, handle, timeout: Optional[float] = None) -> None:
        try:
            handle.wait(timeout)
        except subprocess.TimeoutExpired:
            pass


#: launcher spec vocabulary for ``[fleet] launcher`` — ``local`` or
#: ``ssh:host1,host2,...``
FLEET_LAUNCHERS = ("local", "ssh")


def parse_launcher_spec(spec: str, config_path: str = "campaign.toml"):
    """Resolve a launcher spec string into a launcher instance.
    Grammar: ``local`` | ``ssh:host1,host2,...``."""
    if not isinstance(spec, str):
        raise ValueError(
            f"fleet launcher spec must be a string, got {spec!r}"
        )
    text = spec.strip()
    if text == "local":
        return LocalFleetLauncher()
    kind, sep, arg = text.partition(":")
    if kind.strip() == "ssh":
        hosts = tuple(h.strip() for h in arg.split(",") if h.strip())
        if not sep or not hosts:
            raise ValueError(
                f"fleet launcher spec {spec!r}: ssh needs hosts, "
                f"e.g. ssh:host1,host2"
            )
        return SshFleetLauncher(hosts, config_path=config_path)
    raise ValueError(
        f"unknown fleet launcher {spec!r}; expected 'local' or "
        f"'ssh:host1,host2,...'"
    )


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------

class _Lease:
    """One outstanding batch: its wire id, the unit's jobs, and the
    indices still unanswered."""

    __slots__ = ("id", "unit", "remaining")

    def __init__(self, lease_id: int, unit: List[CheckJob]) -> None:
        self.id = lease_id
        self.unit = unit
        self.remaining = {job.index for job in unit}


class _WorkerState:
    """Coordinator-side view of one worker connection."""

    __slots__ = ("name", "conn", "lease", "last_seen", "pid",
                 "zombie", "dead")

    def __init__(self, name: str, conn: socket.socket) -> None:
        self.name = name
        self.conn = conn
        self.lease: Optional[_Lease] = None
        self.last_seen = time.monotonic()
        self.pid: Optional[int] = None
        self.zombie = False  # stalled: lease revoked, frames rejected
        self.dead = False    # connection gone


class _FleetRun:
    """All per-``map`` coordinator state: the TCP server, worker
    bookkeeping, the lease ledger, and the plan-order result buffer.
    Runs entirely on the consumer's thread — reader threads only
    enqueue events — so no lock guards any of it."""

    def __init__(self, executor: "FleetExecutor",
                 jobs: List[CheckJob]) -> None:
        self.executor = executor
        self.jobs = jobs
        self.jobs_by_index = {job.index: job for job in jobs}
        self.unsettled = {job.index for job in jobs}
        self.settled: Dict[int, object] = {}
        self.pending_units = collections.deque()
        self.events = queue_module.Queue()
        self.workers: Dict[str, _WorkerState] = {}
        self.by_conn: Dict[socket.socket, _WorkerState] = {}
        self.handles: Dict[str, object] = {}
        self.launch_times: Dict[str, float] = {}
        self.conns: List[socket.socket] = []
        self.server: Optional[socket.socket] = None
        self.token = uuid.uuid4().hex
        self.next_lease_id = 0
        self.next_worker = 0
        self.respawns_used = 0
        self.closed = False
        self.stats = {
            "workers_launched": 0,
            "workers_lost": 0,
            "leases_issued": 0,
            "leases_reissued": 0,
            "results_rejected": 0,
            "jobs_per_worker": {},
        }
        timeout = executor.lease_timeout
        self.tick = max(0.02, min(executor.heartbeat_interval,
                                  timeout / 4.0, 0.25))
        # a launched worker that never says hello within this window is
        # written off (and replaced), so a wedged launch cannot hang
        # the stream
        self.hello_timeout = max(executor.lease_timeout, 10.0)

    # -- startup -------------------------------------------------------
    def start(self) -> None:
        executor = self.executor
        units = executor.scheduling.batches(self.jobs)
        if sorted(job.index for unit in units for job in unit) != \
                sorted(job.index for job in self.jobs):
            raise RuntimeError(
                f"scheduling policy {executor.scheduling.name!r} lost "
                f"or duplicated jobs while batching"
            )
        self.pending_units.extend(units)
        self.server = socket.create_server(
            (executor.host, executor.port)
        )
        self.server.settimeout(1.0)
        self.address = (executor.host, self.server.getsockname()[1])
        threading.Thread(target=self._acceptor, daemon=True).start()
        worker_count = min(executor.workers, len(units))
        for _ in range(worker_count):
            self._launch_one()

    def _launch_one(self) -> None:
        name = f"w{self.next_worker}"
        self.next_worker += 1
        try:
            handle = self.executor.launcher.launch(
                name, self.address, self.token,
                self.executor._worker_settings(), self.jobs,
            )
        except Exception as exc:
            raise FleetError(
                f"fleet launcher {self.executor.launcher.name!r} "
                f"failed to start worker {name}: {exc}"
            ) from exc
        self.handles[name] = handle
        self.launch_times[name] = time.monotonic()
        self.stats["workers_launched"] += 1

    # -- reader/acceptor threads --------------------------------------
    def _acceptor(self) -> None:
        while True:
            try:
                conn, _addr = self.server.accept()
            except socket.timeout:
                if self.closed:
                    return
                continue
            except OSError:
                return  # server closed — run is over
            self.events.put(("accepted", conn, None))

    def _reader(self, conn: socket.socket) -> None:
        try:
            while True:
                frame = recv_frame(conn)
                if frame is None:
                    self.events.put(("gone", conn, "connection closed"))
                    return
                self.events.put(("frame", conn, frame))
        except (FrameError, OSError) as exc:
            self.events.put(("gone", conn, str(exc)))

    # -- the consumer-thread pump -------------------------------------
    def next_payload(self, index: int):
        """Pump events until ``index`` is settled; return its payload
        dict (or the worker-side ``BaseException``)."""
        while index not in self.settled:
            self._dispatch()
            self._check_stalls()
            self._ensure_capacity()
            try:
                event = self.events.get(timeout=self.tick)
            except queue_module.Empty:
                continue
            self._handle(event)
        return self.settled.pop(index)

    def _handle(self, event) -> None:
        kind, conn, data = event
        if kind == "accepted":
            self.conns.append(conn)
            threading.Thread(target=self._reader, args=(conn,),
                             daemon=True).start()
        elif kind == "frame":
            self._handle_frame(conn, data)
        elif kind == "gone":
            state = self.by_conn.get(conn)
            if state is not None:
                self._lose_worker(state)

    def _handle_frame(self, conn: socket.socket, frame: dict) -> None:
        frame_type = frame.get("type")
        state = self.by_conn.get(conn)
        if frame_type == "hello":
            if frame.get("token") != self.token:
                # a stray connection to our port: drop it, never lease
                _hangup(conn)
                return
            name = str(frame.get("worker") or f"anon{len(self.workers)}")
            state = _WorkerState(name, conn)
            state.pid = frame.get("pid")
            self.workers[name] = state
            self.by_conn[conn] = state
            self.stats["jobs_per_worker"].setdefault(name, 0)
            return
        if state is None:
            return  # frames before hello (or after a token reject)
        state.last_seen = time.monotonic()
        if frame_type == "heartbeat":
            return
        if frame_type not in ("result", "error"):
            return
        lease = state.lease
        index = frame.get("index")
        if state.zombie or state.dead or lease is None \
                or lease.id != frame.get("lease") \
                or index not in lease.remaining:
            # late, duplicate, or revoked — at-most-once acceptance
            self.stats["results_rejected"] += 1
            return
        if frame_type == "result":
            job = self.jobs_by_index[index]
            if frame.get("fingerprint") != job.fingerprint:
                # a worker answering for the wrong content is a
                # protocol violation: reject and drop the worker
                self.stats["results_rejected"] += 1
                self._lose_worker(state)
                return
            self.settled[index] = frame
            self.stats["jobs_per_worker"][state.name] = \
                self.stats["jobs_per_worker"].get(state.name, 0) + 1
        else:
            self.settled[index] = _rebuild_exception(
                str(frame.get("exc_type", "RuntimeError")),
                str(frame.get("message", "fleet worker error")),
            )
        self.unsettled.discard(index)
        lease.remaining.discard(index)
        if not lease.remaining:
            state.lease = None  # idle — next _dispatch leases again

    # -- lease bookkeeping --------------------------------------------
    def _dispatch(self) -> None:
        if not self.pending_units:
            return
        for name in sorted(self.workers):
            if not self.pending_units:
                return
            state = self.workers[name]
            if state.dead or state.zombie or state.lease is not None:
                continue
            unit = self.pending_units.popleft()
            lease = _Lease(self.next_lease_id, unit)
            self.next_lease_id += 1
            try:
                send_frame(state.conn, {
                    "type": "lease",
                    "lease": lease.id,
                    "jobs": [job.spec() for job in unit],
                })
            except (OSError, FrameError):
                self.pending_units.appendleft(unit)
                self._lose_worker(state)
                continue
            state.lease = lease
            self.stats["leases_issued"] += 1

    def _requeue(self, state: _WorkerState) -> None:
        lease = state.lease
        state.lease = None
        if lease is None or not lease.remaining:
            return
        unit = [job for job in lease.unit
                if job.index in lease.remaining]
        self.pending_units.appendleft(unit)
        self.stats["leases_reissued"] += 1

    def _lose_worker(self, state: _WorkerState) -> None:
        """Connection-level loss (EOF, send failure, bad frame): the
        worker is gone for good — requeue its lease, close its end."""
        if state.dead:
            return
        state.dead = True
        if not state.zombie:
            self.stats["workers_lost"] += 1
        self._requeue(state)
        _hangup(state.conn)

    def _check_stalls(self) -> None:
        """Declare zombies: a leased worker that has not been heard
        from (results *or* heartbeats) within the lease timeout loses
        its lease.  The connection stays open — any frame it sends
        later is rejected by the at-most-once check, which is exactly
        the behaviour the fault suite certifies."""
        now = time.monotonic()
        timeout = self.executor.lease_timeout
        for state in self.workers.values():
            if state.dead or state.zombie or state.lease is None:
                continue
            if now - state.last_seen > timeout:
                state.zombie = True
                self.stats["workers_lost"] += 1
                self._requeue(state)

    def _ensure_capacity(self) -> None:
        """Replace lost workers (bounded respawn budget) and fail loudly
        instead of wedging when nobody is left to make progress."""
        if not self.unsettled:
            return
        now = time.monotonic()
        for name in list(self.handles):
            if name in self.workers:
                continue
            handle = self.handles[name]
            launched = self.launch_times.get(name, now)
            if not self.executor.launcher.alive(handle):
                # died before hello
                del self.handles[name]
                self.stats["workers_lost"] += 1
            elif now - launched > self.hello_timeout:
                # wedged before hello: write it off and replace
                self.executor.launcher.stop(handle)
                del self.handles[name]
                self.stats["workers_lost"] += 1
        live = sum(1 for state in self.workers.values()
                   if not state.dead and not state.zombie)
        coming = sum(1 for name in self.handles
                     if name not in self.workers)
        capacity = live + coming
        if capacity >= min(self.executor.workers,
                           max(1, len(self.pending_units) + 1)) \
                and capacity > 0:
            return
        if capacity > 0 and not self.pending_units:
            return  # remaining work is leased to live workers
        if self.respawns_used < self.executor.max_respawns:
            self.respawns_used += 1
            self._launch_one()
            return
        if capacity == 0:
            raise FleetError(
                f"fleet: all workers lost with "
                f"{len(self.unsettled)} jobs unfinished and the "
                f"respawn budget ({self.executor.max_respawns}) spent"
            )

    # -- shutdown ------------------------------------------------------
    def finish(self) -> None:
        """Graceful end-of-stream: every job settled — dismiss the
        workers and wait for local processes to exit."""
        for state in self.workers.values():
            if state.dead:
                continue
            try:
                send_frame(state.conn, {"type": "shutdown"})
            except (OSError, FrameError):
                pass
        for handle in self.handles.values():
            self.executor.launcher.join(handle, timeout=5.0)
        self.close()

    def close(self) -> None:
        """Tear everything down; idempotent, safe mid-stream."""
        if self.closed:
            return
        self.closed = True
        if self.server is not None:
            try:
                self.server.close()
            except OSError:
                pass
        for handle in self.handles.values():
            try:
                self.executor.launcher.stop(handle)
            except Exception:
                pass
        for handle in self.handles.values():
            try:
                self.executor.launcher.join(handle, timeout=2.0)
            except Exception:
                pass
        for conn in self.conns:
            _hangup(conn)


class FleetExecutor:
    """Socket-fanout executor: a TCP coordinator leasing plan jobs to
    launcher-started worker processes over the portable wire format.

    Same streaming contract as every other executor — results yield in
    plan order, errors re-raise at their plan turn, ``close()``
    mid-stream tears the fleet down and the executor is reusable — so
    checkpoints, caches, and report aggregation work unchanged.

    ``workers`` is the fleet size (default: CPU count).  ``launcher``
    is a launcher instance or spec string (``"local"`` — the default —
    or ``"ssh:host1,host2"``); ``host``/``port`` are the coordinator's
    bind address (port 0 = ephemeral).  ``lease_timeout`` is the
    no-heartbeat window after which a worker's lease is revoked and
    re-issued; ``heartbeat_interval`` is the workers' liveness cadence;
    ``max_respawns`` bounds replacement launches (default: the fleet
    size).  The warm-state trio (``share_bdd`` / ``compile_store`` /
    ``share_sat`` and their option dicts) is per worker process,
    exactly as in the multiprocessing pools; ``scheduling`` picks the
    lease granularity (module-affinity units keep one module's warm
    state on one worker).

    Falls back to in-process serial execution for <=1 job or a 1-worker
    fleet, reporting ``fleet[serial-fallback]`` — a socket round-trip
    to one local worker could only add overhead.
    """

    def __init__(self, workers: Optional[int] = None,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 lease_timeout: float = 30.0,
                 heartbeat_interval: float = 0.5,
                 launcher=None,
                 scheduling=None,
                 max_respawns: Optional[int] = None,
                 share_bdd: bool = False,
                 workspace_options: Optional[dict] = None,
                 compile_store: bool = True,
                 store_options: Optional[dict] = None,
                 share_sat: bool = False,
                 sat_options: Optional[dict] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if lease_timeout <= 0:
            raise ValueError(
                f"lease_timeout must be > 0, got {lease_timeout}"
            )
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        if not 0 <= port <= 65535:
            raise ValueError(f"port must be 0..65535, got {port}")
        self.workers = workers or os.cpu_count() or 1
        self.host = host
        self.port = port
        self.lease_timeout = float(lease_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        if launcher is None:
            launcher = LocalFleetLauncher()
        elif isinstance(launcher, str):
            launcher = parse_launcher_spec(launcher)
        self.launcher = launcher
        if scheduling is None:
            from .policy import FifoScheduling
            scheduling = FifoScheduling()
        self.scheduling = scheduling
        self.max_respawns = max_respawns if max_respawns is not None \
            else self.workers
        self.share_bdd = share_bdd
        self.workspace_options = workspace_options
        self.compile_store = compile_store
        self.store_options = store_options
        self.share_sat = share_sat
        self.sat_options = sat_options
        self._fell_back = False
        self._fallback: Optional[SerialExecutor] = None
        self._run: Optional[_FleetRun] = None
        self._worker_stats: Dict[object, dict] = {}
        self._sat_worker_stats: Dict[object, dict] = {}
        self._bdd_worker_stats: Dict[object, dict] = {}

    @property
    def name(self) -> str:
        """Reports the *effective* mode, like the multiprocessing
        pools: a 1-worker or <=1-job run never opens a socket."""
        if self._fell_back:
            return "fleet[serial-fallback]"
        return "fleet"

    def _worker_settings(self) -> dict:
        return {
            "share_bdd": self.share_bdd,
            "workspace_options": self.workspace_options,
            "compile_store": self.compile_store,
            "store_options": self.store_options,
            "share_sat": self.share_sat,
            "sat_options": self.sat_options,
            "heartbeat_interval": self.heartbeat_interval,
        }

    def map(self, jobs: Iterable[CheckJob]) -> Iterator[JobResult]:
        """Stream results in plan order off the fleet: leases go out to
        whichever workers are idle, completions are buffered by index,
        and each result (or worker error) surfaces exactly at its plan
        turn — re-leasing behind the scenes whenever a worker dies or
        stalls."""
        jobs = list(jobs)
        if len(jobs) <= 1 or self.workers == 1:
            self._fell_back = True
            self._run = None
            self._fallback = SerialExecutor(
                share_bdd=self.share_bdd,
                workspace_options=self.workspace_options,
                compile_store=self.compile_store,
                store_options=self.store_options,
                share_sat=self.share_sat,
                sat_options=self.sat_options,
            )
            yield from self._fallback.map(jobs)
            return
        self._fell_back = False
        self._fallback = None
        self._worker_stats = {}
        self._sat_worker_stats = {}
        self._bdd_worker_stats = {}
        decode_store = _build_store(self.compile_store,
                                    self.store_options)
        run = _FleetRun(self, jobs)
        self._run = run
        try:
            run.start()
            for job in jobs:
                payload = run.next_payload(job.index)
                if isinstance(payload, BaseException):
                    raise payload
                self._note_payload_stats(payload)
                yield decode_job_result(payload["result"], job,
                                        decode_store)
            # reached when the consumer drives the generator past the
            # last result (the orchestrator always does): dismiss the
            # fleet gracefully
            run.finish()
        finally:
            run.close()

    def _note_payload_stats(self, payload: dict) -> None:
        pid = payload.get("pid")
        if payload.get("store") is not None:
            _note_worker_stats(self._worker_stats, pid, payload["store"])
        if payload.get("sat") is not None:
            _note_worker_stats(self._sat_worker_stats, pid,
                               payload["sat"])
        if payload.get("bdd") is not None:
            _note_worker_stats(self._bdd_worker_stats, pid,
                               payload["bdd"])

    def compile_stats(self) -> Dict[str, int]:
        """Aggregated per-worker store counters from the last ``map``;
        ``{}`` when the store is off."""
        if self._fallback is not None:
            return self._fallback.compile_stats()
        return _merge_worker_stats(self._worker_stats)

    def sat_stats(self) -> Dict[str, int]:
        """Aggregated per-worker SAT-workspace counters from the last
        ``map``; ``{}`` when sharing is off."""
        if self._fallback is not None:
            return self._fallback.sat_stats()
        return _merge_worker_stats(self._sat_worker_stats)

    def workspace_stats(self) -> Dict[str, int]:
        """Aggregated per-worker BDD-workspace counters from the last
        ``map``; ``{}`` when sharing is off."""
        if self._fallback is not None:
            return self._fallback.workspace_stats()
        return _merge_worker_stats(self._bdd_worker_stats)

    def fleet_stats(self) -> Dict[str, object]:
        """Transport bookkeeping from the last ``map`` — workers
        launched/lost, leases issued/re-issued, rejected (late or
        duplicate) results, and per-worker accepted-job counts.  The
        orchestrator surfaces this as ``report.stats["fleet"]``; a
        serial-fallback (or not-yet-run) executor reports ``{}``."""
        if self._run is None:
            return {}
        return {key: (dict(value) if isinstance(value, dict) else value)
                for key, value in self._run.stats.items()}
