"""Pluggable campaign policies: scheduling and portfolio ordering.

A campaign's *outcome* is fixed by its plan (which checks run, with
which engine portfolio) — but *how* the orchestrator walks that plan is
a policy decision: which worker runs which job next, and which
portfolio stage a job tries first.  This module gives those decisions
an API slot:

- a :class:`SchedulingPolicy` turns the plan's job list into the
  ordered *work units* a pull-based executor's queue hands out.  The
  default (:class:`FifoScheduling`) is one job per unit — exactly the
  work-stealing behaviour the executor always had.
  :class:`ModuleAffinityScheduling` batches each module's jobs
  (``CampaignPlan.module_groups()``) into one unit, so one worker keeps
  one module's shared BDD manager hot instead of the pool interleaving
  modules across workers;
- a :class:`PortfolioPolicy` picks the *attempt order* of a job's
  engine portfolio.  The default (:class:`StaticPortfolio`) runs the
  configured order.  :class:`AdaptivePortfolio` consults the
  :class:`~repro.orchestrate.cache.ResultCache`'s engine history — the
  engine that historically settled this module/category — and tries
  that stage first.

Both policies are **outcome-invariant by construction**, and the tests
enforce it (``CampaignReport.canonical_bytes`` must not move):

- scheduling reorders only *execution*; the executor's reassembly
  buffer restores plan order, so aggregation never sees the difference;
- portfolio ordering is carried as a permutation
  (:attr:`~repro.orchestrate.job.CheckJob.engine_order`) **outside**
  the job fingerprint, so cache keys and checkpoint journals are
  identical whatever the policy.  A definitive PASS/FAIL verdict is
  stage-order-invariant (every engine is sound, and counterexamples
  are concretised by the same deterministic BMC run); when *no* stage
  is definitive the runner reports the stage that is last in the
  *configured* order, exactly as the static policy would.  Which stage
  happened to win — and its engine-specific proof bound — is run
  provenance, reported in ``result.stats`` and normalised away by
  ``canonical_bytes`` for portfolio results.

Policies are selected by name from
:class:`~repro.orchestrate.config.CampaignConfig`
(``scheduling = "module-affinity"``, ``portfolio = "adaptive"``); the
registries at the bottom are the lookup tables the config layer uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .job import CheckJob


class SchedulingPolicy:
    """Orders a pull-based executor's work queue.

    ``batches(jobs)`` partitions the job list into the units a worker
    pulls at once, in hand-out order.  Every job must appear exactly
    once; executors stream results back in plan order regardless, so a
    policy can only change *cost* (worker affinity, steal order), never
    the campaign outcome.
    """

    name = "?"

    def batches(self, jobs: Sequence[CheckJob]) -> List[List[CheckJob]]:
        raise NotImplementedError


class FifoScheduling(SchedulingPolicy):
    """One job per unit, in plan order — the classic work-stealing
    queue (maximum balance, no module affinity)."""

    name = "fifo"

    def batches(self, jobs: Sequence[CheckJob]) -> List[List[CheckJob]]:
        return [[job] for job in jobs]


class ModuleAffinityScheduling(SchedulingPolicy):
    """One unit per module group, in first-appearance order.

    Jobs sharing a ``workspace_key`` (the module's RTL digest) encode
    their transition relations over the same variable numbering, so
    they profit from one shared BDD manager — but a one-job-at-a-time
    queue sprays them across workers, each rebuilding (or LRU-thrashing)
    its own manager.  Batching the whole group into one unit keeps one
    module's manager hot on one worker; stealing still balances at the
    granularity of modules, which is exactly the granularity at which
    balance is free.
    """

    name = "module-affinity"

    def batches(self, jobs: Sequence[CheckJob]) -> List[List[CheckJob]]:
        groups: Dict[str, List[CheckJob]] = {}
        order: List[str] = []
        for job in jobs:
            key = job.workspace_key
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(job)
        return [groups[key] for key in order]


class PortfolioPolicy:
    """Picks the attempt order of a job's engine portfolio.

    ``order(job)`` returns a permutation of ``range(len(job.engines))``
    — the execution order of the portfolio stages — or ``None`` for
    the configured order.  The permutation rides on
    :attr:`CheckJob.engine_order`, which is execution-time wiring:
    it never enters the job fingerprint, the result cache key, or the
    checkpoint journal, so policy choice cannot split the cache or
    invalidate a resume.
    """

    name = "?"

    def order(self, job: CheckJob) -> Optional[Tuple[int, ...]]:
        raise NotImplementedError


class StaticPortfolio(PortfolioPolicy):
    """Run the configured stage order — today's behaviour."""

    name = "static"

    def order(self, job: CheckJob) -> Optional[Tuple[int, ...]]:
        return None


class AdaptivePortfolio(PortfolioPolicy):
    """Try the historically winning engine first.

    History comes from the result cache
    (:meth:`~repro.orchestrate.cache.ResultCache.engine_history`): the
    engine that most recently settled a check of the same module name
    and property category — module *name*, not digest, because the
    whole point is the ECO scenario where an edited module misses the
    cache but its history still predicts the winner.  Falls back to a
    category-wide winner, then to the configured order; with no cache
    attached (or no history yet) the policy degrades to
    :class:`StaticPortfolio` behaviour.
    """

    name = "adaptive"

    def __init__(self, cache=None) -> None:
        self._history: Dict[Tuple[Optional[str], str], str] = \
            cache.engine_history() if cache is not None else {}

    def order(self, job: CheckJob) -> Optional[Tuple[int, ...]]:
        if len(job.engines) < 2:
            return None
        winner = self._history.get((job.module.name, job.category))
        if winner is None:
            winner = self._history.get((None, job.category))
        if winner is None:
            return None
        for position, config in enumerate(job.engines):
            if config.method == winner:
                if position == 0:
                    return None
                rest = [i for i in range(len(job.engines))
                        if i != position]
                return (position, *rest)
        return None


#: name -> scheduling policy class (the config layer's lookup table)
SCHEDULING_POLICIES = {
    FifoScheduling.name: FifoScheduling,
    ModuleAffinityScheduling.name: ModuleAffinityScheduling,
}

#: name -> portfolio policy class
PORTFOLIO_POLICIES = {
    StaticPortfolio.name: StaticPortfolio,
    AdaptivePortfolio.name: AdaptivePortfolio,
}


def scheduling_policy(name: str) -> SchedulingPolicy:
    """Instantiate the scheduling policy registered as ``name``."""
    try:
        return SCHEDULING_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; "
            f"pick one of {tuple(SCHEDULING_POLICIES)}"
        ) from None


def portfolio_policy(name: str, cache=None) -> PortfolioPolicy:
    """Instantiate the portfolio policy registered as ``name``.

    ``cache`` is handed to policies that learn from history
    (:class:`AdaptivePortfolio`); stateless policies ignore it.
    """
    try:
        cls = PORTFOLIO_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown portfolio policy {name!r}; "
            f"pick one of {tuple(PORTFOLIO_POLICIES)}"
        ) from None
    if cls is AdaptivePortfolio:
        return cls(cache)
    return cls()
