"""Bounded model checking (BMC) over the CDCL SAT solver.

The transition system is unrolled frame by frame into one incremental
solver; assumptions (the PSL ``assume`` directives) are asserted as unit
clauses at every frame, and the ``bad`` literal is queried per frame
under a solver assumption, so one solver instance serves all bounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..rtl.netlist import FALSE, TRUE
from .budget import ResourceBudget
from .cnf import CnfContext
from .sat import Solver, stats_delta
from .trace import Trace
from .transition import TransitionSystem


class Unroller:
    """Time-frame expansion of a transition system into a solver."""

    def __init__(self, ts: TransitionSystem, solver: Solver,
                 constrain_init: bool = True) -> None:
        self.ts = ts
        self.solver = solver
        self.constrain_init = constrain_init
        self._frames: List[CnfContext] = []

    def frame(self, index: int) -> CnfContext:
        """The CNF context of frame ``index``, creating frames (and
        latch linkage) on demand."""
        while len(self._frames) <= index:
            self._add_frame()
        return self._frames[index]

    def _add_frame(self) -> None:
        t = len(self._frames)
        ctx = CnfContext(self.ts.aig, self.solver)
        if t == 0:
            if self.constrain_init:
                for latch, init_bit in self.ts.init.items():
                    lit = self.solver.new_var() << 1
                    ctx.bind(latch, lit)
                    self.solver.add_clause([lit ^ (init_bit ^ 1)])
        else:
            previous = self._frames[t - 1]
            for latch in self.ts.latches:
                next_lit = previous.lit(self.ts.next_fn[latch])
                ctx.bind(latch, next_lit)
        self._frames.append(ctx)

    # ------------------------------------------------------------------
    def constraint_at(self, frame: int) -> int:
        return self.frame(frame).lit(self.ts.constraint)

    def bad_at(self, frame: int) -> int:
        return self.frame(frame).lit(self.ts.bad)

    def assert_constraint(self, frame: int) -> None:
        if self.ts.constraint != TRUE:
            self.solver.add_clause([self.constraint_at(frame)])

    def extract_inputs(self, up_to_frame: int) -> List[Dict[int, int]]:
        """Input bit values per frame from the current SAT model."""
        frames: List[Dict[int, int]] = []
        for t in range(up_to_frame + 1):
            ctx = self._frames[t]
            frames.append({
                lit: ctx.value_of(lit) for lit in self.ts.inputs
            })
        return frames


class BmcResult:
    """Outcome of a BMC run."""

    def __init__(self, failed: bool, bound: int,
                 trace: Optional[Trace], stats: Dict[str, int]) -> None:
        self.failed = failed
        self.bound = bound
        self.trace = trace
        self.stats = stats

    def __repr__(self) -> str:
        verdict = "FAIL" if self.failed else "no-cex"
        return f"BmcResult({verdict} @ bound {self.bound})"


def bmc(ts: TransitionSystem, max_bound: int,
        budget: Optional[ResourceBudget] = None,
        start_bound: int = 0) -> BmcResult:
    """Search for a counterexample of length ``start_bound`` ..
    ``max_bound`` (inclusive).  May raise
    :class:`~repro.formal.budget.BudgetExceeded`.
    """
    solver = Solver(budget)
    unroller = Unroller(ts, solver, constrain_init=True)
    for k in range(0, max_bound + 1):
        unroller.assert_constraint(k)
        if k < start_bound:
            # exclude shallower violations so the first hit is minimal
            if ts.bad != FALSE:
                solver.add_clause([unroller.bad_at(k) ^ 1])
            continue
        bad_lit = unroller.bad_at(k)
        if solver.solve([bad_lit]):
            trace = Trace(ts, unroller.extract_inputs(k))
            return BmcResult(True, k, trace, solver.stats_snapshot())
        solver.add_clause([bad_lit ^ 1])
    return BmcResult(False, max_bound, None, solver.stats_snapshot())


def bmc_session(session, assert_name: str, max_bound: int,
                start_bound: int = 0) -> BmcResult:
    """BMC over a shared, already-armed SAT session (see
    :mod:`repro.formal.satspace`).

    The session's solver and unroller persist across assertions and
    jobs; this run touches them only through the assertion's activation
    literal ``act``: the per-depth query is ``solve([act, bad@k])`` and
    every no-counterexample fact is recorded as the *guarded* block
    ``(¬act ∨ ¬bad@k)``, so retiring the activation later deactivates
    exactly this assertion's facts.  Frame encodings, Tseitin
    definitions, and the shared constraint units are activation-free and
    stay behind for the next assertion.

    On failure the result carries ``trace=None``: the shared CNF's model
    lives in cluster-AIG literal numbering, so callers re-derive the
    canonical counterexample with a cold :func:`bmc` on the assertion's
    solo-compiled system at the discovered (identical) depth.
    """
    solver = session.solver
    before = solver.stats_snapshot()
    act = session.activation(assert_name)
    bad_node = session.cluster.bads[assert_name]
    for k in range(0, max_bound + 1):
        session.assert_constraint(k)
        bad_lit = session.frame(k).lit(bad_node)
        if k < start_bound:
            if bad_node != FALSE:
                solver.add_clause([act ^ 1, bad_lit ^ 1])
            continue
        if solver.solve([act, bad_lit]):
            return BmcResult(True, k, None,
                             stats_delta(before, solver.stats_snapshot()))
        solver.add_clause([act ^ 1, bad_lit ^ 1])
    return BmcResult(False, max_bound, None,
                     stats_delta(before, solver.stats_snapshot()))
