"""Counterexample traces.

A :class:`Trace` is a finite input sequence from the initial state that
drives the design to a property violation.  Traces are produced by the
SAT engines, validated by concrete replay on the transition system, and
can be rendered word-level (per design port) for debugging feedback to
the logic designer — the last task in the paper's flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .transition import TransitionSystem


@dataclass
class Trace:
    """A counterexample: bit-level input values per frame.

    ``inputs_by_frame[t]`` maps AIG input literals (positive) to bits
    for cycle ``t``.  The violation occurs at the last frame.
    """

    ts: TransitionSystem
    inputs_by_frame: List[Dict[int, int]]

    @property
    def length(self) -> int:
        return len(self.inputs_by_frame)

    # ------------------------------------------------------------------
    def replay(self) -> bool:
        """Concretely replay the trace; True when it really violates the
        property while satisfying every assumption."""
        state = self.ts.initial_state()
        for frame, inputs in enumerate(self.inputs_by_frame):
            next_state, bad, cons = self.ts.evaluate_step(state, inputs)
            if not cons:
                return False
            if bad:
                return frame == self.length - 1
            state = next_state
        return False

    # ------------------------------------------------------------------
    def canonical_frames(self) -> List[List[tuple]]:
        """Deterministic, JSON-able form of the input frames: per frame,
        the ``(literal, bit)`` pairs in sorted order.  The one encoding
        shared by the result cache, the checkpoint journal, and report
        canonicalization — two equal traces always serialize equally."""
        return [
            sorted((int(lit), int(bit) & 1) for lit, bit in frame.items())
            for frame in self.inputs_by_frame
        ]

    # ------------------------------------------------------------------
    def words_by_frame(self) -> List[Dict[str, int]]:
        """Word-level rendering using the design's port names."""
        blaster = self.ts.blaster
        if blaster is None:
            raise ValueError("trace has no bit-blaster for word recovery")
        frames: List[Dict[str, int]] = []
        for inputs in self.inputs_by_frame:
            words: Dict[str, int] = {}
            for name, bits in blaster.input_bits.items():
                value = 0
                for position, lit in enumerate(bits):
                    value |= (inputs.get(lit, 0) & 1) << position
                words[name] = value
            frames.append(words)
        return frames

    def format(self) -> str:
        """Human-readable waveform-style rendering."""
        lines = [f"counterexample, {self.length} cycle(s):"]
        for frame, words in enumerate(self.words_by_frame()):
            rendered = ", ".join(
                f"{name}={value:#x}" for name, value in sorted(words.items())
            )
            lines.append(f"  cycle {frame}: {rendered}")
        return "\n".join(lines)
