"""Content-addressed compiled-problem store — one compile per content.

The methodology checks many assertions per leaf module, and every one
of them used to pay the full psl → rtl → transition-system pipeline
almost from scratch: elaboration hid behind a fragile one-entry design
cache in the job runner, while the partitioner and the vunit compiler
reused nothing at all.  A :class:`CompiledProblemStore` replaces those
scattered compile paths with one **content-addressed, LRU-bounded**
store with a two-level structure mirroring the pipeline's two fixed
costs:

- **designs** — the elaborated :class:`~repro.rtl.elaborate.FlatDesign`
  of a module, keyed by the module's RTL digest (SHA-256 of its emitted
  Verilog).  Every assertion of a module compiles against the same
  flattened design, so a campaign pays one elaboration per *distinct
  module content* instead of one per job;
- **problems** — the compiled
  :class:`~repro.formal.transition.TransitionSystem` of one assertion,
  keyed by ``(module digest, vunit digest, assert name)``.  Replaying a
  cached FAIL, re-decoding a checkpoint entry, or re-checking the same
  assertion hits the compiled problem directly and skips the pipeline
  entirely.

Digest keying is what makes the store safe **by construction** where
the old one-entry cache needed an object-identity hack: two distinct
modules may share a name (a golden and a patched variant planned in one
campaign), but they can never share an RTL digest — so a store hit can
only ever return the elaboration of byte-identical RTL, never the
other variant's.

Sharing compiled artifacts is sound because both levels are reused the
way the pipeline always reused them:

- a :class:`FlatDesign` is compiled against by many assertions in
  sequence; property monitors appended for ``next`` operators are
  globally uniquely named and stripped by cone-of-influence reduction
  when a later problem does not reference them (the long-standing
  shared-design contract of
  :func:`~repro.psl.compile.compile_assertion`);
- a :class:`TransitionSystem` is immutable after construction — engines
  and trace replay only read it — so one compiled problem can serve any
  number of checks of the same content.

Stores are deliberately **not** shared across processes (exactly like
:class:`~repro.formal.workspace.BddWorkspace`): each executor worker
owns its own, which keeps reuse lock-free; module-affinity scheduling
(one worker runs one module's whole job group) is what turns the
per-worker store into near-perfect design reuse.

``max_designs`` / ``max_problems`` bound each level independently
(least recently used evicted first; ``None`` = unbounded).  Lifetime
counters (`hits`, `misses`, evictions, per level) surface in
``CampaignReport.stats["compile_store"]`` and the campaign benchmark's
compile-store probe.

The module also keeps process-wide totals —
:func:`elaborations_total` / :func:`compilations_total` — mirroring
:func:`repro.formal.bdd.nodes_created_total`: benchmarks diff them
around a campaign to measure how many pipeline runs the store actually
avoided.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from ..rtl.elaborate import FlatDesign, elaborate
from ..rtl.module import Module
from ..rtl.verilog import emit_module
from .transition import TransitionSystem

#: process-wide pipeline counters (monotonic; diff around a run)
_ELABORATIONS = 0
_COMPILATIONS = 0


def elaborations_total() -> int:
    """Process-wide count of module elaborations performed through the
    compile layer (store misses and store-less compiles alike)."""
    return _ELABORATIONS


def compilations_total() -> int:
    """Process-wide count of assertion-to-transition-system
    compilations performed through the compile layer."""
    return _COMPILATIONS


def note_elaboration() -> None:
    """Count one elaboration.  The primitives themselves call these —
    :func:`~repro.psl.compile.compile_assertion` counts its compile
    (and its elaboration when it elaborates), the store counts the
    elaborations it performs directly — so every compile path, with or
    without a store, is counted once and store-on/off runs are
    directly comparable."""
    global _ELABORATIONS
    _ELABORATIONS += 1


def note_compilation() -> None:
    """Count one assertion compilation (see :func:`note_elaboration`)."""
    global _COMPILATIONS
    _COMPILATIONS += 1


def content_digest(text: str) -> str:
    """SHA-256 hex digest of one content key component (module RTL,
    vunit PSL) — the same digest the campaign planner stamps into
    :class:`~repro.orchestrate.job.CheckJob`."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CompiledProblemStore:
    """Two-level LRU store of elaborated designs and compiled problems.

    ``design(module)`` returns the module's elaborated
    :class:`FlatDesign`; ``problem(module, vunit, assert_name)`` returns
    the assertion's compiled :class:`TransitionSystem` — both served
    from the store when their content digests match a retained entry,
    compiled (and retained) otherwise.  Callers that already know the
    digests (the campaign planner computes them once per module/vunit)
    pass them in; otherwise the store derives them from the emitted
    sources.

    Parameters
    ----------
    max_designs:
        Retain at most this many elaborated designs (least recently
        used evicted first).  ``None`` = unbounded.
    max_problems:
        Retain at most this many compiled transition systems.
        ``None`` = unbounded.
    """

    def __init__(self, max_designs: Optional[int] = 8,
                 max_problems: Optional[int] = 64) -> None:
        if max_designs is not None and max_designs < 1:
            raise ValueError(
                f"max_designs must be >= 1 or None, got {max_designs}"
            )
        if max_problems is not None and max_problems < 1:
            raise ValueError(
                f"max_problems must be >= 1 or None, got {max_problems}"
            )
        self.max_designs = max_designs
        self.max_problems = max_problems
        #: module digest -> elaborated design, LRU order (oldest first)
        self._designs: Dict[str, FlatDesign] = {}
        #: (module digest, vunit digest, assert) -> transition system
        self._problems: Dict[Tuple[str, str, str], TransitionSystem] = {}
        #: module digest -> cone index over the retained design
        #: (derived artifact — lives and dies with its design entry)
        self._cone_indexes: Dict[str, "ConeIndex"] = {}
        #: cone digest -> sliced design, LRU order (oldest first);
        #: bounded by ``max_designs`` like the full designs.  Keyed by
        #: cone content, so cone-equal assertions of *different*
        #: modules (a golden and its out-of-cone mutants) share one
        #: slice
        self._slices: Dict[str, FlatDesign] = {}
        self._design_hits = 0
        self._design_misses = 0
        self._design_evictions = 0
        self._problem_hits = 0
        self._problem_misses = 0
        self._problem_evictions = 0
        self._slice_hits = 0
        self._slice_misses = 0
        self._slice_evictions = 0

    # ------------------------------------------------------------------
    def design(self, module: Module,
               module_digest: Optional[str] = None) -> FlatDesign:
        """The elaborated design for ``module``, served by content.

        A hit refreshes the entry's recency; a miss elaborates, retains
        (evicting the least recently used design past ``max_designs``),
        and returns the fresh design.
        """
        key = module_digest or content_digest(emit_module(module))
        design = self._designs.pop(key, None)
        if design is not None:
            self._design_hits += 1
        else:
            self._design_misses += 1
            note_elaboration()
            design = elaborate(module)
            while self.max_designs is not None \
                    and len(self._designs) >= self.max_designs:
                evicted = next(iter(self._designs))
                self._designs.pop(evicted)
                self._cone_indexes.pop(evicted, None)
                self._design_evictions += 1
        self._designs[key] = design  # (re)insert at most-recent end
        return design

    def problem(self, module: Module, vunit, assert_name: str,
                module_digest: Optional[str] = None,
                vunit_digest: Optional[str] = None) -> TransitionSystem:
        """The compiled safety problem for one asserted property,
        served by content.

        A miss compiles the assertion against the (store-served)
        elaborated design and retains the transition system under
        ``(module digest, vunit digest, assert name)``.
        """
        module_key = module_digest or content_digest(emit_module(module))
        vunit_key = vunit_digest or content_digest(vunit.emit())
        key = (module_key, vunit_key, assert_name)
        ts = self._problems.pop(key, None)
        if ts is not None:
            self._problem_hits += 1
        else:
            self._problem_misses += 1
            # deferred: psl.compile sits above this module's layer-mates
            # (it imports formal.transition) — a top-level import here
            # would be cyclic through the package inits
            from ..psl.compile import compile_assertion
            design = self.design(module, module_digest=module_key)
            ts = compile_assertion(module, vunit, assert_name,
                                   design=design)
            while self.max_problems is not None \
                    and len(self._problems) >= self.max_problems:
                self._problems.pop(next(iter(self._problems)))
                self._problem_evictions += 1
        self._problems[key] = ts  # (re)insert at most-recent end
        return ts

    def cone(self, module: Module, vunit, assert_name: str,
             module_digest: Optional[str] = None):
        """The assertion's :class:`~repro.formal.coi.ConeInfo` over the
        store-served design.  Per-design node-digest memos are shared
        across a module's assertions via a retained
        :class:`~repro.formal.coi.ConeIndex` (dropped whenever its
        design is evicted, so the memo can never outlive the object
        identities it keys on)."""
        module_key = module_digest or content_digest(emit_module(module))
        design = self.design(module, module_digest=module_key)
        index = self._cone_indexes.get(module_key)
        if index is None or index.design is not design:
            from .coi import ConeIndex
            index = ConeIndex(design)
            self._cone_indexes[module_key] = index
        return index.info(vunit, assert_name)

    def sliced_problem(self, module: Module, vunit, assert_name: str,
                       module_digest: Optional[str] = None,
                       vunit_digest: Optional[str] = None,
                       cone_digest: Optional[str] = None
                       ) -> TransitionSystem:
        """The assertion compiled against its cone-of-influence slice,
        served by *cone* content (:mod:`repro.formal.coi`).

        Problems are retained under ``("coi:" + cone digest, vunit
        digest, assert name)`` — the prefix keeps cone keys from ever
        aliasing module-digest keys in the shared ``_problems`` pool —
        and the sliced designs themselves are retained by cone digest,
        so cone-equal jobs of different modules (a golden module and
        its out-of-cone mutants in one sweep) share both levels.  A
        planner-stamped ``cone_digest`` skips the cone analysis
        whenever the slice or the compiled problem is already
        retained; it is cross-checked against the locally computed
        digest before anything is stored under it.
        """
        vunit_key = vunit_digest or content_digest(vunit.emit())
        if cone_digest is not None:
            key = (f"coi:{cone_digest}", vunit_key, assert_name)
            ts = self._problems.pop(key, None)
            if ts is not None:
                self._problem_hits += 1
                self._problems[key] = ts
                return ts
        sliced = None if cone_digest is None \
            else self._slices.pop(cone_digest, None)
        if sliced is not None:
            self._slice_hits += 1
        else:
            info = self.cone(module, vunit, assert_name,
                             module_digest=module_digest)
            if cone_digest is not None and cone_digest != info.digest:
                raise ValueError(
                    f"stamped cone digest {cone_digest[:12]}... does "
                    f"not match the computed cone of "
                    f"{vunit.name}.{assert_name} "
                    f"({info.digest[:12]}...) — planner/store version "
                    f"drift?"
                )
            cone_digest = info.digest
            key = (f"coi:{cone_digest}", vunit_key, assert_name)
            ts = self._problems.pop(key, None)
            if ts is not None:
                self._problem_hits += 1
                self._problems[key] = ts
                return ts
            sliced = self._slices.pop(cone_digest, None)
            if sliced is not None:
                self._slice_hits += 1
            else:
                self._slice_misses += 1
                index = self._cone_indexes[
                    module_digest or content_digest(emit_module(module))]
                sliced = index.slice(info)
                while self.max_designs is not None \
                        and len(self._slices) >= self.max_designs:
                    self._slices.pop(next(iter(self._slices)))
                    self._slice_evictions += 1
        self._slices[cone_digest] = sliced  # (re)insert at recent end
        key = (f"coi:{cone_digest}", vunit_key, assert_name)
        self._problem_misses += 1
        from ..psl.compile import compile_assertion
        ts = compile_assertion(module, vunit, assert_name, design=sliced)
        while self.max_problems is not None \
                and len(self._problems) >= self.max_problems:
            self._problems.pop(next(iter(self._problems)))
            self._problem_evictions += 1
        self._problems[key] = ts
        return ts

    # ------------------------------------------------------------------
    def discard(self) -> None:
        """Drop every retained design and problem (counters survive);
        the next request compiles cold."""
        self._designs.clear()
        self._problems.clear()
        self._cone_indexes.clear()
        self._slices.clear()

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus the current pool shape."""
        return {
            "designs": len(self._designs),
            "problems": len(self._problems),
            "slices": len(self._slices),
            "design_hits": self._design_hits,
            "design_misses": self._design_misses,
            "design_evictions": self._design_evictions,
            "problem_hits": self._problem_hits,
            "problem_misses": self._problem_misses,
            "problem_evictions": self._problem_evictions,
            "slice_hits": self._slice_hits,
            "slice_misses": self._slice_misses,
            "slice_evictions": self._slice_evictions,
        }

    @staticmethod
    def merge_stats(*stats: Dict[str, int]) -> Dict[str, int]:
        """Sum counter dicts (per-worker snapshots into one aggregate)."""
        merged: Dict[str, int] = {}
        for snapshot in stats:
            for key, value in snapshot.items():
                merged[key] = merged.get(key, 0) + int(value)
        return merged

    def __repr__(self) -> str:
        return (f"CompiledProblemStore(designs={len(self._designs)}, "
                f"problems={len(self._problems)}, "
                f"hits={self._design_hits + self._problem_hits})")
