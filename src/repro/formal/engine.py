"""Unified model-checking front-end.

One :class:`ModelChecker` wraps every engine in the package behind the
black-box contract the paper's verification engineer relies on: safety
property in, PASS / FAIL(+counterexample) / TIMEOUT out.

Engines are looked up in an extensible registry (:func:`register_engine`
/ :func:`registered_engines`); the built-in entries are:

- ``bmc`` — bounded search only (returns UNKNOWN when no counterexample
  exists within the bound);
- ``kind`` — k-induction (unbounded, SAT-based);
- ``bdd-forward`` / ``bdd-backward`` / ``bdd-combined`` — unbounded
  model checking by reachability (the in-house engine's algorithms);
- ``pobdd`` — partitioned-ROBDD forward reachability;
- ``auto`` — k-induction first (fast on the inductive parity
  invariants the methodology produces), falling back to BDD combined
  traversal for properties induction cannot settle.

An engine is any callable ``(checker, options) -> CheckResult``;
registering one makes it available to every ``method=`` call site,
including the campaign orchestrator's per-job engine portfolios
(:mod:`repro.orchestrate`).

Counterexamples found by BDD engines are concretised by a BMC run at
the discovered depth, then validated by replay on the transition
system before being reported.

BDD-family engines (``bdd-*``, ``pobdd``, and ``auto``'s fallback leg)
honour ``EngineOptions.workspace``: when a
:class:`~repro.formal.workspace.WorkspaceBinding` is attached, the
engine leases a shared, possibly pre-warmed manager for the problem's
module instead of building a cold one — same verdicts, fewer node
constructions (see :mod:`repro.formal.workspace`).

SAT-family engines (``bmc``, ``kind``, and ``auto``'s induction leg)
likewise honour ``EngineOptions.sat_workspace``: when a
:class:`~repro.formal.satspace.SatBinding` is attached, they run over
shared incremental solver sessions — retained frame unrollings and
learned clauses, per-assertion activation literals — instead of cold
solvers; failing traces are re-derived cold on the solo-compiled
system so counterexamples stay byte-canonical (see
:mod:`repro.formal.satspace`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from .bmc import bmc
from .budget import BudgetExceeded, ResourceBudget
from .induction import k_induction, k_induction_session
from .pobdd import pobdd_reach
from .reachability import (
    SymbolicModel, backward_reach, combined_reach, forward_reach,
)
from .trace import Trace
from .transition import TransitionSystem

PASS = "pass"
FAIL = "fail"
TIMEOUT = "timeout"
UNKNOWN = "unknown"


@dataclass
class CheckResult:
    """Outcome of one property check."""

    name: str
    status: str
    engine: str
    depth: Optional[int] = None        # cex length or proof bound
    trace: Optional[Trace] = None
    stats: Dict[str, object] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return self.status == PASS

    @property
    def failed(self) -> bool:
        return self.status == FAIL

    @property
    def timed_out(self) -> bool:
        return self.status == TIMEOUT

    def __repr__(self) -> str:
        return (f"CheckResult({self.name!r}, {self.status.upper()}, "
                f"engine={self.engine})")


@dataclass(frozen=True)
class EngineOptions:
    """Tuning knobs handed to a registered engine.

    ``workspace`` is *runtime wiring*, not a tuning knob: a
    :class:`~repro.formal.workspace.WorkspaceBinding` (the shared BDD
    workspace scoped to this problem's module) that BDD-family engines
    lease their manager from instead of building a cold one.  It is
    excluded from engine-config fingerprints —
    :meth:`repro.orchestrate.job.EngineConfig.describe` drops it — and
    from equality, because sharing a node table never flips a
    PASS/FAIL verdict; it changes the cost of reaching it (and with it,
    one-sidedly, whether a tight node budget trips — see
    :mod:`repro.orchestrate`).

    ``sat_workspace`` is the SAT-family counterpart: a
    :class:`~repro.formal.satspace.SatBinding` that ``bmc``/``kind``
    (and ``auto``'s induction leg) run their queries through, reusing
    shared solver sessions instead of cold solvers.  Equally excluded
    from fingerprints and equality — verdicts and depths are invariant;
    only solve cost changes (two-sidedly under a binding conflict
    budget, see :mod:`repro.formal.satspace`).
    """

    max_bound: int = 60
    max_k: int = 40
    unique_states: bool = True
    num_window_vars: int = 2
    workspace: Optional[object] = field(default=None, compare=False,
                                        repr=False)
    sat_workspace: Optional[object] = field(default=None, compare=False,
                                            repr=False)


EngineFn = Callable[["ModelChecker", EngineOptions], CheckResult]

#: name -> engine callable; insertion order is the public listing order.
_ENGINES: Dict[str, EngineFn] = {}


def register_engine(name: str, fn: Optional[EngineFn] = None):
    """Register ``fn`` as engine ``name`` (usable as a decorator).

    The callable receives the :class:`ModelChecker` (for the transition
    system, shared budget, and the trace helpers) and an
    :class:`EngineOptions`; it must return a :class:`CheckResult`.
    Re-registering a name replaces the previous engine.
    """
    if not isinstance(name, str):
        raise TypeError(
            "register_engine needs an engine name — use "
            "@register_engine(\"name\"), not @register_engine"
        )

    def _register(fn: EngineFn) -> EngineFn:
        _ENGINES[name] = fn
        return fn

    return _register(fn) if fn is not None else _register


def registered_engines() -> Tuple[str, ...]:
    """Names of every registered engine, in registration order."""
    return tuple(_ENGINES)


class _ModelCheckerMeta(type):
    @property
    def METHODS(cls) -> Tuple[str, ...]:
        """Live, read-only view of the engine registry."""
        return registered_engines()


class ModelChecker(metaclass=_ModelCheckerMeta):
    """Checks one safety problem (a :class:`TransitionSystem`)."""

    def __init__(self, ts: TransitionSystem,
                 budget: Optional[ResourceBudget] = None) -> None:
        self.ts = ts
        self.budget = budget

    @property
    def METHODS(self) -> Tuple[str, ...]:
        """Live, read-only view of the engine registry (instance
        access; class access goes through the metaclass property)."""
        return registered_engines()

    # ------------------------------------------------------------------
    def check(self, method: str = "auto", max_bound: int = 60,
              max_k: int = 40, unique_states: bool = True,
              num_window_vars: int = 2,
              options: Optional[EngineOptions] = None) -> CheckResult:
        """Check the property with engine ``method``.

        ``options`` overrides the individual tuning kwargs when given
        (the orchestrator passes a ready-made :class:`EngineOptions`;
        the kwargs form remains for direct callers).
        """
        engine = _ENGINES.get(method)
        if engine is None:
            raise ValueError(f"unknown method {method!r}; "
                             f"pick one of {registered_engines()}")
        if options is None:
            options = EngineOptions(max_bound=max_bound, max_k=max_k,
                                    unique_states=unique_states,
                                    num_window_vars=num_window_vars)
        started = time.perf_counter()
        try:
            result = engine(self, options)
        except BudgetExceeded as exhausted:
            result = CheckResult(
                name=self.ts.name,
                status=TIMEOUT,
                engine=method,
                stats={
                    "resource": exhausted.resource,
                    "limit": exhausted.limit,
                    **(self.budget.snapshot() if self.budget else {}),
                },
            )
        result.seconds = time.perf_counter() - started
        result.stats.setdefault("problem", self.ts.size_stats())
        return result

    # ------------------------------------------------------------------
    def _sat_binding(self, options: Optional[EngineOptions]):
        return options.sat_workspace if options is not None else None

    def _rederive_trace(self, depth: int, stats: Dict[str, object]) -> Trace:
        """Canonical counterexample for a warm-session FAIL: replay the
        deterministic cold search on the solo-compiled system at the
        (identical) discovered depth, so trace bytes match a cold run's
        exactly.  Only FAILs pay this extra solve."""
        cold = bmc(self.ts, depth, budget=self.budget)
        if not cold.failed:
            raise RuntimeError(
                "shared SAT session found a violation but the cold "
                f"re-derivation did not within {depth} steps"
            )
        stats["concretise"] = cold.stats
        self._validate(cold.trace)
        return cold.trace

    def _run_bmc(self, max_bound: int,
                 options: Optional[EngineOptions] = None) -> CheckResult:
        binding = self._sat_binding(options)
        if binding is None:
            result = bmc(self.ts, max_bound, budget=self.budget)
            trace = result.trace
        else:
            session = binding.lease("bmc-init", self.budget)
            result = session.bmc_group(binding.assert_name, max_bound)
            trace = (self._rederive_trace(result.bound, result.stats)
                     if result.failed else None)
        if result.failed:
            self._validate(trace)
            return CheckResult(self.ts.name, FAIL, "bmc",
                               depth=result.bound, trace=trace,
                               stats={"sat": result.stats})
        return CheckResult(self.ts.name, UNKNOWN, "bmc",
                           depth=max_bound, stats={"sat": result.stats})

    def _run_induction(self, max_k: int, unique_states: bool,
                       options: Optional[EngineOptions] = None) -> CheckResult:
        binding = self._sat_binding(options)
        if binding is None:
            result = k_induction(self.ts, max_k=max_k, budget=self.budget,
                                 unique_states=unique_states)
            trace = result.trace
        else:
            base = binding.lease("bmc-init", self.budget)
            step = binding.lease("step", self.budget)
            result = k_induction_session(base, step, binding.assert_name,
                                         max_k=max_k,
                                         unique_states=unique_states)
            trace = (self._rederive_trace(result.k, result.stats)
                     if result.status == "failed" else None)
        if result.status == "proved":
            return CheckResult(self.ts.name, PASS, "kind",
                               depth=result.k, stats={"sat": result.stats})
        if result.status == "failed":
            self._validate(trace)
            return CheckResult(self.ts.name, FAIL, "kind",
                               depth=result.k, trace=trace,
                               stats={"sat": result.stats})
        return CheckResult(self.ts.name, UNKNOWN, "kind", depth=max_k,
                           stats={"sat": result.stats})

    def _symbolic_model(self,
                        options: Optional[EngineOptions]) -> SymbolicModel:
        """Build the symbolic model — on a leased shared manager when
        ``options`` carries a workspace binding, cold otherwise."""
        workspace = options.workspace if options is not None else None
        if workspace is None:
            return SymbolicModel(self.ts, budget=self.budget)
        manager = workspace.lease(self.budget)
        return SymbolicModel(self.ts, budget=self.budget, bdd=manager)

    def _run_bdd(self, method: str,
                 options: Optional[EngineOptions] = None) -> CheckResult:
        model = self._symbolic_model(options)
        traversal = {
            "bdd-forward": forward_reach,
            "bdd-backward": backward_reach,
            "bdd-combined": combined_reach,
        }[method]
        reach = traversal(model)
        stats = {
            "iterations": reach.iterations,
            "peak_nodes": reach.peak_live_nodes,
        }
        if reach.proved:
            return CheckResult(self.ts.name, PASS, method,
                               depth=reach.iterations, stats=stats)
        if reach.cex_depth is None:
            return CheckResult(self.ts.name, UNKNOWN, method, stats=stats)
        trace = self._concretise(reach.cex_depth)
        return CheckResult(self.ts.name, FAIL, method,
                           depth=trace.length - 1, trace=trace, stats=stats)

    def _run_pobdd(self, num_window_vars: int,
                   options: Optional[EngineOptions] = None) -> CheckResult:
        model = self._symbolic_model(options)
        reach, pstats = pobdd_reach(model, num_window_vars=num_window_vars)
        stats = {
            "iterations": reach.iterations,
            "peak_nodes": reach.peak_live_nodes,
            "windows": pstats.windows,
            "peak_window_size": pstats.peak_window_size,
        }
        if reach.proved:
            return CheckResult(self.ts.name, PASS, "pobdd",
                               depth=reach.iterations, stats=stats)
        if reach.cex_depth is None:
            return CheckResult(self.ts.name, UNKNOWN, "pobdd", stats=stats)
        trace = self._concretise(reach.cex_depth)
        return CheckResult(self.ts.name, FAIL, "pobdd",
                           depth=trace.length - 1, trace=trace, stats=stats)

    # ------------------------------------------------------------------
    def _concretise(self, depth_bound: int) -> Trace:
        """Turn a symbolic 'bad reachable within N steps' verdict into a
        concrete input trace via BMC."""
        result = bmc(self.ts, depth_bound, budget=self.budget)
        if not result.failed:
            raise RuntimeError(
                "BDD engine reported a reachable violation but BMC could "
                f"not concretise it within {depth_bound} steps"
            )
        self._validate(result.trace)
        return result.trace

    @staticmethod
    def _validate(trace: Optional[Trace]) -> None:
        if trace is not None and not trace.replay():
            raise RuntimeError("counterexample failed replay validation")


# ----------------------------------------------------------------------
# built-in engine registrations
# ----------------------------------------------------------------------

@register_engine("auto")
def _engine_auto(checker: ModelChecker, options: EngineOptions) -> CheckResult:
    """Induction first, BDD combined as the decision procedure."""
    inductive = checker._run_induction(options.max_k, options.unique_states,
                                       options)
    if inductive.status in (PASS, FAIL):
        inductive.engine = "auto:kind"
        return inductive
    bdd_result = checker._run_bdd("bdd-combined", options)
    bdd_result.engine = "auto:" + bdd_result.engine
    return bdd_result


@register_engine("bmc")
def _engine_bmc(checker: ModelChecker, options: EngineOptions) -> CheckResult:
    return checker._run_bmc(options.max_bound, options)


@register_engine("kind")
def _engine_kind(checker: ModelChecker, options: EngineOptions) -> CheckResult:
    return checker._run_induction(options.max_k, options.unique_states,
                                  options)


def _bdd_engine(method: str) -> EngineFn:
    def run(checker: ModelChecker, options: EngineOptions) -> CheckResult:
        return checker._run_bdd(method, options)
    return run


for _method in ("bdd-forward", "bdd-backward", "bdd-combined"):
    register_engine(_method, _bdd_engine(_method))


@register_engine("pobdd")
def _engine_pobdd(checker: ModelChecker, options: EngineOptions) -> CheckResult:
    return checker._run_pobdd(options.num_window_vars, options)
