"""Unified model-checking front-end.

One :class:`ModelChecker` wraps every engine in the package behind the
black-box contract the paper's verification engineer relies on: safety
property in, PASS / FAIL(+counterexample) / TIMEOUT out.

Engines:

- ``bmc`` — bounded search only (returns UNKNOWN when no counterexample
  exists within the bound);
- ``kind`` — k-induction (unbounded, SAT-based);
- ``bdd-forward`` / ``bdd-backward`` / ``bdd-combined`` — unbounded
  model checking by reachability (the in-house engine's algorithms);
- ``pobdd`` — partitioned-ROBDD forward reachability;
- ``auto`` — k-induction first (fast on the inductive parity
  invariants the methodology produces), falling back to BDD combined
  traversal for properties induction cannot settle.

Counterexamples found by BDD engines are concretised by a BMC run at
the discovered depth, then validated by replay on the transition
system before being reported.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from .bmc import bmc
from .budget import BudgetExceeded, ResourceBudget
from .induction import k_induction
from .pobdd import pobdd_reach
from .reachability import (
    SymbolicModel, backward_reach, combined_reach, forward_reach,
)
from .trace import Trace
from .transition import TransitionSystem

PASS = "pass"
FAIL = "fail"
TIMEOUT = "timeout"
UNKNOWN = "unknown"


@dataclass
class CheckResult:
    """Outcome of one property check."""

    name: str
    status: str
    engine: str
    depth: Optional[int] = None        # cex length or proof bound
    trace: Optional[Trace] = None
    stats: Dict[str, object] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return self.status == PASS

    @property
    def failed(self) -> bool:
        return self.status == FAIL

    @property
    def timed_out(self) -> bool:
        return self.status == TIMEOUT

    def __repr__(self) -> str:
        return (f"CheckResult({self.name!r}, {self.status.upper()}, "
                f"engine={self.engine})")


class ModelChecker:
    """Checks one safety problem (a :class:`TransitionSystem`)."""

    METHODS = ("auto", "bmc", "kind", "bdd-forward", "bdd-backward",
               "bdd-combined", "pobdd")

    def __init__(self, ts: TransitionSystem,
                 budget: Optional[ResourceBudget] = None) -> None:
        self.ts = ts
        self.budget = budget

    # ------------------------------------------------------------------
    def check(self, method: str = "auto", max_bound: int = 60,
              max_k: int = 40, unique_states: bool = True,
              num_window_vars: int = 2) -> CheckResult:
        if method not in self.METHODS:
            raise ValueError(f"unknown method {method!r}; "
                             f"pick one of {self.METHODS}")
        started = time.perf_counter()
        try:
            result = self._dispatch(method, max_bound, max_k,
                                    unique_states, num_window_vars)
        except BudgetExceeded as exhausted:
            result = CheckResult(
                name=self.ts.name,
                status=TIMEOUT,
                engine=method,
                stats={
                    "resource": exhausted.resource,
                    "limit": exhausted.limit,
                    **(self.budget.snapshot() if self.budget else {}),
                },
            )
        result.seconds = time.perf_counter() - started
        result.stats.setdefault("problem", self.ts.size_stats())
        return result

    # ------------------------------------------------------------------
    def _dispatch(self, method: str, max_bound: int, max_k: int,
                  unique_states: bool, num_window_vars: int) -> CheckResult:
        if method == "bmc":
            return self._run_bmc(max_bound)
        if method == "kind":
            return self._run_induction(max_k, unique_states)
        if method in ("bdd-forward", "bdd-backward", "bdd-combined"):
            return self._run_bdd(method)
        if method == "pobdd":
            return self._run_pobdd(num_window_vars)
        # auto: induction first, BDD combined as the decision procedure
        inductive = self._run_induction(max_k, unique_states)
        if inductive.status in (PASS, FAIL):
            inductive.engine = "auto:kind"
            return inductive
        bdd_result = self._run_bdd("bdd-combined")
        bdd_result.engine = "auto:" + bdd_result.engine
        return bdd_result

    def _run_bmc(self, max_bound: int) -> CheckResult:
        result = bmc(self.ts, max_bound, budget=self.budget)
        if result.failed:
            self._validate(result.trace)
            return CheckResult(self.ts.name, FAIL, "bmc",
                               depth=result.bound, trace=result.trace,
                               stats={"sat": result.stats})
        return CheckResult(self.ts.name, UNKNOWN, "bmc",
                           depth=max_bound, stats={"sat": result.stats})

    def _run_induction(self, max_k: int, unique_states: bool) -> CheckResult:
        result = k_induction(self.ts, max_k=max_k, budget=self.budget,
                             unique_states=unique_states)
        if result.status == "proved":
            return CheckResult(self.ts.name, PASS, "kind",
                               depth=result.k, stats={"sat": result.stats})
        if result.status == "failed":
            self._validate(result.trace)
            return CheckResult(self.ts.name, FAIL, "kind",
                               depth=result.k, trace=result.trace,
                               stats={"sat": result.stats})
        return CheckResult(self.ts.name, UNKNOWN, "kind", depth=max_k,
                           stats={"sat": result.stats})

    def _run_bdd(self, method: str) -> CheckResult:
        model = SymbolicModel(self.ts, budget=self.budget)
        traversal = {
            "bdd-forward": forward_reach,
            "bdd-backward": backward_reach,
            "bdd-combined": combined_reach,
        }[method]
        reach = traversal(model)
        stats = {
            "iterations": reach.iterations,
            "peak_nodes": reach.peak_live_nodes,
        }
        if reach.proved:
            return CheckResult(self.ts.name, PASS, method,
                               depth=reach.iterations, stats=stats)
        if reach.cex_depth is None:
            return CheckResult(self.ts.name, UNKNOWN, method, stats=stats)
        trace = self._concretise(reach.cex_depth)
        return CheckResult(self.ts.name, FAIL, method,
                           depth=trace.length - 1, trace=trace, stats=stats)

    def _run_pobdd(self, num_window_vars: int) -> CheckResult:
        model = SymbolicModel(self.ts, budget=self.budget)
        reach, pstats = pobdd_reach(model, num_window_vars=num_window_vars)
        stats = {
            "iterations": reach.iterations,
            "peak_nodes": reach.peak_live_nodes,
            "windows": pstats.windows,
            "peak_window_size": pstats.peak_window_size,
        }
        if reach.proved:
            return CheckResult(self.ts.name, PASS, "pobdd",
                               depth=reach.iterations, stats=stats)
        if reach.cex_depth is None:
            return CheckResult(self.ts.name, UNKNOWN, "pobdd", stats=stats)
        trace = self._concretise(reach.cex_depth)
        return CheckResult(self.ts.name, FAIL, "pobdd",
                           depth=trace.length - 1, trace=trace, stats=stats)

    # ------------------------------------------------------------------
    def _concretise(self, depth_bound: int) -> Trace:
        """Turn a symbolic 'bad reachable within N steps' verdict into a
        concrete input trace via BMC."""
        result = bmc(self.ts, depth_bound, budget=self.budget)
        if not result.failed:
            raise RuntimeError(
                "BDD engine reported a reachable violation but BMC could "
                f"not concretise it within {depth_bound} steps"
            )
        self._validate(result.trace)
        return result.trace

    @staticmethod
    def _validate(trace: Optional[Trace]) -> None:
        if trace is not None and not trace.replay():
            raise RuntimeError("counterexample failed replay validation")
