"""Deterministic resource budgets.

The paper's flow reacts to model-checking *time-outs* (section 4.2): a
property whose cone is too large for the engine is divided at internal
checkpoints.  Wall-clock timeouts make experiments machine-dependent, so
this reproduction uses deterministic resource budgets instead: SAT
engines are limited in conflicts, BDD engines in created nodes.  A check
that exhausts its budget reports TIMEOUT exactly like the paper's tools,
but reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class BudgetExceeded(Exception):
    """Raised internally when an engine exhausts its resource budget."""

    def __init__(self, resource: str, limit: int) -> None:
        super().__init__(f"{resource} budget of {limit} exhausted")
        self.resource = resource
        self.limit = limit


@dataclass
class ResourceBudget:
    """Resource quotas for one model-checking run.

    ``None`` means unlimited.  The counters accumulate across engines so
    a hybrid run (BDD proof attempt, then SAT trace extraction) shares
    one budget, mirroring a single tool invocation.
    """

    sat_conflicts: Optional[int] = None
    bdd_nodes: Optional[int] = None
    spent_conflicts: int = 0
    spent_nodes: int = 0

    def charge_conflicts(self, count: int = 1) -> None:
        self.spent_conflicts += count
        if (self.sat_conflicts is not None
                and self.spent_conflicts > self.sat_conflicts):
            raise BudgetExceeded("SAT conflict", self.sat_conflicts)

    def charge_nodes(self, count: int = 1) -> None:
        self.spent_nodes += count
        if self.bdd_nodes is not None and self.spent_nodes > self.bdd_nodes:
            raise BudgetExceeded("BDD node", self.bdd_nodes)

    def snapshot(self) -> dict:
        return {
            "sat_conflicts": self.spent_conflicts,
            "bdd_nodes": self.spent_nodes,
        }


def unlimited() -> ResourceBudget:
    """A budget that never trips."""
    return ResourceBudget()
