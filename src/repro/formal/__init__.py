"""Formal engines: CDCL SAT, BMC, k-induction, ROBDD reachability
(forward/backward/combined), POBDD partitioning, and the unified
model-checker front-end with deterministic resource budgets."""

from .budget import BudgetExceeded, ResourceBudget, unlimited
from .sat import Solver
from .cnf import CnfContext
from .transition import ClusterSystem, TransitionSystem
from .trace import Trace
from .bmc import BmcResult, Unroller, bmc, bmc_session
from .induction import InductionResult, k_induction, k_induction_session
from .satspace import SatBinding, SatSession, SatWorkspace
from .bdd import Bdd, nodes_created_total
from .workspace import BddWorkspace, WorkspaceBinding
from .problems import (
    CompiledProblemStore, compilations_total, elaborations_total,
)
from .reachability import (
    ReachResult, SymbolicModel, backward_reach, combined_reach,
    forward_reach,
)
from .pobdd import PobddStats, choose_window_vars, pobdd_reach
from .engine import (
    FAIL, PASS, TIMEOUT, UNKNOWN, CheckResult, EngineOptions, ModelChecker,
    register_engine, registered_engines,
)
from .equivalence import (
    MISCOMPARE_OUTPUT, build_miter, check_equivalence,
    injection_transparent,
)

__all__ = [
    "BudgetExceeded", "ResourceBudget", "unlimited",
    "Solver", "CnfContext", "ClusterSystem", "TransitionSystem", "Trace",
    "BmcResult", "Unroller", "bmc", "bmc_session",
    "InductionResult", "k_induction", "k_induction_session",
    "SatBinding", "SatSession", "SatWorkspace",
    "Bdd", "nodes_created_total",
    "BddWorkspace", "WorkspaceBinding",
    "CompiledProblemStore", "compilations_total", "elaborations_total",
    "ReachResult", "SymbolicModel", "backward_reach", "combined_reach",
    "forward_reach",
    "PobddStats", "choose_window_vars", "pobdd_reach",
    "FAIL", "PASS", "TIMEOUT", "UNKNOWN", "CheckResult", "EngineOptions",
    "ModelChecker", "register_engine", "registered_engines",
    "MISCOMPARE_OUTPUT", "build_miter", "check_equivalence",
    "injection_transparent",
]
