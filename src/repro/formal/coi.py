"""Structural cone-of-influence analysis and content addressing.

The paper's methodology is property-centric: every assertion is checked
against only the logic that can affect it.  This module makes that
structure *addressable*.  For one asserted property of a vunit it
computes, over the elaborated :class:`~repro.rtl.elaborate.FlatDesign`:

- the **support**: every design signal the property (and every assumed
  property of the same vunit) references by name;
- the **cone**: the word-level fanin closure of the support — every
  register reachable from a support expression, iterated through
  register next-state functions to a fixpoint;
- the **cone digest**: a canonical content hash of exactly the cone's
  logic (support expressions, cone registers with their next-state
  functions, and the module's full input signature) and nothing else.

Two designs with structurally identical cones get identical digests,
whatever else differs about them — which is what turns a mutation sweep
from O(mutants x assertions) solves into O(cone-touching jobs): a
one-site mutant shares the golden module's digest for every assertion
whose cone the defect does not intersect, so a cone-fingerprinted
:class:`~repro.orchestrate.job.CheckJob` becomes a cache/verdict-db hit
by construction (see ``[coi] fingerprints = "cone"`` in
``docs/configuration.md``).

The cone also *compiles*: :meth:`ConeIndex.slice` builds a sliced
``FlatDesign`` containing only the cone — the substrate for slice
compilation (``[coi] slice = true``).  The slice deliberately keeps the
**full input signature** of the original design: the bit-blaster
numbers all inputs first (in declaration order), so a slice compile and
a full compile of the same module assign identical literals to every
input bit.  Cached FAIL counterexamples travel as canonical *input*
frames, which makes them replayable against either compile — slicing
never invalidates a stored trace.

Digest contract (``COI_SCHEMA``): per-node structural hashes (constants
by value/width, inputs and registers by name/width/reset, operators by
kind/width/param and operand hashes) — registers are referenced as
leaves and their next-state functions are tied in by the cone's
register table, closing the recursion the way a ``letrec`` would.  The
module *name* is excluded on purpose: a mutant clone shares its base
module's name, and two same-shaped modules sharing a verdict is sound
(identical cone logic has identical verdicts).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..psl.ast import (
    Always, AndB, Implication, Literal, Name, Never, Next, NotB, OrB,
    PslError, RedXor, VUnit, XorB,
)
from ..rtl.elaborate import FlatDesign, elaborate
from ..rtl.module import Module
from ..rtl.signals import Const, Expr, Input, Op, Reg

#: digest payload version; bump on any change to the serialization so
#: stale cone-addressed cache entries can never alias fresh ones
COI_SCHEMA = "coi-cone/v1"


def property_support(vunit: VUnit, assert_name: str) -> List[str]:
    """Signal names referenced by one asserted property *and* every
    assumed property of the vunit, in first-reference order.

    The assumes belong in the support because they compile into the
    problem's constraint output: a change to an assumed signal's logic
    changes the checked problem even when the asserted property itself
    is untouched.
    """
    prop = vunit.property_named(assert_name)
    if prop is None:
        raise PslError(
            f"vunit {vunit.name!r} has no property {assert_name!r}"
        )
    asserted = {name for name, _ in vunit.asserted()}
    if assert_name not in asserted:
        raise PslError(
            f"property {assert_name!r} of vunit {vunit.name!r} "
            f"is not asserted"
        )
    roots = [prop] + [p for _, p in vunit.assumed()]
    names: Dict[str, None] = {}
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        if isinstance(node, Name):
            names.setdefault(node.ident, None)
        elif isinstance(node, Literal):
            pass
        elif isinstance(node, (NotB, RedXor, Next)):
            stack.append(node.operand)
        elif isinstance(node, (AndB, OrB, XorB)):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, Implication):
            stack.append(node.consequent)
            stack.append(node.antecedent)
        elif isinstance(node, (Always, Never)):
            stack.append(node.inner)
        else:
            raise PslError(
                f"cannot collect support of node {node!r}"
            )
    return list(names)


@dataclass(frozen=True)
class ConeInfo:
    """One assertion's cone over one elaborated design."""

    #: canonical content hash of the cone (the fingerprint component)
    digest: str
    #: property-referenced signal names, first-reference order
    support: Tuple[str, ...]
    #: cone register names, in design declaration order
    regs: Tuple[str, ...]
    #: support names that resolve to design outputs (the slice's
    #: output map)
    outputs: Tuple[str, ...]


class ConeIndex:
    """Cone analysis over one elaborated design, with shared memos.

    One index serves every assertion of a module: per-node structural
    digests are memoized across :meth:`info` calls (the assertions of
    one module share most of their logic), and per-assertion infos are
    memoized by ``(vunit name, assert name)`` — sound because the
    stereotype generator derives one deterministic vunit set per
    module.
    """

    def __init__(self, design: FlatDesign) -> None:
        self.design = design
        self._node_digests: Dict[int, str] = {}
        self._infos: Dict[Tuple[str, str], ConeInfo] = {}

    # -- analysis ------------------------------------------------------
    def info(self, vunit: VUnit, assert_name: str) -> ConeInfo:
        key = (vunit.name, assert_name)
        found = self._infos.get(key)
        if found is not None:
            return found
        design = self.design
        support = property_support(vunit, assert_name)
        roots = [design.signal(name) for name in support]
        cone_regs = self._closure(roots)
        payload = {
            "schema": COI_SCHEMA,
            # the full input signature pins the slice's literal
            # numbering (inputs are blasted first, in this order), so
            # cone-equal designs replay each other's input frames
            "inputs": [[name, port.width]
                       for name, port in design.inputs.items()],
            "support": [[name, self._digest(root)]
                        for name, root in zip(support, roots)],
            "regs": [[reg.name, reg.width, reg.reset,
                      self._digest(reg.next)]
                     for reg in cone_regs],
        }
        info = ConeInfo(
            digest=_canonical_hash(payload),
            support=tuple(support),
            regs=tuple(reg.name for reg in cone_regs),
            outputs=tuple(name for name in support
                          if name in design.outputs),
        )
        self._infos[key] = info
        return info

    def _closure(self, roots: List[Expr]) -> List[Reg]:
        """Registers in the fanin closure of ``roots`` (through
        next-state functions, to a fixpoint), in design order."""
        visited: set = set()
        found: Dict[int, Reg] = {}
        stack = list(roots)
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            if isinstance(node, Reg):
                found[id(node)] = node
                if node.has_next:
                    stack.append(node.next)
            elif isinstance(node, Op):
                stack.extend(node.operands)
        return [reg for reg in self.design.regs if id(reg) in found]

    def _digest(self, expr: Expr) -> str:
        """Structural hash of one expression (registers as leaves)."""
        memo = self._node_digests
        stack: List[Expr] = [expr]
        while stack:
            node = stack[-1]
            if id(node) in memo:
                stack.pop()
                continue
            if isinstance(node, Const):
                memo[id(node)] = _canonical_hash(
                    ["const", node.width, node.value])
                stack.pop()
                continue
            if isinstance(node, Input):
                memo[id(node)] = _canonical_hash(
                    ["input", node.name, node.width])
                stack.pop()
                continue
            if isinstance(node, Reg):
                # leaf reference only; the next-state function is tied
                # in by the cone's register table
                memo[id(node)] = _canonical_hash(
                    ["reg", node.name, node.width, node.reset])
                stack.pop()
                continue
            if not isinstance(node, Op):
                raise PslError(
                    f"cannot digest design node {node!r} — is the "
                    f"design elaborated?"
                )
            pending = [op for op in node.operands if id(op) not in memo]
            if pending:
                stack.extend(pending)
                continue
            memo[id(node)] = _canonical_hash(
                ["op", node.kind, node.width, node.param,
                 [memo[id(op)] for op in node.operands]])
            stack.pop()
        return memo[id(expr)]

    # -- slicing -------------------------------------------------------
    def slice(self, info: ConeInfo) -> FlatDesign:
        """A fresh ``FlatDesign`` containing exactly the cone.

        Shares the original expression objects (the closure guarantees
        every reachable leaf is carried along); keeps the **full**
        input map in original order, so the slice's input literals
        match a full compile's; keeps only the cone's registers (in
        declaration order — a slice compile and a full compile list
        the shared latches in the same relative order) and only the
        property-referenced outputs.  Compiling against the slice may
        append monitor registers to it — same shared-design contract
        as any store-cached design; the original is never mutated.
        """
        design = self.design
        sliced = FlatDesign(design.name)
        sliced.inputs = dict(design.inputs)
        keep = set(info.regs)
        for reg in design.regs:
            if reg.name in keep:
                sliced.add_reg(reg)
        for name in info.outputs:
            sliced.outputs[name] = design.outputs[name]
        return sliced


def index_module(module: Module) -> ConeIndex:
    """Elaborate ``module`` (fresh, monitor-free) and index it — the
    planner's path to cone digests."""
    return ConeIndex(elaborate(module))


def cone_digest(module: Module, vunit: VUnit, assert_name: str) -> str:
    """One-shot cone digest of one assertion (test/tool convenience;
    batch callers should share a :class:`ConeIndex`)."""
    return index_module(module).info(vunit, assert_name).digest


def _canonical_hash(payload: object) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True,
                   separators=(",", ":")).encode("utf-8")
    ).hexdigest()
